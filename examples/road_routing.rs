//! Shortest-path routing — SSSP over a weighted road-style network.
//!
//! Roads are nearly planar: a grid with a sprinkle of highway shortcuts.
//! This exercises the weighted MOMS interface (free-ID queue + state
//! memory, Fig. 10a) and the convergence-driven `active_srcs` machinery
//! (most intervals go inactive after a few iterations). The simulated
//! distances are verified against Dijkstra.
//!
//! ```text
//! cargo run --release -p bench --example road_routing
//! ```

use accel::{System, SystemConfig};
use algos::{golden, Algorithm};
use graph::{CooGraph, Partitioner};

/// Builds a `side × side` grid with bidirectional streets and a few
/// random highways.
fn road_network(side: u32, seed: u64) -> CooGraph {
    let n = side * side;
    let mut rng = simkit::SplitMix64::new(seed);
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    let mut add = |a: u32, b: u32, w: u32| {
        edges.push((a, b));
        weights.push(w);
        edges.push((b, a));
        weights.push(w);
    };
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            if x + 1 < side {
                add(i, i + 1, 1 + rng.next_below(9) as u32);
            }
            if y + 1 < side {
                add(i, i + side, 1 + rng.next_below(9) as u32);
            }
        }
    }
    // Highways: long-range cheap connections.
    for _ in 0..(n / 64).max(4) {
        let a = rng.next_below(n as u64) as u32;
        let b = rng.next_below(n as u64) as u32;
        if a != b {
            add(a, b, 2);
        }
    }
    CooGraph::from_weighted_edges(n, edges, weights)
}

fn main() {
    let side = 64u32;
    let g = road_network(side, 1234);
    println!(
        "road network: {}x{} grid, {} nodes, {} directed edges",
        side,
        side,
        g.num_nodes(),
        g.num_edges()
    );

    let source = 0u32;
    let algo = Algorithm::sssp(source);
    let mut sys = System::new(
        &g,
        Partitioner::new(1024, 1024),
        algo,
        SystemConfig::small(),
    );
    let result = sys.run();

    println!(
        "converged after {} iterations, {} cycles, {:.3} edges/cycle",
        result.iterations,
        result.cycles,
        result.edges_per_cycle()
    );

    // Validate against Dijkstra.
    let want = golden::dijkstra(&g, source);
    assert_eq!(result.values, want, "accelerated SSSP must match Dijkstra");
    println!("validation: distances match Dijkstra ✓");

    // Show a few routes.
    for target in [side - 1, side * side - 1, side * side / 2] {
        println!(
            "distance from corner to node {target}: {}",
            result.values[target as usize]
        );
    }
    let reachable = result
        .values
        .iter()
        .filter(|&&d| d != algos::spec::UNREACHED)
        .count();
    println!("{reachable}/{} nodes reachable", g.num_nodes());
}
