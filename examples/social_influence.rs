//! Social-network influence ranking — the workload the paper's
//! introduction motivates (Twitter-scale PageRank).
//!
//! Builds a scrambled power-law graph shaped like the paper's twitter_rv
//! stand-in, runs PageRank on three MOMS organisations, and shows why the
//! miss-optimized memory system wins: compare the DRAM line fetches and
//! throughput of the two-level MOMS against a traditional nonblocking
//! cache at the same cache capacity.
//!
//! ```text
//! cargo run --release -p bench --example social_influence
//! ```

use algos::Algorithm;
use bench::{run_graph, ArchPoint, RunSpec};
use graph::benchmarks::BenchmarkId;
use graph::reorder::{self, Preprocess};

fn main() {
    // twitter_rv stand-in at 1/16 of the default scale for a fast demo.
    let bench = BenchmarkId::Rv;
    let g = bench.build(16);
    println!(
        "{} stand-in: {} nodes, {} edges (paper original: 61.6M / 1.47B)",
        bench.name(),
        g.num_nodes(),
        g.num_edges()
    );

    // DBG + cache-line hashing preprocessing, as the paper defaults.
    let (g, times) = reorder::apply(&g, Preprocess::DbgHash, 16, 7);
    println!(
        "preprocessing: DBG {:.1} ms, hashing {:.1} ms, relabel {:.1} ms",
        times.dbg_s * 1e3,
        times.hashing_s * 1e3,
        times.relabel_s * 1e3
    );

    let algo = Algorithm::pagerank();
    println!(
        "\n{:<16} {:>10} {:>12} {:>14} {:>10}",
        "architecture", "GTEPS", "cycles", "DRAM lines", "hit rate"
    );
    for arch in [
        ArchPoint::two_level_16_16(), // the paper's headline design
        ArchPoint::ALL[2],            // private-only MOMS
        ArchPoint::ALL[6],            // traditional nonblocking cache
    ] {
        let mut spec = RunSpec::new(arch);
        spec.shrink = 16;
        spec.max_iterations = Some(2); // steady-state throughput
        let row = run_graph(&g, bench.tag(), algo, &spec);
        println!(
            "{:<16} {:>10.3} {:>12} {:>14} {:>9.1}%",
            row.arch,
            row.gteps,
            row.cycles,
            row.moms_dram_lines,
            row.hit_rate * 100.0
        );
    }
    println!(
        "\nThe two-level MOMS coalesces repeated reads of hub nodes into few\n\
         DRAM fetches; the traditional cache stalls on its 16-entry MSHR file."
    );
}
