//! Web-graph component analysis — SCC-style label propagation on a
//! clustered crawl, plus the effect of node reordering.
//!
//! Web crawls (uk-2005 and friends) keep tightly connected pages close in
//! label space; the paper's cache-line hashing balances work across
//! destination intervals *without* destroying that locality, unlike the
//! per-node modulo hashing of ForeGraph/FabGraph. This example measures
//! label-propagation throughput under each preprocessing variant and
//! reports the component structure it finds.
//!
//! ```text
//! cargo run --release -p bench --example web_components
//! ```

use std::collections::HashMap;

use algos::{golden, Algorithm};
use bench::{run_graph, ArchPoint, RunSpec};
use graph::benchmarks::BenchmarkId;
use graph::reorder::{self, Preprocess};

fn main() {
    // uk-2005 stand-in, shrunk for a fast demo.
    let bench = BenchmarkId::Uk;
    let base = bench.build(16);
    println!(
        "{} stand-in: {} nodes, {} edges, clustered labeling",
        bench.name(),
        base.num_nodes(),
        base.num_edges()
    );

    let algo = Algorithm::Scc;
    println!(
        "\n{:<10} {:>10} {:>12} {:>14}",
        "preproc", "GTEPS", "cycles", "DRAM lines"
    );
    for pre in Preprocess::ALL {
        let (g, _) = reorder::apply(&base, pre, 16, 7);
        let mut spec = RunSpec::new(ArchPoint::two_level_16_16());
        spec.shrink = 16;
        spec.pre = pre;
        let row = run_graph(&g, bench.tag(), algo, &spec);
        println!(
            "{:<10} {:>10.3} {:>12} {:>14}",
            pre.name(),
            row.gteps,
            row.cycles,
            row.moms_dram_lines
        );
    }

    // Component census from the golden executor (same values the
    // accelerator produces, shown by the integration tests).
    let labels = golden::run(&algo, &base);
    let mut sizes: HashMap<u32, u64> = HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u32, u64)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\n{} label-components; largest:", by_size.len());
    for (label, count) in by_size.into_iter().take(5) {
        println!("  label {label:>8}: {count} nodes");
    }
}
