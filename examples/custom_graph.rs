//! Bring your own graph: load a SNAP/KONECT-style edge list (or generate
//! a synthetic one), and run any algorithm through the high-level
//! [`accel::Driver`].
//!
//! ```text
//! cargo run --release -p bench --example custom_graph [edge_list.txt]
//! ```
//!
//! The optional argument is a text file with one `src dst [weight]` pair
//! per line (`#`/`%` comments allowed). Without it, a power-law graph is
//! generated.

use accel::Driver;
use algos::{golden, Algorithm};
use graph::{CooGraph, GraphSpec};

fn load_graph() -> CooGraph {
    match std::env::args().nth(1) {
        Some(path) => {
            let file =
                std::fs::File::open(&path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            let g = graph::io::read_edge_list(file)
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
            println!("loaded {path}");
            g
        }
        None => {
            println!("no file given; generating a power-law community graph");
            GraphSpec::power_law_cluster(20_000, 200_000, 2.0, 0.6, 256, false).build(7)
        }
    }
}

fn main() {
    let g = load_graph();
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Connected-component style labels via min-label propagation on the
    // symmetrised graph.
    let sym = g.symmetrized();
    let driver = Driver::new().pes(8).channels(4);
    let result = driver.run(&sym, Algorithm::Wcc);
    assert_eq!(
        result.values,
        golden::run(&Algorithm::Wcc, &sym),
        "simulation must agree with the reference"
    );

    let mut labels = result.values.clone();
    labels.sort_unstable();
    labels.dedup();
    println!(
        "weakly connected components: {} (largest label {})",
        labels.len(),
        labels.last().copied().unwrap_or(0)
    );
    println!(
        "simulated {} cycles over {} iterations; {:.3} GTEPS at 200 MHz",
        result.cycles,
        result.iterations,
        result.gteps_at(200.0)
    );

    // And a PageRank pass on the directed graph.
    let pr = driver.run(&g, Algorithm::pagerank());
    let mut top: Vec<(usize, f32)> = pr
        .values
        .iter()
        .enumerate()
        .map(|(i, &b)| (i, f32::from_bits(b)))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-3 PageRank nodes:");
    for (node, score) in top.into_iter().take(3) {
        println!("  node {node:>8}: {score:.6}");
    }
}
