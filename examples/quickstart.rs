//! Quickstart: run PageRank on a synthetic RMAT graph through the
//! simulated accelerator and check the result against the golden
//! reference.
//!
//! ```text
//! cargo run --release -p bench --example quickstart
//! ```

use accel::{System, SystemConfig};
use algos::{golden, Algorithm};
use graph::{GraphSpec, Partitioner};

fn main() {
    // 1. A small power-law graph: 2^12 nodes, average degree 8.
    let g = GraphSpec::rmat(12, 8).build(42);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 2. Run 10 PageRank iterations on the simulated accelerator
    //    (two-level MOMS, 2 PEs, 2 DDR channels — the small test config).
    let algo = Algorithm::pagerank();
    let mut sys = System::new(
        &g,
        Partitioner::new(1024, 1024),
        algo,
        SystemConfig::small(),
    );
    let result = sys.run();

    println!(
        "simulated {} cycles over {} iterations ({:.3} edges/cycle, {:.3} GTEPS at 200 MHz)",
        result.cycles,
        result.iterations,
        result.edges_per_cycle(),
        result.gteps(200.0)
    );
    println!(
        "MOMS cache hit rate: {:.1}%  |  DRAM lines fetched for sources: {}",
        result.cache_hit_rate * 100.0,
        result.stats.get("dram_line_requests")
    );

    // 3. Validate against the golden software executor.
    let want = golden::run(&algo, &g);
    match golden::pagerank_mismatch(&result.values, &want, 1e-3) {
        None => println!("validation: simulated PageRank matches the reference ✓"),
        Some(i) => println!("validation FAILED at node {i}"),
    }

    // 4. Show the top-5 ranked nodes.
    let mut ranked: Vec<(u32, f32)> = result
        .values
        .iter()
        .enumerate()
        .map(|(i, &bits)| (i as u32, f32::from_bits(bits)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top nodes by PageRank:");
    for (node, score) in ranked.into_iter().take(5) {
        println!("  node {node:>6}: {score:.6}");
    }
}
