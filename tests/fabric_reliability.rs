//! Fabric reliability suite: the ack/retransmit link transport and
//! checkpoint-rollback recovery.
//!
//! * Every graceful fault profile plus sustained loss and duplication on
//!   the link delivery path must be masked by the transport alone:
//!   BFS/SSSP/SCC/WCC stay golden-exact on 2/4/8 devices, PageRank stays
//!   within fp noise, and no run rolls back — loss shows up only as
//!   retransmissions and extra exchange cycles.
//! * Seeded lossy runs must export byte-identical value rows to the
//!   clean run, and repeated lossy runs must be fully deterministic.
//! * A black-hole link fault cannot be masked: the watchdog trips, and
//!   with recovery enabled the fabric must roll back to the last barrier
//!   checkpoint (re-arming the fault's grace window via the link reset)
//!   and still finish — integer algorithms bit-exact, PageRank within
//!   1 ulp (cache state after a rollback differs from the clean run's
//!   natural history, so float accumulation order can reassociate) —
//!   reporting every rollback in the `RecoveryReport` instead of dying
//!   with `FabricError::LinkStalled`.
//! * Recovery attempts are bounded: an unsurvivable fault under a tiny
//!   attempt budget must still surface the original error.

use accel::{Driver, Fabric, FabricError, FabricRunResult, RecoveryConfig, RunConfig};
use algos::{golden, Algorithm};
use graph::{CooGraph, GraphSpec};
use simkit::record::{Record, Value};
use simkit::{FaultConfig, FaultProfile};

fn test_graph() -> CooGraph {
    // 256 nodes: 8 devices × 32 owned nodes keeps every barrier exchange
    // to ~1 chunk per flow, well inside the black hole's grace window, so
    // a recovered epoch always completes at least one fresh barrier.
    GraphSpec::rmat(8, 6)
        .build(17)
        .with_random_weights(0, 255, 5)
}

/// Every profile the transport must mask without a single rollback.
fn maskable_faults() -> Vec<FaultConfig> {
    let mut faults: Vec<FaultConfig> = FaultProfile::GRACEFUL
        .iter()
        .map(|&profile| FaultConfig { profile, seed: 9 })
        .collect();
    faults.extend([
        FaultConfig {
            profile: FaultProfile::Lossy { permille: 100 },
            seed: 9,
        },
        FaultConfig {
            profile: FaultProfile::Lossy { permille: 250 },
            seed: 9,
        },
        FaultConfig {
            profile: FaultProfile::Duplicate,
            seed: 9,
        },
    ]);
    faults
}

fn faulty_config(g: &CooGraph, devices: usize, fault: FaultConfig) -> RunConfig {
    let mut rc = Driver::new().devices(devices).run_config(g);
    rc.link.fault = fault;
    rc
}

fn run_with_fault(
    g: &CooGraph,
    algo: Algorithm,
    devices: usize,
    fault: FaultConfig,
) -> FabricRunResult {
    Fabric::new(g, algo, &faulty_config(g, devices, fault)).run()
}

#[test]
fn sustained_link_faults_are_masked_by_retransmission() {
    let g = test_graph();
    for algo in [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::Wcc,
    ] {
        let expect = golden::run(&algo, &g);
        for fault in maskable_faults() {
            for devices in [2usize, 4, 8] {
                let r = run_with_fault(&g, algo, devices, fault);
                let label = format!("{}/{}/{devices}dev", algo.name(), fault.profile.name());
                assert_eq!(r.values, expect, "{label}: diverged from golden");
                assert!(
                    !r.recovery.recovered(),
                    "{label}: transport needed a rollback"
                );
                assert_eq!(
                    r.link.messages_delivered, r.link.messages_sent,
                    "{label}: lost or double-counted payloads"
                );
                if fault.profile.is_lossy() {
                    assert!(
                        r.link.messages_dropped > 0 && r.link.retransmissions > 0,
                        "{label}: lossy link dropped nothing or never retransmitted \
                         (dropped={}, retx={})",
                        r.link.messages_dropped,
                        r.link.retransmissions
                    );
                }
                assert!(r.link.acks > 0, "{label}: no acks flowed");
            }
        }
    }
}

#[test]
fn pagerank_stays_within_fp_noise_under_link_faults() {
    let g = test_graph();
    let algo = Algorithm::pagerank();
    let expect = golden::run(&algo, &g);
    let clean = run_with_fault(&g, algo, 4, FaultConfig::none());
    for fault in maskable_faults() {
        let r = run_with_fault(&g, algo, 4, fault);
        assert_eq!(
            golden::pagerank_mismatch(&r.values, &expect, 1e-5),
            None,
            "{}: pagerank diverged beyond fp noise",
            fault.profile.name()
        );
        assert_eq!(
            r.iterations,
            clean.iterations,
            "{}: fault changed the fixed iteration count",
            fault.profile.name()
        );
        assert!(!r.recovery.recovered());
    }
}

#[test]
fn duplicate_delivery_is_discarded_by_receiver_dedup() {
    let g = test_graph();
    let fault = FaultConfig {
        profile: FaultProfile::Duplicate,
        seed: 3,
    };
    let r = run_with_fault(&g, Algorithm::bfs(0), 4, fault);
    assert_eq!(r.values, golden::run(&Algorithm::bfs(0), &g));
    assert!(r.link.dup_drops > 0, "duplicate profile never deduped");
    assert_eq!(
        r.link.messages_delivered, r.link.messages_sent,
        "duplicates inflated the delivery count"
    );
    assert!(
        r.link.per_link.iter().any(|l| l.dup_drops > 0),
        "dup drops not attributed to any link"
    );
}

/// One exported value row, mirroring what `--out`-style exports carry.
struct ValueRow {
    node: u32,
    value: u32,
}

impl Record for ValueRow {
    fn fields(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("node", Value::from(u64::from(self.node))),
            ("value", Value::from(u64::from(self.value))),
        ]
    }
}

fn value_rows(r: &FabricRunResult) -> Vec<ValueRow> {
    r.values
        .iter()
        .enumerate()
        .map(|(v, &value)| ValueRow {
            node: v as u32,
            value,
        })
        .collect()
}

#[test]
fn seeded_lossy_runs_export_byte_identical_results_to_clean_runs() {
    let g = test_graph();
    let algo = Algorithm::sssp(0);
    let clean = run_with_fault(&g, algo, 4, FaultConfig::none());
    let lossy_cfg = FaultConfig {
        profile: FaultProfile::Lossy { permille: 200 },
        seed: 41,
    };
    let lossy = run_with_fault(&g, algo, 4, lossy_cfg);
    // Loss costs time, never results: the exported rows are identical
    // byte for byte in both formats.
    assert_eq!(
        simkit::record::to_csv(&value_rows(&lossy)),
        simkit::record::to_csv(&value_rows(&clean))
    );
    assert_eq!(
        simkit::record::to_json(&value_rows(&lossy)),
        simkit::record::to_json(&value_rows(&clean))
    );
    assert!(lossy.link.retransmissions > 0);
    assert!(
        lossy.link.exchange_cycles > clean.link.exchange_cycles,
        "retransmission should cost exchange cycles ({} vs {})",
        lossy.link.exchange_cycles,
        clean.link.exchange_cycles
    );
    // Same seed, same schedule: lossy runs are fully deterministic.
    let again = run_with_fault(&g, algo, 4, lossy_cfg);
    assert_eq!(again.cycles, lossy.cycles);
    assert_eq!(again.values, lossy.values);
    assert_eq!(again.link.retransmissions, lossy.link.retransmissions);
    assert_eq!(again.link.messages_dropped, lossy.link.messages_dropped);
}

fn recovery_config() -> RecoveryConfig {
    RecoveryConfig {
        checkpoint_interval: 1,
        retention: 2,
        max_attempts: 64,
        reset_cycles: 10_000,
    }
}

#[test]
fn black_hole_recovery_is_bit_exact_for_integer_algorithms() {
    // SSSP on 8 devices keeps enough owners broadcasting per barrier that
    // the black hole's 256-offer grace window dies mid-run; the rollback
    // resets the link fabric (re-arming the grace window), and the
    // replayed integer relaxation is bit-identical to both the fault-free
    // fabric run and the golden executor.
    let g = GraphSpec::rmat(9, 6)
        .build(41)
        .with_random_weights(0, 255, 3);
    let algo = Algorithm::sssp(0);
    let mut rc = Driver::new().devices(8).run_config(&g);
    let clean = Fabric::new(&g, algo, &rc).run();
    assert!(!clean.recovery.recovered());
    rc.link.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 7,
    };
    rc.link.watchdog_cycles = Some(20_000);
    rc.recovery = Some(recovery_config());
    rc.trace = simkit::TraceConfig {
        level: simkit::trace::TraceLevel::Events,
        ..simkit::TraceConfig::default()
    };
    let r = Fabric::new(&g, algo, &rc)
        .run_to_outcome(None)
        .expect("recovery must carry a black-holed fabric to completion");
    assert_eq!(r.values, clean.values, "recovered run diverged");
    assert_eq!(r.values, golden::run(&algo, &g));
    assert_eq!(r.iterations, clean.iterations);
    assert!(r.recovery.recovered(), "black hole never tripped recovery");
    assert!(r.recovery.total_cycles_lost > 0);
    assert!(r.recovery.checkpoints_taken > 0);
    for attempt in &r.recovery.attempts {
        assert_eq!(attempt.cause.name(), "link-stalled");
        assert!(attempt.cycles_lost > 0);
    }
    // The trace layer records both the snapshots and the rollbacks.
    let names: Vec<&str> = r.trace.events.iter().map(|e| e.kind.name()).collect();
    assert!(
        names.contains(&"fabric.checkpoint"),
        "no checkpoint events: {names:?}"
    );
    assert!(
        names.contains(&"fabric.rollback"),
        "no rollback events: {names:?}"
    );
}

#[test]
fn black_hole_recovery_keeps_pagerank_within_one_ulp() {
    // PageRank is always-active, so every barrier broadcasts and the
    // grace window dies after a couple of barriers even on small fabrics.
    // Unlike the integer algorithms, replay is not bit-for-bit: the MOMS
    // caches hold different state after a rollback than at the same
    // barrier of the clean run, response timing shifts, and the float
    // accumulation order can reassociate — the paper's acceptance bar for
    // PageRank is ≤ 1 ulp, not bit equality.
    let g = GraphSpec::rmat(9, 6).build(41);
    let algo = Algorithm::pagerank();
    let mut rc = Driver::new().devices(8).max_iterations(12).run_config(&g);
    let clean = Fabric::new(&g, algo, &rc).run();
    rc.link.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 7,
    };
    rc.link.watchdog_cycles = Some(20_000);
    rc.recovery = Some(recovery_config());
    let r = Fabric::new(&g, algo, &rc)
        .run_to_outcome(None)
        .expect("recovery must carry a black-holed fabric to completion");
    assert!(r.recovery.recovered(), "black hole never tripped recovery");
    assert_eq!(r.iterations, clean.iterations);
    for (v, (&got, &want)) in r.values.iter().zip(&clean.values).enumerate() {
        assert!(
            got.abs_diff(want) <= 1,
            "node {v}: {got:#010x} vs {want:#010x} differ by more than 1 ulp"
        );
    }
}

#[test]
fn recovery_attempts_are_bounded() {
    // PageRank is always-active, so a black-holed link keeps tripping the
    // watchdog every epoch; a tiny attempt budget must give up with the
    // original structured error rather than looping forever.
    let g = test_graph();
    let mut rc = Driver::new().devices(8).max_iterations(50).run_config(&g);
    rc.link.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 1,
    };
    rc.link.watchdog_cycles = Some(10_000);
    rc.recovery = Some(RecoveryConfig {
        max_attempts: 2,
        ..recovery_config()
    });
    match Fabric::new(&g, Algorithm::pagerank(), &rc).run_to_outcome(None) {
        Err(FabricError::LinkStalled(snap)) => {
            let rendered = snap.to_string();
            assert!(
                rendered.contains("recovery_attempts"),
                "diagnostics should show the exhausted budget: {rendered}"
            );
        }
        other => panic!("expected the original link stall, got {other:?}"),
    }
}

#[test]
fn driver_builders_wire_reliability_knobs_through() {
    let g = test_graph();
    let rc = Driver::new()
        .devices(2)
        .link_retry(2_048)
        .checkpoint_interval(3)
        .run_config(&g);
    assert_eq!(rc.link.retry.rto, 2_048);
    assert_eq!(rc.recovery.unwrap().checkpoint_interval, 3);
    // 0 disables recovery again.
    let off = Driver::new().checkpoint_interval(0).run_config(&g);
    assert!(off.recovery.is_none());
    // The knobs don't change fault-free results.
    let r = Fabric::new(
        &g,
        Algorithm::bfs(0),
        &Driver::new()
            .devices(2)
            .link_retry(2_048)
            .checkpoint_interval(3)
            .run_config(&g),
    )
    .run();
    assert_eq!(r.values, golden::run(&Algorithm::bfs(0), &g));
    assert!(!r.recovery.recovered());
    assert!(
        r.recovery.checkpoints_taken > 0,
        "no checkpoints were taken"
    );
}
