//! Property tests for the allocation-free simkit primitives.
//!
//! The hot-loop overhaul replaced `simkit::Fifo`'s two-`VecDeque`
//! implementation with a ring buffer, preallocated the crossing-link
//! queue, and bounded the delay line's storage. These tests drive the
//! rewritten structures against naive reference models (plain `VecDeque`s
//! with the two-phase semantics spelled out longhand) under long
//! randomized operation streams, with deliberate pressure on the
//! boundaries the ring rewrite could get wrong: wrap-around, full/empty
//! transitions, staged-vs-visible accounting, and out-of-order removal.

use simkit::handshake::CrossingLink;
use simkit::{DelayLine, Fifo, SplitMix64};
use std::collections::VecDeque;

/// Reference model of the two-phase FIFO: staged and live queues, the
/// original (pre-ring) representation.
struct ModelFifo {
    cap: usize,
    live: VecDeque<u32>,
    staged: VecDeque<u32>,
}

impl ModelFifo {
    fn new(cap: usize) -> Self {
        ModelFifo {
            cap,
            live: VecDeque::new(),
            staged: VecDeque::new(),
        }
    }
    fn len(&self) -> usize {
        self.live.len() + self.staged.len()
    }
    fn push(&mut self, v: u32) -> bool {
        if self.len() < self.cap {
            self.staged.push_back(v);
            true
        } else {
            false
        }
    }
    fn pop(&mut self) -> Option<u32> {
        self.live.pop_front()
    }
    fn tick(&mut self) {
        self.live.append(&mut self.staged);
    }
    fn remove_visible(&mut self, i: usize) -> u32 {
        self.live.remove(i).expect("model index in range")
    }
}

/// Checks every observable of the ring FIFO against the model.
fn assert_fifo_matches(f: &Fifo<u32>, m: &ModelFifo, ctx: &str) {
    assert_eq!(f.len(), m.len(), "{ctx}: len");
    assert_eq!(f.visible_len(), m.live.len(), "{ctx}: visible_len");
    assert_eq!(f.is_empty(), m.len() == 0, "{ctx}: is_empty");
    assert_eq!(f.can_push(), m.len() < m.cap, "{ctx}: can_push");
    assert_eq!(f.free(), m.cap - m.len(), "{ctx}: free");
    assert_eq!(f.peek(), m.live.front(), "{ctx}: peek");
    let visible: Vec<u32> = f.iter().copied().collect();
    let model_visible: Vec<u32> = m.live.iter().copied().collect();
    assert_eq!(visible, model_visible, "{ctx}: visible items");
}

#[test]
fn fifo_matches_two_queue_model_under_random_ops() {
    for (seed, cap) in [(1u64, 1usize), (2, 2), (3, 3), (4, 7), (5, 8), (6, 64)] {
        let mut f = Fifo::new(cap);
        let mut m = ModelFifo::new(cap);
        let mut rng = SplitMix64::new(seed);
        let mut next = 0u32;
        for step in 0..20_000u32 {
            let ctx = format!("seed {seed} cap {cap} step {step}");
            match rng.next_u64() % 10 {
                // Weighted toward pushes so the FIFO spends time full.
                0..=3 => {
                    let ok = f.push(next).is_ok();
                    let model_ok = m.push(next);
                    assert_eq!(ok, model_ok, "{ctx}: push acceptance");
                    if !ok {
                        // The rejected value must round-trip via PushError.
                        assert_eq!(f.push(next).unwrap_err().0, next, "{ctx}");
                    }
                    next += 1;
                }
                4..=6 => assert_eq!(f.pop(), m.pop(), "{ctx}: pop"),
                7..=8 => {
                    f.tick();
                    m.tick();
                }
                _ => {
                    if m.live.is_empty() {
                        continue;
                    }
                    let i = (rng.next_u64() as usize) % m.live.len();
                    assert_eq!(f.remove_visible(i), m.remove_visible(i), "{ctx}: remove");
                }
            }
            assert_fifo_matches(&f, &m, &ctx);
        }
    }
}

#[test]
fn fifo_sustains_full_occupancy_wraparound() {
    // Keep the FIFO pinned at capacity for many times its size, so head
    // wraps repeatedly while staged items chase the visible region.
    let cap = 5;
    let mut f = Fifo::new(cap);
    let mut m = ModelFifo::new(cap);
    let mut next = 0u32;
    for round in 0..1000 {
        while f.push(next).is_ok() {
            assert!(m.push(next));
            next += 1;
        }
        assert!(!m.push(next));
        f.tick();
        m.tick();
        assert_eq!(f.pop(), m.pop());
        assert_fifo_matches(&f, &m, &format!("round {round}"));
    }
}

#[test]
fn fifo_clear_resets_to_fresh_state() {
    let mut rng = SplitMix64::new(9);
    let mut f = Fifo::new(4);
    for round in 0..200 {
        for v in 0..(rng.next_u64() % 5) as u32 {
            let _ = f.push(v);
            if rng.chance(0.5) {
                f.tick();
            }
        }
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.visible_len(), 0);
        assert_eq!(f.free(), 4, "round {round}");
        // A cleared FIFO must behave exactly like a new one.
        f.push(77).unwrap();
        f.tick();
        assert_eq!(f.pop(), Some(77));
    }
}

/// Reference model of the Fig. 5 crossing: two forward registers, a
/// receiving queue, and a two-deep ready pipeline.
struct ModelLink {
    stage_a: Option<u32>,
    stage_b: Option<u32>,
    queue: VecDeque<u32>,
    slots: usize,
    ready_b: bool,
    ready_a: bool,
}

impl ModelLink {
    fn new(slots: usize) -> Self {
        ModelLink {
            stage_a: None,
            stage_b: None,
            queue: VecDeque::new(),
            slots,
            ready_b: true,
            ready_a: true,
        }
    }
    fn tick(&mut self) {
        if let Some(t) = self.stage_b.take() {
            assert!(self.queue.len() < self.slots, "model overflow");
            self.queue.push_back(t);
        }
        self.stage_b = self.stage_a.take();
        let receiver_ready = self.queue.len() + 3 <= self.slots;
        self.ready_a = self.ready_b;
        self.ready_b = receiver_ready;
    }
}

#[test]
fn crossing_link_matches_model_under_random_stalls() {
    for seed in 0..10u64 {
        for slots in [4usize, 5, 8] {
            let mut link: CrossingLink<u32> = CrossingLink::new(slots);
            let mut m = ModelLink::new(slots);
            let mut rng = SplitMix64::new(seed * 31 + slots as u64);
            let mut sent = 0u32;
            for step in 0..5_000u32 {
                let ctx = format!("seed {seed} slots {slots} step {step}");
                assert_eq!(link.sender_ready(), m.ready_a, "{ctx}: ready");
                if link.sender_ready() && rng.chance(0.7) {
                    link.send(sent);
                    m.stage_a = Some(sent);
                    sent += 1;
                }
                if rng.chance(0.6) {
                    assert_eq!(link.pop(), m.queue.pop_front(), "{ctx}: pop");
                }
                link.tick();
                m.tick();
                assert_eq!(link.queue_len(), m.queue.len(), "{ctx}: queue");
                assert_eq!(link.dropped(), 0, "{ctx}: a >=4-slot link never drops");
                let model_empty = m.stage_a.is_none() && m.stage_b.is_none() && m.queue.is_empty();
                assert_eq!(link.is_empty(), model_empty, "{ctx}: is_empty");
            }
        }
    }
}

#[test]
fn settled_link_is_a_tick_fixpoint() {
    // Whenever `is_settled()` reports true, ticking must change nothing
    // observable; whenever it reports false, the link must settle within
    // a bounded number of quiescent ticks (two, for the ready pipeline).
    let mut rng = SplitMix64::new(1234);
    let mut link: CrossingLink<u32> = CrossingLink::new(4);
    let mut sent = 0u32;
    for step in 0..3_000u32 {
        if link.sender_ready() && rng.chance(0.5) {
            link.send(sent);
            sent += 1;
        }
        if rng.chance(0.5) {
            let _ = link.pop();
        }
        link.tick();
        if link.is_settled() {
            let before = (link.queue_len(), link.sender_ready(), link.is_empty());
            link.tick();
            let after = (link.queue_len(), link.sender_ready(), link.is_empty());
            assert_eq!(before, after, "step {step}: settled link moved on tick");
            assert!(link.is_settled(), "step {step}: settledness is stable");
        } else if link.is_empty() {
            // No tokens in flight: only the ready pipeline is catching up.
            link.tick();
            link.tick();
            assert!(link.is_settled(), "step {step}: empty link settles in 2");
        }
    }
}

#[test]
fn delay_line_matches_timestamp_model() {
    for seed in 0..8u64 {
        for latency in [0u64, 1, 3, 9] {
            let mut d: DelayLine<u32> = DelayLine::unbounded(latency);
            let mut m: VecDeque<(u64, u32)> = VecDeque::new();
            let mut rng = SplitMix64::new(seed ^ (latency << 32));
            let mut next = 0u32;
            for now in 0..4_000u64 {
                let ctx = format!("seed {seed} latency {latency} now {now}");
                if rng.chance(0.4) {
                    d.push(now, next);
                    m.push_back((now + latency, next));
                    next += 1;
                }
                assert_eq!(
                    d.next_ready(),
                    m.front().map(|(r, _)| *r),
                    "{ctx}: next_ready"
                );
                if rng.chance(0.5) {
                    let model_pop = match m.front() {
                        Some((ready, _)) if *ready <= now => m.pop_front().map(|(_, v)| v),
                        _ => None,
                    };
                    let model_peek_next = match m.front() {
                        Some((ready, v)) if *ready <= now => Some(*v),
                        _ => None,
                    };
                    assert_eq!(d.pop_ready(now), model_pop, "{ctx}: pop_ready");
                    assert_eq!(d.peek_ready(now).copied(), model_peek_next, "{ctx}: peek");
                }
                assert_eq!(d.len(), m.len(), "{ctx}: len");
                assert_eq!(d.is_empty(), m.is_empty(), "{ctx}: is_empty");
            }
        }
    }
}

#[test]
fn bounded_delay_line_matches_capacity_model() {
    let mut d: DelayLine<u32> = DelayLine::bounded(2, 3);
    let mut m: VecDeque<(u64, u32)> = VecDeque::new();
    let mut rng = SplitMix64::new(77);
    let mut next = 0u32;
    for now in 0..4_000u64 {
        assert_eq!(d.can_push(), m.len() < 3, "now {now}: can_push");
        if d.can_push() && rng.chance(0.6) {
            d.push(now, next);
            m.push_back((now + 2, next));
            next += 1;
        }
        if rng.chance(0.5) {
            let model_pop = match m.front() {
                Some((ready, _)) if *ready <= now => m.pop_front().map(|(_, v)| v),
                _ => None,
            };
            assert_eq!(d.pop_ready(now), model_pop, "now {now}: pop");
        }
        assert_eq!(d.len(), m.len(), "now {now}: len");
    }
}

/// Reference oracle for [`LatencyHistogram::quantile`]: the exact
/// rank-`ceil(q·n)` order statistic from a sorted copy of the samples.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[rank as usize - 1]
}

/// Draws one sample stream mixing the histogram's exact range, the
/// log-bucketed mid range, and sparse huge outliers.
fn histogram_samples(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| match rng.next_below(10) {
            0..=3 => rng.next_below(16),                // exact buckets
            4..=7 => 16 + rng.next_below(100_000),      // log range
            8 => 1 << (20 + rng.next_below(30) as u32), // powers of two
            _ => u64::MAX - rng.next_below(1 << 20),    // near-overflow
        })
        .collect()
}

/// Merging is element-wise integer addition, so any merge tree over the
/// same histograms must produce identical bytes: `(a ∪ b) ∪ c` equals
/// `a ∪ (b ∪ c)` equals the histogram of the concatenated streams, and
/// merging an empty histogram is the identity.
#[test]
fn histogram_merge_is_associative_and_matches_concatenation() {
    use simkit::record::LatencyHistogram;
    for seed in 0..6u64 {
        let streams: Vec<Vec<u64>> = (0..3)
            .map(|i| histogram_samples(seed * 31 + i, 200 + 37 * i as usize))
            .collect();
        let parts: Vec<LatencyHistogram> = streams
            .iter()
            .map(|s| {
                let mut h = LatencyHistogram::new();
                for &v in s {
                    h.record(v);
                }
                h
            })
            .collect();

        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);

        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);

        let mut flat = LatencyHistogram::new();
        for s in &streams {
            for &v in s {
                flat.record(v);
            }
        }

        assert_eq!(left, right, "seed {seed}: merge order changed the bytes");
        assert_eq!(left, flat, "seed {seed}: merge differs from concatenation");

        let mut with_empty = left.clone();
        with_empty.merge(&LatencyHistogram::new());
        assert_eq!(with_empty, left, "seed {seed}: empty merge not identity");
    }
}

/// Every quantile must land in `[oracle, oracle + oracle/8 + 1]`: never
/// below the true order statistic (bucket upper edges round up) and
/// within the documented `2^-3` relative error above it.
#[test]
fn histogram_quantiles_bound_the_sorted_vec_oracle() {
    use simkit::record::LatencyHistogram;
    for seed in 0..6u64 {
        for n in [1usize, 2, 7, 100, 1_000] {
            let samples = histogram_samples(seed * 17 + n as u64, n);
            let mut h = LatencyHistogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.min(), sorted[0]);
            assert_eq!(h.max(), *sorted.last().unwrap());
            for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let want = oracle_quantile(&sorted, q);
                let got = h.quantile(q);
                assert!(
                    got >= want,
                    "seed {seed} n {n} q {q}: {got} below oracle {want}"
                );
                let slack = want / 8 + 1;
                assert!(
                    got <= want.saturating_add(slack),
                    "seed {seed} n {n} q {q}: {got} exceeds oracle {want} + {slack}"
                );
            }
        }
    }
}
