//! End-to-end guarantees of the multi-tenant serving layer.
//!
//! * **Determinism**: a serving run is a pure function of `(seed,
//!   config)` — repeat runs, worker-thread fan-out (`--jobs`), and
//!   fabric host threading (`--sim-threads`) must all produce
//!   byte-identical exports.
//! * **Overload**: at 10× saturation the scheduler sheds load with
//!   explicit rejections; nothing stalls, nothing trips a watchdog,
//!   and every completion still validates against the golden
//!   reference.
//! * **Preemption**: jobs preempted for higher-priority traffic and
//!   later resumed from their checkpoint produce golden-exact results
//!   for the integer algorithms and ≤ 1e-5 for PageRank (asserted
//!   inside the scheduler via `golden_mismatches`).
//! * **Priority**: strict-priority scheduling plus boundary preemption
//!   bounds priority inversion — the high class's tail latency stays
//!   below the low class's under mixed overload.

use bench::experiments::serve::{sweep_with_jobs, ServeSweepOptions};
use bench::experiments::Scope;
use serve::{run, JobKey, Priority, Request, Scheduler, ServeConfig};
use simkit::record::to_json;
use simkit::Cycle;

/// Tiny scope: every test runs the 64×-shrunk catalog so the whole file
/// stays inside the debug-mode CI budget.
fn tiny_scope() -> Scope {
    Scope {
        full: false,
        shrink: 64,
    }
}

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        requests: 40,
        shrink: 64,
        ..ServeConfig::default()
    }
}

#[test]
fn repeat_runs_are_byte_identical() {
    let cfg = tiny_cfg();
    let a = run(&cfg).expect("first run");
    let b = run(&cfg).expect("second run");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "same seed + config must reproduce the full report byte for byte"
    );
    assert!(a.completed > 0, "the smoke workload must complete requests");
}

#[test]
fn sweep_export_is_independent_of_worker_count() {
    let opts = ServeSweepOptions {
        requests: 30,
        rates_permille: vec![500, 1000, 4000],
        ..ServeSweepOptions::default()
    };
    let (serial, _) = sweep_with_jobs(tiny_scope(), &opts, 1).expect("jobs=1 sweep");
    let (parallel, _) = sweep_with_jobs(tiny_scope(), &opts, 4).expect("jobs=4 sweep");
    assert_eq!(
        to_json(&serial),
        to_json(&parallel),
        "indexed result slots must make --jobs invisible in the export"
    );
}

#[test]
fn fabric_slots_are_byte_identical_across_sim_threads() {
    let base = ServeConfig {
        requests: 20,
        slot_devices: 2,
        shrink: 64,
        ..ServeConfig::default()
    };
    let one = run(&ServeConfig {
        sim_threads: 1,
        ..base.clone()
    })
    .expect("sim-threads=1");
    let four = run(&ServeConfig {
        sim_threads: 4,
        ..base
    })
    .expect("sim-threads=4");
    assert_eq!(
        format!("{one:?}"),
        format!("{four:?}"),
        "fabric host threading must never reach the report"
    );
    assert_eq!(one.golden_mismatches, 0);
}

#[test]
fn overload_sheds_explicitly_without_watchdog_trips() {
    let rep = run(&ServeConfig {
        requests: 80,
        rate_permille: 10_000,
        shrink: 64,
        ..ServeConfig::default()
    })
    .expect("10x overload run");
    assert!(
        rep.shed > 0,
        "10x saturation must trigger admission-control rejections: {rep:?}"
    );
    assert_eq!(rep.watchdog_trips, 0, "overload must shed, not stall");
    assert_eq!(rep.failed, 0);
    assert_eq!(rep.golden_mismatches, 0);
    assert_eq!(rep.admitted + rep.shed, rep.generated);
    assert_eq!(
        rep.completed, rep.admitted,
        "every admitted request finishes"
    );
    assert!(
        rep.shed_rate() > 0.0 && rep.shed_rate() < 1.0,
        "shedding is partial, not total: {}",
        rep.shed_rate()
    );
}

/// Hand-built stream: three long low-priority jobs (PageRank, SSSP, BFS)
/// fill the single slot, then a burst of high-priority requests forces
/// checkpoint-park-resume on each. The scheduler validates every
/// completion against the golden executors, so `golden_mismatches == 0`
/// IS the preempted-then-resumed correctness assertion — exact for the
/// integer algorithms, ≤ 1e-5 for PageRank.
#[test]
fn preempted_then_resumed_jobs_still_validate_golden() {
    let sched = Scheduler::new(&ServeConfig {
        slots: 1,
        quantum: 1,
        max_parked: 8,
        shrink: 64,
        ..ServeConfig::default()
    })
    .expect("calibration");
    let est = sched.service_estimates().to_vec();
    let mut requests = Vec::new();
    // Low-priority long jobs, arriving back to back.
    for (i, query) in [4usize, 2, 0].into_iter().enumerate() {
        let job = JobKey { graph: 0, query };
        requests.push(Request {
            id: i as u64,
            arrival: 1 + i as Cycle,
            tenant: 3,
            priority: Priority::Low,
            job,
            deadline: Cycle::MAX,
        });
    }
    // A high-priority burst landing mid-execution of the first job.
    let spark = est[sched.catalog().job_index(JobKey { graph: 0, query: 0 })] / 4;
    for i in 0..4u64 {
        requests.push(Request {
            id: 3 + i,
            arrival: spark + i,
            tenant: 0,
            priority: Priority::High,
            job: JobKey {
                graph: (i % 3) as usize,
                query: 1,
            },
            deadline: Cycle::MAX,
        });
    }
    requests.sort_by_key(|r| r.arrival);
    let rep = sched.run(&requests).expect("schedule");
    assert_eq!(rep.completed, 7, "every request completes: {rep:?}");
    assert!(rep.preemptions >= 1, "the burst must preempt: {rep:?}");
    assert!(rep.resumes >= 1, "parked work must resume: {rep:?}");
    assert_eq!(
        rep.golden_mismatches, 0,
        "preempted-then-resumed results must validate against golden"
    );
    assert_eq!(rep.failed, 0);
}

/// Under sustained mixed overload the high class must not wait behind
/// low-class work: strict-priority dispatch plus boundary preemption
/// keeps its p99 below the low class's p99.
#[test]
fn priority_inversion_is_bounded_under_mixed_load() {
    let rep = run(&ServeConfig {
        requests: 120,
        rate_permille: 4_000,
        max_queue: 64,
        shrink: 64,
        ..ServeConfig::default()
    })
    .expect("mixed 4x load");
    let high = &rep.class_latency[Priority::High.index()];
    let low = &rep.class_latency[Priority::Low.index()];
    assert!(
        high.count() >= 5 && low.count() >= 5,
        "both classes need samples: high={} low={}",
        high.count(),
        low.count()
    );
    assert!(
        high.quantile(0.99) < low.quantile(0.99),
        "high-class p99 {} must stay below low-class p99 {}",
        high.quantile(0.99),
        low.quantile(0.99)
    );
    assert_eq!(rep.golden_mismatches, 0);
}

/// The serve trace track carries the request lifecycle: arrivals,
/// dispatches, and completions for every request, preempt/resume pairs
/// when the scheduler parks work.
#[test]
fn trace_records_request_lifecycle() {
    let rep = run(&ServeConfig {
        requests: 20,
        rate_permille: 2_000,
        shrink: 64,
        trace: simkit::trace::TraceConfig::events(),
        ..ServeConfig::default()
    })
    .expect("traced run");
    let names: Vec<&str> = rep.trace.events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "serve.arrive").count() as u64,
        rep.generated
    );
    assert_eq!(
        names.iter().filter(|n| **n == "serve.complete").count() as u64,
        rep.completed
    );
    assert_eq!(
        names.iter().filter(|n| **n == "serve.shed").count() as u64,
        rep.shed
    );
    assert_eq!(
        names.iter().filter(|n| **n == "serve.preempt").count() as u64,
        rep.preemptions
    );
    assert!(
        rep.trace.events.windows(2).all(|w| w[0].time <= w[1].time),
        "trace events are time-ordered"
    );
}
