//! Integration tests of the paper's architectural claims: coalescing,
//! topology trade-offs, traditional-cache collapse, cache-array
//! redundancy, bandwidth scaling, and the thousands-of-outstanding-misses
//! headline — the qualitative shapes behind Figs. 11, 12, 14, and 15.
//!
//! The memory-system claims are driven with controlled synthetic request
//! streams against [`MomsSystem`] directly; the execution-model claims run
//! the full accelerator.

use accel::{PeConfig, System, SystemConfig};
use algos::Algorithm;
use dram::{DramConfig, MemorySystem};
use graph::Partitioner;
use moms::{CacheConfig, MomsConfig, MomsReq, MomsSystem, MomsSystemConfig, Topology};
use simkit::SplitMix64;

fn moms_config(topology: Topology, pes: usize, channels: usize) -> MomsSystemConfig {
    MomsSystemConfig {
        topology,
        num_pes: pes,
        num_channels: channels,
        shared_banks: 4 * channels,
        shared: MomsConfig::paper_shared_bank()
            .scaled(1, 32)
            .without_cache(),
        private: MomsConfig::paper_private_bank(false).scaled(1, 32),
        pe_slr: moms::system::default_pe_slrs(pes),
        channel_slr: moms::system::default_channel_slrs(channels),
        crossing_latency: 4,
        base_net_latency: 2,
        resp_link_cycles_per_line: 8,
    }
}

/// Shard-shaped request stream: edge streaming reads sources within one
/// source interval (a window of `window_lines` cache lines) for
/// `window_len` consecutive requests before moving on, with a power-law
/// skew of exponent `skew` inside the window — the access pattern the
/// partitioned layout actually produces (§III-A).
fn shard_stream(
    count: usize,
    window_lines: u64,
    window_len: usize,
    skew: i32,
    seed: u64,
) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|i| {
            let base = (i / window_len) as u64 * window_lines;
            let u = rng.next_f64().powi(skew);
            base + ((u * window_lines as f64) as u64).min(window_lines - 1)
        })
        .collect()
}

/// Feeds one request per PE per cycle (round-robin over the stream) until
/// every response returns; reports total cycles and system stats.
fn drive(cfg: MomsSystemConfig, dram: DramConfig, stream: &[u64]) -> (u64, simkit::Stats) {
    let pes = cfg.num_pes;
    let channels = cfg.num_channels;
    let mut sys = MomsSystem::new(cfg);
    let mut mem = MemorySystem::new(dram, channels);
    let mut next = vec![0usize; pes]; // per-PE cursor into its slice
    let per_pe: Vec<Vec<u64>> = (0..pes)
        .map(|p| stream.iter().skip(p).step_by(pes).copied().collect())
        .collect();
    let mut received = 0usize;
    let mut now = 0u64;
    while received < stream.len() {
        for p in 0..pes {
            if next[p] < per_pe[p].len() {
                let line = per_pe[p][next[p]];
                if sys.try_request(
                    p,
                    MomsReq {
                        line,
                        word: (line % 16) as u8,
                        id: (next[p] % 65536) as u32,
                    },
                ) {
                    next[p] += 1;
                }
            }
        }
        sys.tick(now, &mut mem);
        mem.tick(now);
        for ch in 0..mem.num_channels() {
            while let Some(r) = mem.pop_response(now, ch) {
                assert!(MomsSystem::owns_dram_id(r.id));
                sys.dram_response(r.id, r.lines);
            }
        }
        for p in 0..pes {
            while sys.pop_response(p).is_some() {
                received += 1;
            }
        }
        now += 1;
        assert!(now < 50_000_000, "stream did not drain");
    }
    (now, sys.stats())
}

#[test]
fn moms_coalescing_cuts_dram_reads_well_below_request_count() {
    let stream = shard_stream(40_000, 128, 4000, 4, 1);
    let (_, stats) = drive(
        moms_config(Topology::TwoLevel, 4, 1),
        DramConfig::default(),
        &stream,
    );
    let dram_lines = stats.get("dram_line_requests");
    assert!(
        dram_lines * 4 < stream.len() as u64,
        "coalescing too weak: {dram_lines} lines for {} reads",
        stream.len()
    );
}

#[test]
fn two_level_issues_less_dram_traffic_than_private() {
    let stream = shard_stream(30_000, 256, 3000, 2, 2);
    let (_, two) = drive(
        moms_config(Topology::TwoLevel, 4, 2),
        DramConfig::default(),
        &stream,
    );
    let (_, prv) = drive(
        moms_config(Topology::Private, 4, 2),
        DramConfig::default(),
        &stream,
    );
    assert!(
        two.get("dram_line_requests") < prv.get("dram_line_requests"),
        "two-level {} vs private {}",
        two.get("dram_line_requests"),
        prv.get("dram_line_requests")
    );
}

#[test]
fn moms_outperforms_traditional_cache_on_skewed_stream() {
    // Same stream, same DRAM, same (small) cache budget: the MOMS absorbs
    // the miss burst in its thousands of subentries, the 16-entry MSHR
    // file stalls (§II, Fig. 12).
    let stream = shard_stream(40_000, 256, 4000, 2, 3);
    let moms_cfg = moms_config(Topology::TwoLevel, 4, 2);
    let (t_moms, _) = drive(moms_cfg, DramConfig::default(), &stream);

    let mut trad_cfg = moms_config(Topology::TwoLevel, 4, 2);
    trad_cfg.shared = MomsConfig::traditional(Some(CacheConfig { lines: 32, ways: 1 }));
    trad_cfg.private = MomsConfig::traditional(Some(CacheConfig { lines: 32, ways: 4 }));
    let (t_trad, _) = drive(trad_cfg, DramConfig::default(), &stream);

    assert!(
        t_moms as f64 * 1.3 < t_trad as f64,
        "MOMS {t_moms} cycles vs traditional {t_trad}: expected ≥1.3x win"
    );
}

#[test]
fn cache_arrays_barely_matter_for_the_moms() {
    // Fig. 12/15: deactivating the cache arrays costs the MOMS little.
    let stream = shard_stream(40_000, 256, 4000, 2, 4);
    let mut with_cfg = moms_config(Topology::TwoLevel, 4, 2);
    // Small arrays: 32 lines per shared bank (a fraction of the working
    // set, like the paper's 256 kB against tens of MB).
    with_cfg.shared = with_cfg
        .shared
        .with_cache(CacheConfig { lines: 32, ways: 1 });
    let (t_with, _) = drive(with_cfg, DramConfig::default(), &stream);
    let (t_without, _) = drive(
        moms_config(Topology::TwoLevel, 4, 2),
        DramConfig::default(),
        &stream,
    );
    let ratio = t_without as f64 / t_with as f64;
    assert!(
        ratio < 1.25,
        "cache array removal slowed the MOMS {ratio:.2}x; should be marginal"
    );
}

#[test]
fn throughput_scales_with_memory_channels() {
    // Fig. 14: a stream with little reuse is memory bound; channels help.
    let stream = shard_stream(40_000, 2048, 4000, 1, 5);
    let (t1, _) = drive(
        moms_config(Topology::TwoLevel, 8, 1),
        DramConfig::default(),
        &stream,
    );
    let (t4, _) = drive(
        moms_config(Topology::TwoLevel, 8, 4),
        DramConfig::default(),
        &stream,
    );
    let speedup = t1 as f64 / t4 as f64;
    assert!(speedup > 2.0, "4 channels only {speedup:.2}x faster than 1");
}

#[test]
fn outstanding_misses_reach_the_thousands() {
    // The headline: with a saturated memory system, thousands of misses
    // are simultaneously in flight (scaled: the paper's full-size system
    // reaches tens of thousands).
    let stream = shard_stream(60_000, 256, 6000, 4, 6);
    let (_, stats) = drive(
        moms_config(Topology::TwoLevel, 16, 1),
        DramConfig::default(),
        &stream,
    );
    let peak = stats.get("peak_outstanding_misses");
    assert!(peak > 1_000, "peak outstanding misses only {peak}");
}

#[test]
fn convergence_tracking_skips_inactive_work() {
    // Full-system test: BFS over a long chain activates only the frontier
    // intervals each iteration, so total gathers stay far below
    // edges × iterations (Template 1's active_srcs machinery).
    let n = 4096u32;
    let g = graph::CooGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)).collect());
    let cfg = SystemConfig {
        dram: DramConfig::default(),
        moms: moms_config(Topology::TwoLevel, 4, 2),
        pe: PeConfig {
            bram_nodes: 128,
            ..PeConfig::default()
        },
        max_iterations: None,
        execution: accel::ExecutionMode::AlgorithmDefault,
        moms_trace_cap: 0,
        fault: simkit::FaultConfig::none(),
        trace: simkit::TraceConfig::default(),
        watchdog_cycles: Some(accel::DEFAULT_WATCHDOG_CYCLES),
        idle_skip: true,
    };
    let r = System::new(&g, Partitioner::new(128, 128), Algorithm::bfs(0), cfg).run();
    assert!(
        r.iterations >= 4,
        "chain should take several frontier steps"
    );
    let upper = g.num_edges() as u64 * r.iterations as u64;
    assert!(
        r.edges_processed < upper / 4,
        "active tracking ineffective: {} of {upper}",
        r.edges_processed
    );
    // And the result is still exact.
    assert_eq!(r.values, algos::golden::run(&Algorithm::bfs(0), &g));
}
