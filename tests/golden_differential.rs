//! Cross-architecture golden-equivalence suite: the certification net
//! under the hot-loop rewrite.
//!
//! Every algorithm (BFS/SCC/SSSP/PageRank) on every quick-scope
//! architecture must produce exactly the golden executor's values —
//! bit-for-bit for the monotone algorithms, within a few ulp per node
//! for PageRank (see [`PAGERANK_ULP_BOUND`] for why bit-equality is
//! structurally impossible there).
//!
//! This suite was blessed against the pre-rewrite simulator and runs
//! unchanged afterwards, so a green run certifies the optimisation did
//! not alter simulated behaviour.

use accel::System;
use algos::{golden, Algorithm};
use bench::{ArchPoint, RunSpec};
use graph::{CooGraph, GraphSpec};

/// Unweighted graph exercising skewed degrees across several intervals.
fn unweighted_graph() -> CooGraph {
    GraphSpec::rmat(9, 8).build(2021)
}

/// Weighted companion for SSSP.
fn weighted_graph() -> CooGraph {
    GraphSpec::rmat(9, 6)
        .build(2021)
        .with_random_weights(0, 255, 11)
}

/// Builds and runs `algo` on the quick-scope architecture `arch`.
///
/// `shrink = 32` keeps the scaled bank/interval sizes test-friendly while
/// preserving the architecture's shape (topology, PE count, bank count,
/// cache arrays, MSHR organisation).
fn run_values(g: &CooGraph, algo: Algorithm, arch: ArchPoint) -> Vec<u32> {
    let mut spec = RunSpec::new(arch);
    spec.shrink = 32;
    let (cfg, partitioner) = spec.run_config().build();
    System::new(g, partitioner, algo, cfg).run().values
}

/// Maximum tolerated ulp distance per node between the accelerator's
/// PageRank and the golden executor's.
///
/// The two cannot be bit-equal by construction: the PE's tagged DMA edge
/// bursts complete out of order (deterministically), so per-destination
/// contributions sum in a different association than golden's sequential
/// edge sweep. The observed worst case over the quick-scope matrix is
/// 3 ulp after 10 iterations; 8 leaves slack without hiding real bugs
/// (8 ulp of an f32 is ≈ 1e-6 relative). Bit-exact reproducibility of
/// the accelerator itself is pinned separately by `cycle_pinning`, whose
/// fixture hashes every value vector.
const PAGERANK_ULP_BOUND: u64 = 8;

/// Asserts two PageRank bit-vectors agree within [`PAGERANK_ULP_BOUND`]
/// per node. PageRank values are positive finite floats, so the ulp
/// distance is the absolute difference of the raw bit patterns.
fn assert_pagerank_ulp(got: &[u32], want: &[u32], arch: &str) {
    assert_eq!(got.len(), want.len(), "{arch}: node count mismatch");
    let mut max = 0u64;
    let mut at = 0usize;
    for (i, (&a, &b)) in got.iter().zip(want).enumerate() {
        let ulp = (i64::from(a) - i64::from(b)).unsigned_abs();
        if ulp > max {
            max = ulp;
            at = i;
        }
    }
    assert!(
        max <= PAGERANK_ULP_BOUND,
        "{arch}: pagerank node {at} off by {max} ulp \
         (got {:e}, want {:e})",
        f32::from_bits(got[at]),
        f32::from_bits(want[at]),
    );
}

#[test]
fn bfs_matches_golden_on_every_quick_arch() {
    let g = unweighted_graph();
    let algo = Algorithm::bfs(0);
    let want = golden::run(&algo, &g);
    for arch in ArchPoint::QUICK {
        let got = run_values(&g, algo, arch);
        assert_eq!(got, want, "{}: BFS diverged from golden", arch.name);
    }
}

#[test]
fn scc_matches_golden_on_every_quick_arch() {
    let g = unweighted_graph();
    let want = golden::run(&Algorithm::Scc, &g);
    for arch in ArchPoint::QUICK {
        let got = run_values(&g, Algorithm::Scc, arch);
        assert_eq!(got, want, "{}: SCC diverged from golden", arch.name);
    }
}

#[test]
fn sssp_matches_golden_on_every_quick_arch() {
    let g = weighted_graph();
    let algo = Algorithm::sssp(0);
    let want = golden::run(&algo, &g);
    for arch in ArchPoint::QUICK {
        let got = run_values(&g, algo, arch);
        assert_eq!(got, want, "{}: SSSP diverged from golden", arch.name);
    }
}

#[test]
fn pagerank_matches_golden_within_ulp_bound_on_every_quick_arch() {
    let g = unweighted_graph();
    let algo = Algorithm::pagerank();
    let want = golden::run(&algo, &g);
    for arch in ArchPoint::QUICK {
        let got = run_values(&g, algo, arch);
        assert_pagerank_ulp(&got, &want, arch.name);
    }
}
