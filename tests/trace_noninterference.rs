//! Differential harness for the observability layer: tracing must be a
//! pure observer.
//!
//! * Running any algorithm with tracing off, at `counters` level, or at
//!   full `events` level must produce bit-identical result values AND the
//!   exact same simulated cycle count — a tracer that shifts timing by
//!   even one cycle is a probe effect, not an observer.
//! * The same must hold with fault injection active, because the fault
//!   schedule keys off simulation state and would amplify any
//!   perturbation.
//! * A tiny fixed-seed run produces a byte-stable canonical event stream,
//!   committed as a fixture; regenerate it with
//!   `REPRO_BLESS_TRACE=1 cargo test -p bench --test trace_noninterference`.

use accel::{System, SystemConfig};
use algos::Algorithm;
use graph::{CooGraph, GraphSpec, Partitioner};
use simkit::trace::{to_canonical, to_chrome_json, to_csv, TraceConfig, TraceLevel};
use simkit::{FaultConfig, FaultProfile};

fn test_graph() -> CooGraph {
    GraphSpec::rmat(8, 6)
        .build(41)
        .with_random_weights(0, 255, 3)
}

fn all_algos() -> [Algorithm; 4] {
    [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::pagerank(),
    ]
}

fn run_traced(
    g: &CooGraph,
    algo: Algorithm,
    fault: FaultConfig,
    trace: TraceConfig,
) -> accel::RunResult {
    let mut cfg = SystemConfig::small();
    cfg.fault = fault;
    cfg.trace = trace;
    System::new(g, Partitioner::new(256, 256), algo, cfg).run()
}

fn level(level: TraceLevel) -> TraceConfig {
    TraceConfig {
        level,
        ..TraceConfig::default()
    }
}

#[test]
fn tracing_never_changes_results_or_cycles() {
    let g = test_graph();
    for algo in all_algos() {
        let base = run_traced(&g, algo, FaultConfig::none(), level(TraceLevel::Off));
        assert!(base.trace.is_empty(), "tracing off must collect nothing");
        for lvl in [TraceLevel::Counters, TraceLevel::Events] {
            let r = run_traced(&g, algo, FaultConfig::none(), level(lvl));
            assert_eq!(
                r.values,
                base.values,
                "{} at {lvl:?}: traced values diverged from untraced run",
                algo.name()
            );
            assert_eq!(
                r.cycles,
                base.cycles,
                "{} at {lvl:?}: tracing changed the simulated cycle count",
                algo.name()
            );
            assert!(
                !r.trace.counters.is_empty(),
                "{} at {lvl:?}: occupancy sampling should be active",
                algo.name()
            );
            if lvl == TraceLevel::Events {
                assert!(
                    !r.trace.events.is_empty(),
                    "{}: events level recorded no events",
                    algo.name()
                );
            } else {
                assert!(
                    r.trace.events.is_empty(),
                    "{}: counters level must not record events",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn tracing_is_noninterfering_under_fault_injection() {
    let g = test_graph();
    let fault = FaultConfig {
        profile: FaultProfile::ChaosLite,
        seed: 7,
    };
    for algo in all_algos() {
        let base = run_traced(&g, algo, fault, level(TraceLevel::Off));
        for lvl in [TraceLevel::Counters, TraceLevel::Events] {
            let r = run_traced(&g, algo, fault, level(lvl));
            assert_eq!(
                r.values,
                base.values,
                "{} at {lvl:?} under chaos-lite: traced values diverged",
                algo.name()
            );
            assert_eq!(
                r.cycles,
                base.cycles,
                "{} at {lvl:?} under chaos-lite: cycle count diverged",
                algo.name()
            );
        }
    }
}

#[test]
fn trace_window_restricts_event_range() {
    let g = test_graph();
    let full = run_traced(
        &g,
        Algorithm::Scc,
        FaultConfig::none(),
        level(TraceLevel::Events),
    );
    let window = (100, 400);
    let mut cfg = level(TraceLevel::Events);
    cfg.window = Some(window);
    let r = run_traced(&g, Algorithm::Scc, FaultConfig::none(), cfg);
    assert_eq!(r.cycles, full.cycles, "windowing changed the simulation");
    assert!(!r.trace.events.is_empty(), "window [100,400) saw no events");
    assert!(
        r.trace
            .events
            .iter()
            .all(|e| e.time >= window.0 && e.time < window.1),
        "an event escaped the trace window"
    );
    assert!(
        r.trace.events.len() < full.trace.events.len(),
        "window did not reduce the event count"
    );
}

const GOLDEN_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden_trace.txt"
);

/// The tiny fixed-seed run behind the golden fixture: small enough that
/// the canonical stream stays reviewable, deterministic by construction.
fn golden_run() -> accel::RunResult {
    let g = GraphSpec::rmat(5, 4).build(13);
    let mut trace = level(TraceLevel::Events);
    trace.capacity = 1 << 20; // never drop: the fixture must be complete
    run_traced(&g, Algorithm::bfs(0), FaultConfig::none(), trace)
}

#[test]
fn golden_trace_is_byte_stable() {
    let r = golden_run();
    assert_eq!(r.trace.dropped, 0, "golden run must not drop events");
    let got = to_canonical(&r.trace.events);
    if std::env::var_os("REPRO_BLESS_TRACE").is_some() {
        std::fs::write(GOLDEN_FIXTURE, &got).expect("bless golden fixture");
        eprintln!("blessed {GOLDEN_FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_FIXTURE)
        .expect("missing fixture; run with REPRO_BLESS_TRACE=1 to create it");
    assert_eq!(
        got, want,
        "canonical event stream drifted from tests/fixtures/golden_trace.txt; \
         if the change is intentional, re-bless with REPRO_BLESS_TRACE=1"
    );
}

#[test]
fn exporters_render_the_golden_run() {
    let r = golden_run();
    let json = to_chrome_json(&r.trace);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"M\""), "missing metadata events");
    let csv = to_csv(&r.trace);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("time,track,record,name,value"));
    assert!(lines.next().is_some(), "CSV export is empty");
}
