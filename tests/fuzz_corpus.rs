//! Replays the committed fuzz regression corpus.
//!
//! Every `case-*.txt` under `tests/fixtures/fuzz_corpus/` — seeded
//! entries plus every minimal reproducer the conformance fuzzer has ever
//! saved — is run through the full differential oracle stack and must
//! pass. A fuzz-found bug therefore stays fixed: its minimized case
//! fails tier-1 the moment a regression reintroduces it.
//!
//! `injected-*.txt` entries are demonstrations of the `--inject-corruption`
//! test hook (they replay *red* by construction, proving the oracle
//! stack and shrinker fire); this test checks they still parse, and that
//! their deliberately-corrupted replay is still caught, but does not
//! require them to pass.

use std::time::Duration;

use bench::fuzz::{parse_corpus_file, CaseOutcome, FuzzOptions};

const CORPUS_DIR: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/fuzz_corpus"
);

fn corpus_entries(prefix: &str) -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = std::fs::read_dir(CORPUS_DIR)
        .expect("corpus directory is missing")
        .map(|e| e.expect("unreadable corpus entry").path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with(prefix) && name.ends_with(".txt")
        })
        .map(|p| {
            let body = std::fs::read_to_string(&p).expect("unreadable corpus file");
            (p.file_name().unwrap().to_string_lossy().into_owned(), body)
        })
        .collect();
    entries.sort();
    entries
}

fn opts() -> FuzzOptions {
    FuzzOptions {
        per_case_timeout: Duration::from_secs(300),
        ..FuzzOptions::default()
    }
}

#[test]
fn every_corpus_entry_replays_green() {
    let entries = corpus_entries("case-");
    assert!(
        !entries.is_empty(),
        "the regression corpus must not be empty"
    );
    let opts = opts();
    for (name, body) in entries {
        let case = parse_corpus_file(&body).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !case.corrupt,
            "{name}: case-* entries must not carry the corruption hook"
        );
        match bench::fuzz::check_case(&case, &opts) {
            CaseOutcome::Pass { .. } => {}
            other => panic!("{name}: corpus entry no longer replays green: {other:?}"),
        }
    }
}

#[test]
fn injected_entries_still_demonstrate_the_oracles() {
    // Optional by construction: injected-* files exist only after someone
    // runs `repro fuzz --inject-corruption` and commits the result.
    for (name, body) in corpus_entries("injected-") {
        let case = parse_corpus_file(&body).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            case.corrupt,
            "{name}: injected-* entries must carry the corruption hook"
        );
        match bench::fuzz::check_case(&case, &opts()) {
            CaseOutcome::Fail(_) => {}
            other => {
                panic!("{name}: injected corruption is no longer caught by any oracle: {other:?}")
            }
        }
    }
}
