//! Multi-accelerator fabric suite: sharded scale-out runs joined by the
//! cycle-level link network.
//!
//! * A 1-device fabric must be cycle-identical (and bitwise
//!   value-identical) to a plain synchronous `System` run — the fabric
//!   layer adds nothing when there is nothing to exchange.
//! * Multi-device runs shard by destination ownership, so every vertex's
//!   reduction happens on exactly one device in single-device shard
//!   order: results must match the golden executors *exactly* for the
//!   monotone algorithms and bit-for-bit across device counts for
//!   PageRank's non-associative f32 accumulation.
//! * Both link topologies must deliver the same values; only timing may
//!   differ. Repeated runs must be fully deterministic.
//! * A black-hole link fault starves the barrier of expected messages
//!   and must terminate through the fabric watchdog with per-link
//!   diagnostics — never a hang.

use accel::{
    Driver, ExecutionMode, Fabric, FabricError, FabricRunResult, LinkConfig, LinkTopology, System,
};
use algos::{golden, Algorithm};
use graph::{CooGraph, GraphSpec};
use simkit::{FaultConfig, FaultProfile};

fn test_graph() -> CooGraph {
    GraphSpec::rmat(9, 6)
        .build(41)
        .with_random_weights(0, 255, 3)
}

fn all_algos() -> [Algorithm; 5] {
    [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::Wcc,
        Algorithm::pagerank(),
    ]
}

fn run_fabric(g: &CooGraph, algo: Algorithm, devices: usize) -> FabricRunResult {
    Driver::new().devices(devices).run_fabric(g, algo)
}

#[test]
fn one_device_fabric_is_cycle_identical_to_system() {
    let g = test_graph();
    for algo in all_algos() {
        let driver = Driver::new().execution(ExecutionMode::ForceSynchronous);
        let (cfg, partitioner) = driver.run_config(&g).build();
        let single = System::new(&g, partitioner, algo, cfg).run();
        let fabric = driver.clone().devices(1).run_fabric(&g, algo);
        let name = algo.name();
        assert_eq!(
            fabric.cycles, single.cycles,
            "{name}: 1-device fabric changed timing"
        );
        assert_eq!(
            fabric.values, single.values,
            "{name}: 1-device fabric changed results"
        );
        assert_eq!(fabric.iterations, single.iterations, "{name}: iterations");
        assert_eq!(
            fabric.edges_processed, single.edges_processed,
            "{name}: edge count"
        );
        assert_eq!(fabric.stats, single.stats, "{name}: merged statistics");
        assert_eq!(
            fabric.link.messages_sent, 0,
            "{name}: no links, no messages"
        );
        assert_eq!(fabric.link.exchange_cycles, 0, "{name}: no exchange time");
        assert!(fabric.link.per_link.is_empty(), "{name}: no links exist");
    }
}

#[test]
fn sharded_runs_match_golden_exactly() {
    let g = test_graph();
    for algo in [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::Wcc,
    ] {
        let expect = golden::run(&algo, &g);
        for devices in [2, 4, 8] {
            let r = run_fabric(&g, algo, devices);
            assert_eq!(
                r.values,
                expect,
                "{} on {devices} devices diverged from golden",
                algo.name()
            );
            assert_eq!(r.devices, devices);
            assert!(r.iterations > 0);
            assert!(r.edges_processed > 0);
        }
    }
}

#[test]
fn pagerank_stays_within_fp_noise_on_every_device_count() {
    // Destination ownership keeps every vertex's f32 accumulation on one
    // device, but a PE gathers contributions in MOMS response-arrival
    // order, so sums can shift by an ulp as timing changes with the
    // device count — exactly the tolerance the DRAM fault profiles get.
    // Anything beyond rounding noise would be a lost or duplicated
    // remote update.
    let g = test_graph();
    let algo = Algorithm::pagerank();
    let expect = golden::run(&algo, &g);
    let baseline = run_fabric(&g, algo, 1);
    for devices in [1, 2, 4, 8] {
        let r = run_fabric(&g, algo, devices);
        assert_eq!(
            golden::pagerank_mismatch(&r.values, &expect, 1e-5),
            None,
            "pagerank on {devices} devices diverged from golden beyond fp noise"
        );
        assert_eq!(
            r.iterations, baseline.iterations,
            "{devices} devices changed the fixed iteration count"
        );
    }
}

#[test]
fn multi_device_runs_exchange_updates_over_links() {
    let g = test_graph();
    let r = run_fabric(&g, Algorithm::bfs(0), 4);
    assert!(r.link.messages_sent > 0, "no link messages on 4 devices");
    assert_eq!(
        r.link.messages_delivered, r.link.messages_sent,
        "fault-free run must deliver every message"
    );
    assert_eq!(r.link.messages_dropped, 0);
    assert!(r.link.updates > 0, "no vertex updates crossed the fabric");
    assert!(r.link.exchange_cycles > 0, "exchange was free");
    // All-to-all wiring on 4 devices: 12 directed links, and at least one
    // carried traffic.
    assert_eq!(r.link.per_link.len(), 12);
    assert!(r.link.per_link.iter().any(|l| l.messages > 0));
    let occ = r.link.mean_occupancy(r.cycles);
    assert!(
        (0.0..=1.0).contains(&occ),
        "mean occupancy {occ} out of range"
    );
    assert!(r.link.peak_occupancy(r.cycles) >= occ);
    // Barrier parking is attributed to the fabric-only breakdown class.
    assert!(
        r.pe_cycles.link_wait > 0,
        "multi-device run never parked a PE at the barrier"
    );
}

#[test]
fn ring_topology_matches_all_to_all_values() {
    let g = test_graph();
    for algo in [Algorithm::bfs(0), Algorithm::pagerank()] {
        let direct = Driver::new()
            .devices(4)
            .link_topology(LinkTopology::AllToAll)
            .run_fabric(&g, algo);
        let ring = Driver::new()
            .devices(4)
            .link_topology(LinkTopology::Ring)
            .run_fabric(&g, algo);
        assert_eq!(
            ring.values,
            direct.values,
            "{}: topology changed results",
            algo.name()
        );
        assert_eq!(ring.iterations, direct.iterations);
        // A 4-device ring has 4 directed links and store-and-forwards
        // through intermediates, so it moves at least as many messages.
        assert_eq!(ring.link.per_link.len(), 4);
        assert!(ring.link.messages_sent >= direct.link.messages_sent / 3);
    }
}

#[test]
fn fabric_runs_are_deterministic() {
    let g = test_graph();
    let a = run_fabric(&g, Algorithm::sssp(0), 4);
    let b = run_fabric(&g, Algorithm::sssp(0), 4);
    assert_eq!(a.cycles, b.cycles, "repeated fabric runs disagree on time");
    assert_eq!(a.values, b.values);
    assert_eq!(a.link.exchange_cycles, b.link.exchange_cycles);
    assert_eq!(a.link.messages_sent, b.link.messages_sent);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn narrow_links_cost_cycles_but_not_correctness() {
    let g = test_graph();
    let algo = Algorithm::bfs(0);
    let wide = Driver::new()
        .devices(4)
        .link_bandwidth(64)
        .link_latency(1)
        .run_fabric(&g, algo);
    let narrow = Driver::new()
        .devices(4)
        .link_bandwidth(1)
        .link_latency(256)
        .run_fabric(&g, algo);
    assert_eq!(narrow.values, wide.values, "bandwidth changed results");
    assert!(
        narrow.link.exchange_cycles > wide.link.exchange_cycles,
        "1 word/cycle at 256-cycle latency ({}) not slower than 64 words/cycle at 1 ({})",
        narrow.link.exchange_cycles,
        wide.link.exchange_cycles
    );
    assert!(narrow.cycles > wide.cycles);
}

#[test]
fn black_hole_link_fault_trips_fabric_watchdog() {
    // PageRank is always-active, so every iteration every owner
    // broadcasts to every consumer: 8 devices yield 56 messages per
    // barrier, blowing past the black hole's 256-offer grace window in a
    // handful of iterations. After that, expected deliveries never
    // arrive and the exchange must die through the fabric watchdog.
    let g = test_graph();
    let mut rc = Driver::new().devices(8).max_iterations(100).run_config(&g);
    rc.link = LinkConfig {
        fault: FaultConfig {
            profile: FaultProfile::BlackHole,
            seed: 7,
        },
        watchdog_cycles: Some(20_000),
        ..LinkConfig::default()
    };
    let mut fabric = Fabric::new(&g, Algorithm::pagerank(), &rc);
    match fabric.run_to_outcome(None) {
        Err(FabricError::LinkStalled(snap)) => {
            assert!(snap.cycle > snap.last_progress);
            assert_eq!(snap.threshold, 20_000);
            let names: Vec<&str> = snap.sections.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"fabric"), "missing fabric section");
            assert!(names.contains(&"fault"), "missing fault section");
            assert!(
                names.iter().any(|n| n.starts_with("link[")),
                "missing per-link sections: {names:?}"
            );
            let rendered = snap.to_string();
            assert!(rendered.contains("no forward progress for"));
            assert!(rendered.contains("expected_messages"));
        }
        other => panic!("expected a link stall, got {other:?}"),
    }
}

#[test]
fn run_panics_with_diagnostic_on_link_stall() {
    let g = test_graph();
    let mut rc = Driver::new().devices(8).max_iterations(100).run_config(&g);
    rc.link.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 1,
    };
    rc.link.watchdog_cycles = Some(10_000);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Fabric::new(&g, Algorithm::pagerank(), &rc).run()
    }));
    let payload = result.expect_err("black-hole links must not complete");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic carries the rendered snapshot");
    assert!(msg.contains("link exchange stalled"), "got: {msg}");
}

#[test]
fn link_trace_records_tx_and_rx_events() {
    let g = test_graph();
    let mut rc = Driver::new().devices(2).run_config(&g);
    rc.trace = simkit::TraceConfig {
        level: simkit::trace::TraceLevel::Events,
        ..simkit::TraceConfig::default()
    };
    let r = Fabric::new(&g, Algorithm::bfs(0), &rc).run();
    assert!(!r.trace.events.is_empty(), "tracing on, no link events");
    let names: Vec<&str> = r.trace.events.iter().map(|e| e.kind.name()).collect();
    assert!(names.contains(&"link.tx"), "no tx events: {names:?}");
    assert!(names.contains(&"link.rx"), "no rx events: {names:?}");
    // Tracing off by default: no events, zero overhead.
    let quiet = run_fabric(&g, Algorithm::bfs(0), 2);
    assert!(quiet.trace.events.is_empty());
    assert_eq!(quiet.cycles, r.cycles, "tracing changed fabric timing");
}
