//! Differential harness for multi-threaded fabric execution.
//!
//! The fabric's compute phase may fan each device shard out to its own
//! host worker thread between link-exchange barriers, but the contract
//! is absolute: **every observable byte is identical to the sequential
//! path**. These tests enforce that by capturing the full `Debug`
//! rendering of [`FabricRunResult`] — values, merged statistics, PE
//! cycle breakdown, link-network counters, recovery report, and the
//! link trace event stream — and comparing it across `sim_threads`
//! settings, including under seeded link loss and a black-hole fault
//! that completes only through checkpoint rollback.
//!
//! `sim_threads == 1` takes the plain in-order loop, so `1` vs `> 1`
//! is a true sequential-vs-threaded differential, not two runs of the
//! same code.

use accel::{Driver, Fabric, FabricRunResult, RecoveryConfig, RunConfig};
use algos::Algorithm;
use graph::{CooGraph, GraphSpec};
use simkit::{FaultConfig, FaultProfile};

fn test_graph() -> CooGraph {
    GraphSpec::rmat(9, 6)
        .build(41)
        .with_random_weights(0, 255, 3)
}

fn all_algos() -> [Algorithm; 5] {
    [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::Wcc,
        Algorithm::pagerank(),
    ]
}

/// Runs the fabric with `threads` compute workers and renders every
/// observable field. `FabricRunResult` carries no host-timing data, so
/// two byte-identical renderings mean two indistinguishable runs.
fn snapshot(g: &CooGraph, algo: Algorithm, rc: &RunConfig, threads: usize) -> String {
    let mut rc = rc.clone();
    rc.sim_threads = threads;
    let r: FabricRunResult = Fabric::new(g, algo, &rc)
        .run_to_outcome(None)
        .unwrap_or_else(|e| panic!("{} at sim-threads {threads}: {e}", algo.name()));
    format!("{r:?}")
}

#[test]
fn every_algo_and_device_count_is_byte_identical_across_thread_counts() {
    let g = test_graph();
    for algo in all_algos() {
        for devices in [2usize, 4, 8] {
            let rc = Driver::new().devices(devices).run_config(&g);
            let sequential = snapshot(&g, algo, &rc, 1);
            for threads in [2usize, devices] {
                let threaded = snapshot(&g, algo, &rc, threads);
                assert_eq!(
                    threaded,
                    sequential,
                    "{} on {devices} devices: sim-threads {threads} diverged \
                     from the sequential run",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn trace_event_streams_are_byte_identical_across_thread_counts() {
    // Event-level link tracing captures per-message tx/rx timestamps —
    // the finest-grained observable the fabric exports. The merged
    // stream (and everything else) must not care how many host threads
    // stepped the shards.
    let g = test_graph();
    let mut rc = Driver::new().devices(4).run_config(&g);
    rc.trace = simkit::TraceConfig {
        level: simkit::trace::TraceLevel::Events,
        ..simkit::TraceConfig::default()
    };
    let sequential = snapshot(&g, Algorithm::bfs(0), &rc, 1);
    assert!(
        sequential.contains("link.tx") || sequential.contains("LinkTx"),
        "trace capture is off — the differential would be vacuous"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            snapshot(&g, Algorithm::bfs(0), &rc, threads),
            sequential,
            "traced run diverged at sim-threads {threads}"
        );
    }
}

#[test]
fn seeded_lossy_links_stay_byte_identical_across_thread_counts() {
    // Sustained 20% message loss exercises the retransmission path:
    // timeouts, duplicate suppression, and per-link drop counters all
    // land in the Debug rendering and must match byte for byte.
    let g = test_graph();
    let mut rc = Driver::new().devices(4).run_config(&g);
    rc.link.fault = FaultConfig {
        profile: FaultProfile::Lossy { permille: 200 },
        seed: 41,
    };
    let sequential = snapshot(&g, Algorithm::sssp(0), &rc, 1);
    assert!(
        sequential.contains("retransmissions"),
        "lossy run should surface transport counters"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            snapshot(&g, Algorithm::sssp(0), &rc, threads),
            sequential,
            "lossy run diverged at sim-threads {threads}"
        );
    }
}

#[test]
fn black_hole_recovery_is_byte_identical_across_thread_counts() {
    // The hardest case: a black-holed link starves the barrier, the
    // watchdog trips, and the run completes only through checkpoint
    // rollback. Every rollback attempt (cause, cycle, cycles lost) and
    // the recovered values must be identical whether the shards stepped
    // sequentially or on worker threads.
    let g = test_graph();
    let mut rc = Driver::new().devices(8).run_config(&g);
    rc.link.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 7,
    };
    rc.link.watchdog_cycles = Some(20_000);
    rc.recovery = Some(RecoveryConfig {
        checkpoint_interval: 1,
        retention: 2,
        max_attempts: 64,
        reset_cycles: 10_000,
    });
    let sequential = snapshot(&g, Algorithm::sssp(0), &rc, 1);
    assert!(
        sequential.contains("RecoveryAttempt"),
        "black hole never tripped recovery — the differential would be vacuous"
    );
    for threads in [2usize, 4, 8] {
        assert_eq!(
            snapshot(&g, Algorithm::sssp(0), &rc, threads),
            sequential,
            "recovered run diverged at sim-threads {threads}"
        );
    }
}

#[test]
fn driver_and_run_config_plumb_sim_threads_to_the_fabric() {
    let g = test_graph();
    // Explicit requests are clamped to the device count, never below 1.
    let rc = Driver::new().devices(4).sim_threads(16).run_config(&g);
    assert_eq!(rc.sim_threads, 16, "run config carries the raw request");
    let fab = Fabric::new(&g, Algorithm::bfs(0), &rc);
    assert_eq!(fab.sim_threads(), 4, "fabric clamps to the shard count");
    let mut rc1 = rc.clone();
    rc1.sim_threads = 1;
    assert_eq!(
        Fabric::new(&g, Algorithm::bfs(0), &rc1).sim_threads(),
        1,
        "sim-threads 1 must select the sequential path"
    );
    // Auto (0) resolves to min(devices, cores) — at least 1 on any host.
    let mut rc0 = rc.clone();
    rc0.sim_threads = 0;
    let auto = Fabric::new(&g, Algorithm::bfs(0), &rc0).sim_threads();
    assert!((1..=4).contains(&auto), "auto resolved to {auto}");
}
