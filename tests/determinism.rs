//! Determinism guarantees of the sweep engine and the idle-skip fast
//! path.
//!
//! * The parallel sweep engine must produce byte-identical exports
//!   regardless of worker count: results are written into per-point
//!   slots and host timing never reaches the exported fields, so
//!   `--jobs 1` and `--jobs 4` cannot be told apart from the output.
//! * Idle skipping is a host-side optimisation only: with it on or off,
//!   a run must report the same simulated cycle count, the same result
//!   values, the same merged statistics, and the same trace event
//!   stream. Only `host_ticks` (loop iterations actually executed) may
//!   differ.

use accel::{System, SystemConfig};
use algos::Algorithm;
use bench::engine::{run_points, EngineConfig, PointSpec};
use bench::{ArchPoint, RunSpec};
use graph::benchmarks::BenchmarkId;
use graph::{CooGraph, GraphSpec, Partitioner};
use simkit::record::{to_csv, to_json};
use simkit::trace::{to_canonical, TraceConfig, TraceLevel};

/// The small matrix both engine runs execute: two algorithms on two
/// architectures of the smallest benchmark, heavily shrunk so the whole
/// test stays in CI budget.
fn engine_points() -> Vec<PointSpec> {
    let mut points = Vec::new();
    for arch in [ArchPoint::QUICK[2], ArchPoint::QUICK[3]] {
        for (algo, iters) in [(Algorithm::Scc, None), (Algorithm::pagerank(), Some(2))] {
            let mut spec = RunSpec::new(arch);
            spec.shrink = 16;
            spec.max_iterations = iters;
            points.push(PointSpec {
                bench: BenchmarkId::Wt,
                algo,
                spec,
            });
        }
    }
    points
}

fn engine_config(jobs: usize) -> EngineConfig {
    EngineConfig {
        jobs,
        ..EngineConfig::default()
    }
}

#[test]
fn sweep_exports_are_independent_of_worker_count() {
    let points = engine_points();
    let serial = run_points(&points, &engine_config(1));
    let parallel = run_points(&points, &engine_config(4));
    assert_eq!(serial.len(), parallel.len());
    // Host wall-clock is the one field allowed to differ; everything the
    // exporters see must match byte for byte.
    assert_eq!(
        to_json(&serial),
        to_json(&parallel),
        "JSON export differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        to_csv(&serial),
        to_csv(&parallel),
        "CSV export differs between --jobs 1 and --jobs 4"
    );
}

fn test_graph() -> CooGraph {
    GraphSpec::rmat(8, 6)
        .build(41)
        .with_random_weights(0, 255, 3)
}

fn run_with_skip(g: &CooGraph, algo: Algorithm, idle_skip: bool) -> accel::RunResult {
    let mut cfg = SystemConfig::small();
    cfg.idle_skip = idle_skip;
    cfg.trace = TraceConfig {
        level: TraceLevel::Events,
        ..TraceConfig::default()
    };
    System::new(g, Partitioner::new(256, 256), algo, cfg).run()
}

#[test]
fn idle_skip_is_a_pure_host_optimisation() {
    let g = test_graph();
    let mut skipped_somewhere = false;
    for algo in [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::pagerank(),
    ] {
        let on = run_with_skip(&g, algo, true);
        let off = run_with_skip(&g, algo, false);
        let name = algo.name();
        assert_eq!(
            off.host_ticks, off.cycles,
            "{name}: with skipping off, every cycle must be ticked"
        );
        assert_eq!(
            on.cycles, off.cycles,
            "{name}: idle skipping changed timing"
        );
        assert_eq!(
            on.values, off.values,
            "{name}: idle skipping changed results"
        );
        assert_eq!(
            on.iterations, off.iterations,
            "{name}: idle skipping changed iteration count"
        );
        assert_eq!(
            on.edges_processed, off.edges_processed,
            "{name}: idle skipping changed edge count"
        );
        assert_eq!(
            on.stats, off.stats,
            "{name}: idle skipping changed merged statistics"
        );
        assert_eq!(
            to_canonical(&on.trace.events),
            to_canonical(&off.trace.events),
            "{name}: idle skipping changed the trace event stream"
        );
        assert!(
            on.host_ticks <= on.cycles,
            "{name}: host ticks cannot exceed simulated cycles"
        );
        skipped_somewhere |= on.host_ticks < on.cycles;
    }
    assert!(
        skipped_somewhere,
        "idle skipping never engaged on any algorithm; the fast path is dead"
    );
}
