//! Randomized property tests on the core data structures and the full
//! simulator: random graphs, random geometry, random configurations.
//!
//! Implemented with the deterministic `simkit::SplitMix64` generator
//! (the container build is fully offline, so there is no proptest).
//! Every case is seeded, so failures reproduce exactly.

use simkit::SplitMix64;

use accel::{PeConfig, System, SystemConfig};
use algos::{golden, Algorithm};
use dram::DramConfig;
use graph::layout::{EdgePointer, LayoutBuilder, LayoutInit};
use graph::partition::CompressedEdge;
use graph::{CooGraph, Partitioner};
use moms::cuckoo::{CuckooMshr, InsertOutcome, MshrEntry};
use moms::{MomsConfig, MomsSystemConfig, Topology};

/// A random small directed graph with `2..max_nodes` nodes and
/// `1..max_edges` edges.
fn random_graph(rng: &mut SplitMix64, max_nodes: u32, max_edges: usize) -> CooGraph {
    let n = 2 + rng.next_below(max_nodes as u64 - 2) as u32;
    let m = 1 + rng.next_below(max_edges as u64 - 1) as usize;
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    CooGraph::from_edges(n, edges)
}

fn small_config() -> SystemConfig {
    SystemConfig {
        dram: DramConfig::default(),
        moms: MomsSystemConfig {
            topology: Topology::TwoLevel,
            num_pes: 2,
            num_channels: 2,
            shared_banks: 4,
            shared: MomsConfig::paper_shared_bank()
                .scaled(1, 64)
                .without_cache(),
            private: MomsConfig::paper_private_bank(false).scaled(1, 64),
            pe_slr: moms::system::default_pe_slrs(2),
            channel_slr: moms::system::default_channel_slrs(2),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        },
        pe: PeConfig {
            bram_nodes: 256,
            ..PeConfig::default()
        },
        max_iterations: None,
        execution: accel::ExecutionMode::AlgorithmDefault,
        moms_trace_cap: 0,
        fault: simkit::FaultConfig::none(),
        trace: simkit::TraceConfig::default(),
        watchdog_cycles: Some(accel::DEFAULT_WATCHDOG_CYCLES),
        idle_skip: true,
    }
}

const CASES: u64 = 24;

#[test]
fn compressed_edge_round_trips() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _ in 0..1000 {
        let src = rng.next_below(65536) as u32;
        let dst = rng.next_below(32768) as u32;
        let e = CompressedEdge::new(src, dst);
        assert_eq!(e.src_offset(), src);
        assert_eq!(e.dst_offset(), dst);
        assert!(!e.is_terminating());
    }
}

#[test]
fn edge_pointer_round_trips() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _ in 0..1000 {
        let addr = rng.next_below(1 << 30) / 4 * 4;
        let edges = rng.next_below(1 << 23);
        let active = rng.chance(0.5);
        let p = EdgePointer::new(addr, edges, active);
        assert_eq!(p.byte_addr(), addr);
        assert_eq!(p.edge_count(), edges);
        assert_eq!(p.active(), active);
    }
}

#[test]
fn partition_is_lossless() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    for case in 0..CASES {
        let g = random_graph(&mut rng, 500, 2000);
        let ns = 1 + rng.next_below(599) as u32;
        let nd = 1 + rng.next_below(599) as u32;
        let parts = Partitioner::new(ns, nd).partition(&g);
        assert_eq!(parts.total_edges(), g.num_edges() as u64, "case {case}");
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for d in 0..parts.qd() {
            for s in 0..parts.qs() {
                for (src, dst, _) in parts.iter_shard_edges(s, d) {
                    assert!(src / ns == s as u32, "case {case}");
                    assert!(dst / nd == d as u32, "case {case}");
                    seen.push((src, dst));
                }
            }
        }
        let mut orig = g.edges().to_vec();
        orig.sort_unstable();
        seen.sort_unstable();
        assert_eq!(orig, seen, "case {case} (ns {ns}, nd {nd})");
    }
}

#[test]
fn layout_decodes_to_original_edges() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    for case in 0..CASES {
        let g = random_graph(&mut rng, 300, 1000);
        let parts = Partitioner::new(64, 64).partition(&g);
        let init = LayoutInit {
            vin: vec![7; g.num_nodes() as usize],
            vconst: None,
            synchronous: false,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        let mut count = 0u64;
        for d in 0..gi.qd() {
            for s in 0..gi.qs() {
                let p = gi.edge_ptr(&img, d, s);
                let mut a = p.byte_addr();
                for _ in 0..p.edge_count() {
                    let e = CompressedEdge::from_bits(img.read_u32(a));
                    assert!(!e.is_terminating(), "case {case}");
                    a += 4;
                    count += 1;
                }
                assert!(
                    CompressedEdge::from_bits(img.read_u32(a)).is_terminating(),
                    "case {case}"
                );
            }
        }
        assert_eq!(count, g.num_edges() as u64, "case {case}");
    }
}

#[test]
fn cuckoo_never_loses_entries() {
    let mut rng = SplitMix64::new(0x5eed_0005);
    for case in 0..CASES {
        let count = 1 + rng.next_below(299);
        let lines: std::collections::HashSet<u64> =
            (0..count).map(|_| rng.next_below(100_000)).collect();
        let mut t = CuckooMshr::new(512, 4, 8);
        let mut inserted = Vec::new();
        for &l in &lines {
            match t.insert(MshrEntry {
                line: l,
                head_row: 0,
                tail_row: 0,
                pending: 0,
            }) {
                InsertOutcome::Placed { .. } => inserted.push(l),
                InsertOutcome::Failed => {}
            }
        }
        for &l in &inserted {
            assert!(t.lookup(l).is_some(), "case {case}: lost {l}");
        }
        assert_eq!(t.occupancy(), inserted.len(), "case {case}");
        for &l in &inserted {
            assert!(t.remove(l).is_some(), "case {case}");
        }
        assert_eq!(t.occupancy(), 0, "case {case}");
    }
}

#[test]
fn simulator_matches_golden_bfs_on_random_graphs() {
    let mut rng = SplitMix64::new(0x5eed_0006);
    for case in 0..CASES {
        let g = random_graph(&mut rng, 400, 1500);
        let algo = Algorithm::bfs(0);
        let got = System::new(&g, Partitioner::new(256, 256), algo, small_config())
            .run()
            .values;
        assert_eq!(got, golden::run(&algo, &g), "case {case}");
    }
}

#[test]
fn simulator_matches_golden_scc_on_random_graphs() {
    let mut rng = SplitMix64::new(0x5eed_0007);
    for case in 0..CASES {
        let g = random_graph(&mut rng, 300, 1200);
        let algo = Algorithm::Scc;
        let got = System::new(&g, Partitioner::new(128, 128), algo, small_config())
            .run()
            .values;
        assert_eq!(got, golden::run(&algo, &g), "case {case}");
    }
}

#[test]
fn reorder_permutations_are_bijective() {
    let mut rng = SplitMix64::new(0x5eed_0008);
    for case in 0..CASES {
        let g = random_graph(&mut rng, 400, 800);
        let seed = rng.next_below(1000);
        let dbg = graph::reorder::dbg_reorder(&g);
        assert!(graph::reorder::is_permutation(&dbg), "case {case}");
        let hash = graph::reorder::hash_cache_lines(g.num_nodes(), 16, seed);
        assert!(graph::reorder::is_permutation(&hash), "case {case}");
        let both = graph::reorder::compose(&dbg, &hash);
        assert!(graph::reorder::is_permutation(&both), "case {case}");
    }
}

#[test]
fn link_retry_backoff_never_overflows_and_is_monotone() {
    // Exponential backoff over the full space of retry geometries,
    // including adversarial corners (rto and cap at u64::MAX): the
    // schedule must never overflow, never decrease, never exceed the
    // cap, and stay pinned at the cap once it reaches it.
    let mut rng = SplitMix64::new(0x5eed_0009);
    for case in 0..200 {
        let mut retry = accel::LinkRetryConfig::default();
        retry.rto = match rng.next_below(4) {
            0 => 1 + rng.next_below(1 << 12),
            1 => 1 + rng.next_below(1 << 40),
            2 => u64::MAX - rng.next_below(4),
            _ => u64::MAX / 2 + rng.next_below(1 << 20),
        };
        retry.rto_cap = match rng.next_below(3) {
            0 => retry.rto.saturating_add(rng.next_below(1 << 16)),
            1 => u64::MAX,
            _ => 1 + rng.next_below(1 << 30),
        };
        retry.max_attempts = 1 + rng.next_below(64) as u32;
        let schedule = retry.backoff_schedule(retry.rto);
        assert_eq!(
            schedule.len(),
            retry.max_attempts as usize,
            "case {case}: one delay per permitted retransmission"
        );
        let mut capped = false;
        for (i, &rto) in schedule.iter().enumerate() {
            assert!(
                rto <= retry.rto_cap,
                "case {case}, attempt {i}: {rto} exceeds cap {}",
                retry.rto_cap
            );
            if i > 0 {
                assert!(
                    rto >= schedule[i - 1],
                    "case {case}, attempt {i}: backoff decreased ({} -> {rto})",
                    schedule[i - 1]
                );
            }
            if capped {
                assert_eq!(
                    rto, retry.rto_cap,
                    "case {case}, attempt {i}: left the cap after reaching it"
                );
            }
            capped = rto == retry.rto_cap;
        }
        // Deterministic: the same config always yields the same schedule.
        assert_eq!(schedule, retry.backoff_schedule(retry.rto), "case {case}");
        // Each step is exactly the transport's scan arithmetic.
        assert_eq!(schedule[0], retry.next_rto(retry.rto), "case {case}");
    }
}

#[test]
fn graph_generators_honour_their_specs() {
    // Every family, over random geometry: node/edge counts match the
    // spec's promise, endpoints stay in range, and the same seed yields
    // the identical edge list (the property the fuzzer's corpus format
    // depends on to rebuild family cases from one line of text).
    use graph::GraphSpec;
    let mut rng = SplitMix64::new(0x5eed_000a);
    for case in 0..CASES {
        let seed = rng.next_below(1 << 20);
        let scale = 4 + rng.next_below(4) as u32;
        let deg = 1 + rng.next_below(6) as u32;
        let er_n = 2 + rng.next_below(200) as u32;
        let er_m = 1 + rng.next_below(800) as usize;
        let ba_m = 1 + rng.next_below(4) as u32;
        let ba_n = ba_m + 1 + rng.next_below(150) as u32;
        let ws_k = 2 * (1 + rng.next_below(3) as u32);
        let ws_n = ws_k + 1 + rng.next_below(150) as u32;
        let specs: Vec<(&str, GraphSpec, u32, Option<usize>)> = vec![
            (
                "rmat",
                GraphSpec::rmat(scale, deg),
                1 << scale,
                Some((1usize << scale) * deg as usize),
            ),
            ("er", GraphSpec::erdos_renyi(er_n, er_m), er_n, Some(er_m)),
            (
                "ba",
                GraphSpec::barabasi_albert(ba_n, ba_m),
                ba_n,
                Some(((ba_n - ba_m) * ba_m) as usize),
            ),
            (
                "ws",
                GraphSpec::watts_strogatz(ws_n, ws_k, 0.25),
                ws_n,
                Some((ws_n * ws_k) as usize),
            ),
        ];
        for (family, spec, want_nodes, want_edges) in specs {
            let g = spec.build(seed);
            assert_eq!(
                g.num_nodes(),
                want_nodes,
                "case {case} {family}: node count"
            );
            if let Some(m) = want_edges {
                assert_eq!(g.num_edges(), m, "case {case} {family}: edge count");
            }
            for i in 0..g.num_edges() {
                let (s, d, _) = g.edge(i);
                assert!(
                    s < want_nodes && d < want_nodes,
                    "case {case} {family}: edge {i} ({s}->{d}) out of range"
                );
            }
            // Same seed, same graph — bit for bit.
            let again = spec.build(seed);
            assert_eq!(
                again.num_edges(),
                g.num_edges(),
                "case {case} {family}: edge count changed on rebuild"
            );
            for i in 0..g.num_edges() {
                assert_eq!(
                    again.edge(i),
                    g.edge(i),
                    "case {case} {family}: edge {i} changed on rebuild"
                );
            }
            // A different seed should not (for non-degenerate sizes)
            // reproduce the same structure edge-for-edge.
            let other = spec.build(seed ^ 0xdead_beef);
            let differs = g.num_edges() != other.num_edges()
                || (0..g.num_edges()).any(|i| g.edge(i) != other.edge(i));
            if g.num_edges() >= 8 && family != "ws" {
                assert!(differs, "case {case} {family}: seed does not matter");
            }
        }
    }
}
