//! Property-based tests (proptest) on the core data structures and the
//! full simulator: random graphs, random geometry, random configurations.

use proptest::prelude::*;

use accel::{PeConfig, System, SystemConfig};
use algos::{golden, Algorithm};
use dram::DramConfig;
use graph::layout::{EdgePointer, LayoutBuilder, LayoutInit};
use graph::partition::CompressedEdge;
use graph::{CooGraph, Partitioner};
use moms::cuckoo::{CuckooMshr, InsertOutcome, MshrEntry};
use moms::{MomsConfig, MomsSystemConfig, Topology};

/// Strategy: a random small directed graph (possibly weighted).
fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CooGraph> {
    (2..max_nodes, 1..max_edges).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m)
            .prop_map(move |edges| CooGraph::from_edges(n, edges))
    })
}

fn small_config() -> SystemConfig {
    SystemConfig {
        dram: DramConfig::default(),
        moms: MomsSystemConfig {
            topology: Topology::TwoLevel,
            num_pes: 2,
            num_channels: 2,
            shared_banks: 4,
            shared: MomsConfig::paper_shared_bank()
                .scaled(1, 64)
                .without_cache(),
            private: MomsConfig::paper_private_bank(false).scaled(1, 64),
            pe_slr: moms::system::default_pe_slrs(2),
            channel_slr: moms::system::default_channel_slrs(2),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        },
        pe: PeConfig {
            bram_nodes: 256,
            ..PeConfig::default()
        },
        max_iterations: None,
        execution: accel::ExecutionMode::AlgorithmDefault,
        moms_trace_cap: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compressed_edge_round_trips(src in 0u32..65536, dst in 0u32..32768) {
        let e = CompressedEdge::new(src, dst);
        prop_assert_eq!(e.src_offset(), src);
        prop_assert_eq!(e.dst_offset(), dst);
        prop_assert!(!e.is_terminating());
    }

    #[test]
    fn edge_pointer_round_trips(
        addr in (0u64..1 << 30).prop_map(|a| a / 4 * 4),
        edges in 0u64..1 << 23,
        active: bool,
    ) {
        let p = EdgePointer::new(addr, edges, active);
        prop_assert_eq!(p.byte_addr(), addr);
        prop_assert_eq!(p.edge_count(), edges);
        prop_assert_eq!(p.active(), active);
    }

    #[test]
    fn partition_is_lossless(g in arb_graph(500, 2000), ns in 1u32..600, nd in 1u32..600) {
        let parts = Partitioner::new(ns, nd).partition(&g);
        prop_assert_eq!(parts.total_edges(), g.num_edges() as u64);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for d in 0..parts.qd() {
            for s in 0..parts.qs() {
                for (src, dst, _) in parts.iter_shard_edges(s, d) {
                    prop_assert!(src / ns == s as u32);
                    prop_assert!(dst / nd == d as u32);
                    seen.push((src, dst));
                }
            }
        }
        let mut orig = g.edges().to_vec();
        orig.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(orig, seen);
    }

    #[test]
    fn layout_decodes_to_original_edges(g in arb_graph(300, 1000)) {
        let parts = Partitioner::new(64, 64).partition(&g);
        let init = LayoutInit {
            vin: vec![7; g.num_nodes() as usize],
            vconst: None,
            synchronous: false,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        let mut count = 0u64;
        for d in 0..gi.qd() {
            for s in 0..gi.qs() {
                let p = gi.edge_ptr(&img, d, s);
                let mut a = p.byte_addr();
                for _ in 0..p.edge_count() {
                    let e = CompressedEdge::from_bits(img.read_u32(a));
                    prop_assert!(!e.is_terminating());
                    a += 4;
                    count += 1;
                }
                prop_assert!(CompressedEdge::from_bits(img.read_u32(a)).is_terminating());
            }
        }
        prop_assert_eq!(count, g.num_edges() as u64);
    }

    #[test]
    fn cuckoo_never_loses_entries(lines in proptest::collection::hash_set(0u64..100_000, 1..300)) {
        let mut t = CuckooMshr::new(512, 4, 8);
        let mut inserted = Vec::new();
        for &l in &lines {
            match t.insert(MshrEntry { line: l, head_row: 0, tail_row: 0, pending: 0 }) {
                InsertOutcome::Placed { .. } => inserted.push(l),
                InsertOutcome::Failed => {}
            }
        }
        for &l in &inserted {
            prop_assert!(t.lookup(l).is_some(), "lost {}", l);
        }
        prop_assert_eq!(t.occupancy(), inserted.len());
        for &l in &inserted {
            prop_assert!(t.remove(l).is_some());
        }
        prop_assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn simulator_matches_golden_bfs_on_random_graphs(g in arb_graph(400, 1500)) {
        let algo = Algorithm::bfs(0);
        let got = System::new(&g, Partitioner::new(256, 256), algo, small_config())
            .run()
            .values;
        prop_assert_eq!(got, golden::run(&algo, &g));
    }

    #[test]
    fn simulator_matches_golden_scc_on_random_graphs(g in arb_graph(300, 1200)) {
        let algo = Algorithm::Scc;
        let got = System::new(&g, Partitioner::new(128, 128), algo, small_config())
            .run()
            .values;
        prop_assert_eq!(got, golden::run(&algo, &g));
    }

    #[test]
    fn reorder_permutations_are_bijective(g in arb_graph(400, 800), seed in 0u64..1000) {
        let dbg = graph::reorder::dbg_reorder(&g);
        prop_assert!(graph::reorder::is_permutation(&dbg));
        let hash = graph::reorder::hash_cache_lines(g.num_nodes(), 16, seed);
        prop_assert!(graph::reorder::is_permutation(&hash));
        let both = graph::reorder::compose(&dbg, &hash);
        prop_assert!(graph::reorder::is_permutation(&both));
    }
}
