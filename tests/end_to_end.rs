//! Cross-crate integration tests: the simulated accelerator must produce
//! the same results as the golden executors on every algorithm, graph
//! family, MOMS topology, and channel count.

use accel::{PeConfig, System, SystemConfig};
use algos::{golden, Algorithm};
use dram::DramConfig;
use graph::reorder::{self, Preprocess};
use graph::{CooGraph, GraphSpec, Partitioner};
use moms::{MomsConfig, MomsSystemConfig, Topology};

fn config(topology: Topology, pes: usize, channels: usize) -> SystemConfig {
    SystemConfig {
        dram: DramConfig::default(),
        moms: MomsSystemConfig {
            topology,
            num_pes: pes,
            num_channels: channels,
            shared_banks: 4 * channels.max(1),
            shared: MomsConfig::paper_shared_bank().scaled(1, 32),
            private: MomsConfig::paper_private_bank(false).scaled(1, 32),
            pe_slr: moms::system::default_pe_slrs(pes),
            channel_slr: moms::system::default_channel_slrs(channels),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        },
        pe: PeConfig {
            bram_nodes: 512,
            ..PeConfig::default()
        },
        max_iterations: None,
        execution: accel::ExecutionMode::AlgorithmDefault,
        moms_trace_cap: 0,
        fault: simkit::FaultConfig::none(),
        trace: simkit::TraceConfig::default(),
        watchdog_cycles: Some(accel::DEFAULT_WATCHDOG_CYCLES),
        idle_skip: true,
    }
}

fn run_sim(g: &CooGraph, algo: Algorithm, cfg: SystemConfig) -> Vec<u32> {
    System::new(g, Partitioner::new(512, 512), algo, cfg)
        .run()
        .values
}

#[test]
fn every_topology_gives_identical_scc_results() {
    let g = GraphSpec::rmat(9, 8).build(31);
    let want = golden::run(&Algorithm::Scc, &g);
    for topo in [Topology::Shared, Topology::Private, Topology::TwoLevel] {
        let got = run_sim(&g, Algorithm::Scc, config(topo, 3, 2));
        assert_eq!(got, want, "topology {topo:?} diverged");
    }
}

#[test]
fn channel_counts_do_not_change_results() {
    let g = GraphSpec::rmat(9, 6)
        .build(37)
        .with_random_weights(0, 255, 5);
    let want = golden::dijkstra(&g, 0);
    for channels in [1usize, 2, 4] {
        let got = run_sim(
            &g,
            Algorithm::sssp(0),
            config(Topology::TwoLevel, 2, channels),
        );
        assert_eq!(got, want, "{channels} channels diverged");
    }
}

#[test]
fn pagerank_stable_across_topologies() {
    let g = GraphSpec::power_law_cluster(1000, 8000, 2.0, 0.6, 128, false).build(41);
    let algo = Algorithm::pagerank();
    let want = golden::run(&algo, &g);
    for topo in [Topology::Shared, Topology::Private, Topology::TwoLevel] {
        let got = run_sim(&g, algo, config(topo, 3, 2));
        assert_eq!(
            golden::pagerank_mismatch(&got, &want, 1e-3),
            None,
            "topology {topo:?} diverged"
        );
    }
}

#[test]
fn reordering_preserves_results_up_to_relabeling() {
    // BFS distances must be permutation-equivariant under relabeling.
    let g = GraphSpec::rmat(9, 8).build(43);
    let base = golden::run(&Algorithm::bfs(0), &g);
    for pre in [Preprocess::Hash, Preprocess::Dbg, Preprocess::DbgHash] {
        let (rg, _) = reorder::apply(&g, pre, 16, 9);
        // Find where node 0 went: run BFS from its new label.
        // reorder::apply relabels with a permutation; recover it by
        // comparing edges is overkill — rerun golden on the relabeled
        // graph from the relabeled root and compare distance multisets.
        let root = {
            // Node 0's new label: reorder::apply used perm internally; we
            // reconstruct it by running the same passes.
            let mut perm = graph::reorder::identity(g.num_nodes());
            if matches!(pre, Preprocess::Dbg | Preprocess::DbgHash) {
                perm = graph::reorder::compose(&perm, &graph::reorder::dbg_reorder(&g));
            }
            if matches!(pre, Preprocess::Hash | Preprocess::DbgHash) {
                let h = graph::reorder::hash_cache_lines(g.num_nodes(), 16, 9);
                perm = graph::reorder::compose(&perm, &h);
            }
            perm[0]
        };
        let got = run_sim(&rg, Algorithm::bfs(root), config(Topology::TwoLevel, 2, 2));
        let mut a = base.clone();
        let mut b = got.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{pre:?} changed the distance multiset");
    }
}

#[test]
fn single_pe_single_channel_minimal_system_works() {
    let g = GraphSpec::rmat(8, 4).build(47);
    let got = run_sim(&g, Algorithm::Scc, config(Topology::Shared, 1, 1));
    assert_eq!(got, golden::run(&Algorithm::Scc, &g));
}

#[test]
fn dense_interval_graph_exercises_local_reads() {
    // All edges inside one interval: with use_local_src the PE should
    // serve most sources from BRAM.
    let n = 256u32;
    let edges: Vec<(u32, u32)> = (0..2048u32).map(|i| (i % n, (i * 7 + 1) % n)).collect();
    let g = CooGraph::from_edges(n, edges);
    let algo = Algorithm::Scc;
    let mut sys = System::new(
        &g,
        Partitioner::new(512, 512),
        algo,
        config(Topology::TwoLevel, 1, 1),
    );
    let result = sys.run();
    assert_eq!(result.values, golden::run(&algo, &g));
    assert!(
        result.stats.get("local_reads") > result.stats.get("moms_reads"),
        "local {} vs moms {}",
        result.stats.get("local_reads"),
        result.stats.get("moms_reads")
    );
}

#[test]
fn isolated_nodes_and_empty_shards_are_handled() {
    // Many nodes, few edges: most shards are empty, several intervals
    // have no work at all.
    let g = CooGraph::from_edges(2000, vec![(0, 1999), (1999, 0), (500, 1500)]);
    let got = run_sim(&g, Algorithm::Scc, config(Topology::TwoLevel, 2, 2));
    assert_eq!(got, golden::run(&Algorithm::Scc, &g));
}

#[test]
fn wcc_on_symmetrised_graph() {
    let mut edges = vec![(0u32, 1u32), (1, 2), (4, 5)];
    let rev: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (b, a)).collect();
    edges.extend(rev);
    let g = CooGraph::from_edges(6, edges);
    let got = run_sim(&g, Algorithm::Wcc, config(Topology::TwoLevel, 2, 1));
    assert_eq!(got, vec![0, 0, 0, 3, 4, 4]);
}

#[test]
fn results_are_invariant_under_dram_jitter() {
    // Chaos test: random service-time jitter perturbs every completion
    // time; monotone algorithms must still produce identical results and
    // PageRank must stay within fp tolerance (its per-destination sum
    // order is preserved by the per-PE gather pipeline, but schedule
    // shifts may alter job interleaving).
    let g = GraphSpec::rmat(9, 8)
        .build(71)
        .with_random_weights(0, 255, 9);
    let want = golden::dijkstra(&g, 0);
    for jitter in [0u64, 13, 97] {
        let mut cfg = config(Topology::TwoLevel, 3, 2);
        cfg.dram = cfg.dram.with_jitter(jitter);
        let got = run_sim(&g, Algorithm::sssp(0), cfg);
        assert_eq!(got, want, "jitter {jitter} changed SSSP results");
    }
}

#[test]
fn results_are_invariant_under_network_latency_changes() {
    // Chaos test: wildly different die-crossing and link costs must not
    // change what the accelerator computes, only when.
    let g = GraphSpec::rmat(9, 8).build(73);
    let want = golden::run(&Algorithm::Scc, &g);
    for (crossing, link) in [(0u64, 1u64), (4, 8), (20, 32)] {
        let mut cfg = config(Topology::TwoLevel, 3, 2);
        cfg.moms.crossing_latency = crossing;
        cfg.moms.resp_link_cycles_per_line = link;
        let got = run_sim(&g, Algorithm::Scc, cfg);
        assert_eq!(got, want, "crossing {crossing}/link {link} diverged");
    }
}

#[test]
fn bfs_matches_on_clustered_web_graph() {
    let g = GraphSpec::power_law_cluster(2048, 16384, 2.1, 0.85, 256, false).build(53);
    let got = run_sim(&g, Algorithm::bfs(3), config(Topology::TwoLevel, 3, 2));
    assert_eq!(got, golden::run(&Algorithm::bfs(3), &g));
}
