//! Cycle-count pinning: the timing model must be bit-for-bit reproducible.
//!
//! A golden table of `(bench, algo, arch) → (total cycles, value hash)`
//! over the quick-scope matrix is committed as a fixture. Any change to
//! the simulator that shifts even one cycle anywhere — scheduler order,
//! queue semantics, DRAM timing, idle skipping — fails this suite, so
//! host-side performance work cannot silently alter simulated behaviour.
//! The value hash (FNV-1a over the raw result bits) extends the pin to
//! the computed values themselves, which certifies bit-identical results
//! even for PageRank, where golden-executor comparisons are only
//! ulp-close (see `golden_differential.rs`).
//!
//! The table runs the quick-scope benchmarks × architectures × algorithms
//! at `shrink = 64` (the scale the engine's own tests use) so the whole
//! matrix stays affordable in debug builds; the timing model exercised is
//! identical to the full quick sweep's.
//!
//! Re-bless after an *intentional* timing change with:
//!
//! ```text
//! REPRO_BLESS_CYCLES=1 cargo test -p bench --test cycle_pinning
//! ```

use std::fmt::Write as _;

use accel::{Fabric, LinkTopology, System};
use algos::Algorithm;
use bench::experiments::Scope;
use bench::RunSpec;
use graph::benchmarks::BenchmarkId;
use graph::reorder::Preprocess;

const GOLDEN_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden_cycles.txt"
);

/// Shrink factor for the pinning matrix (smaller graphs than the quick
/// sweep's 4, same timing model).
const PIN_SHRINK: u64 = 64;

/// FNV-1a over the raw little-endian value bits.
fn fnv1a(values: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Renders the golden table: one `bench,algo,arch,cycles,values_fnv` line
/// per point of the quick-scope matrix, in deterministic enumeration
/// order.
fn render_table() -> String {
    let scope = Scope::quick();
    let mut out = String::from("bench,algo,arch,cycles,values_fnv\n");
    for bench in scope.benches() {
        for (algo, iters) in scope.algos() {
            let g =
                bench::prepare_graph(bench, Preprocess::DbgHash, PIN_SHRINK, algo.is_weighted());
            for arch in scope.archs() {
                let mut spec = RunSpec::new(arch);
                spec.shrink = PIN_SHRINK;
                spec.max_iterations = iters;
                let (cfg, partitioner) = spec.run_config().build();
                let result = System::new(&g, partitioner, algo, cfg).run();
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:016x}",
                    bench.tag(),
                    algo.name(),
                    arch.name,
                    result.cycles,
                    fnv1a(&result.values)
                );
            }
        }
    }
    out.push_str(&render_fabric_table());
    out.push_str(&render_degenerate_table());
    out
}

/// The blessed fabric configurations: WT at the pin shrink, BFS and a
/// fixed-iteration PageRank, on 2/4/8 devices over both link topologies.
/// The `arch` column carries `fabric<devices>-<topology>` so the rows
/// share the single-device fixture format. Runs pin `sim_threads = 1`;
/// the threading differential (`fabric_threading.rs`) separately proves
/// every thread count reproduces these exact bytes.
fn fabric_configs() -> Vec<(usize, LinkTopology)> {
    let mut cfgs = Vec::new();
    for devices in [2usize, 4, 8] {
        for topology in [LinkTopology::AllToAll, LinkTopology::Ring] {
            cfgs.push((devices, topology));
        }
    }
    cfgs
}

fn render_fabric_table() -> String {
    let scope = Scope::quick();
    let bench = BenchmarkId::Wt;
    let arch = scope.archs()[0];
    let g = bench::prepare_graph(bench, Preprocess::DbgHash, PIN_SHRINK, false);
    let mut out = String::new();
    for (algo, iters) in [(Algorithm::bfs(0), None), (Algorithm::pagerank(), Some(2))] {
        for (devices, topology) in fabric_configs() {
            let mut spec = RunSpec::new(arch);
            spec.shrink = PIN_SHRINK;
            spec.max_iterations = iters;
            let mut rc = spec.run_config();
            rc.devices = devices;
            rc.link.topology = topology;
            rc.sim_threads = 1;
            let result = Fabric::new(&g, algo, &rc).run();
            let _ = writeln!(
                out,
                "{},{},fabric{}-{},{},{:016x}",
                bench.tag(),
                algo.name(),
                devices,
                topology.name(),
                result.cycles,
                fnv1a(&result.values)
            );
        }
    }
    out
}

/// The degenerate shapes the conformance fuzzer's case grammar samples,
/// pinned on the default single-device design: the zero-work paths
/// (no nodes, no edges, self-loops only) have their own scheduling and
/// convergence corners, and a cycle drift there would be invisible to
/// every benchmark-sized row above.
fn degenerate_shapes() -> Vec<(&'static str, graph::CooGraph, Algorithm)> {
    use graph::CooGraph;
    vec![
        (
            "degen-empty",
            CooGraph::from_edges(0, Vec::new()),
            Algorithm::bfs(0),
        ),
        (
            "degen-single",
            CooGraph::from_edges(1, Vec::new()),
            Algorithm::pagerank(),
        ),
        (
            "degen-loops8",
            CooGraph::from_edges(8, (0..8).map(|i| (i, i)).collect()),
            Algorithm::Scc,
        ),
        (
            "degen-disc32",
            CooGraph::from_edges(32, Vec::new()),
            Algorithm::Wcc,
        ),
    ]
}

fn render_degenerate_table() -> String {
    let mut out = String::new();
    for (tag, g, algo) in degenerate_shapes() {
        let (cfg, partitioner) = accel::Driver::new().run_config(&g).build();
        let result = System::new(&g, partitioner, algo, cfg).run();
        let _ = writeln!(
            out,
            "{tag},{},default,{},{:016x}",
            algo.name(),
            result.cycles,
            fnv1a(&result.values)
        );
    }
    out
}

#[test]
fn quick_scope_cycle_counts_are_pinned() {
    let got = render_table();
    if std::env::var_os("REPRO_BLESS_CYCLES").is_some() {
        std::fs::write(GOLDEN_FIXTURE, &got).expect("bless cycle fixture");
        eprintln!("blessed {GOLDEN_FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_FIXTURE)
        .expect("missing fixture; run with REPRO_BLESS_CYCLES=1 to create it");
    if got != want {
        // Diff line by line so a drift names the exact points that moved.
        let mut diffs = String::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                let _ = writeln!(diffs, "  got {g}\n want {w}");
            }
        }
        panic!(
            "simulated cycle counts drifted from tests/fixtures/golden_cycles.txt:\n{diffs}\
             if the timing change is intentional, re-bless with REPRO_BLESS_CYCLES=1"
        );
    }
}

/// The fixture itself must cover the full quick-scope matrix — guards
/// against a blessed run that silently skipped points.
#[test]
fn fixture_covers_the_quick_matrix() {
    if std::env::var_os("REPRO_BLESS_CYCLES").is_some() {
        return; // the pinning test is writing a fresh fixture
    }
    let scope = Scope::quick();
    let single_rows = scope.benches().len() * scope.algos().len() * scope.archs().len();
    // BFS and PageRank across every blessed fabric configuration.
    let fabric_rows = 2 * fabric_configs().len();
    let degenerate_rows = degenerate_shapes().len();
    let fixture = std::fs::read_to_string(GOLDEN_FIXTURE)
        .expect("missing fixture; run with REPRO_BLESS_CYCLES=1 to create it");
    assert_eq!(
        fixture.lines().count(),
        single_rows + fabric_rows + degenerate_rows + 1, // header
        "fixture row count does not match the quick-scope matrix plus fabric \
         and degenerate rows"
    );
    assert!(BenchmarkId::QUICK.iter().all(|b| fixture.contains(b.tag())));
    for algo in ["pagerank", "scc", "sssp"] {
        assert!(fixture.contains(algo), "fixture missing {algo}");
    }
    for (devices, topology) in fabric_configs() {
        let label = format!("fabric{devices}-{}", topology.name());
        assert!(fixture.contains(&label), "fixture missing {label} rows");
    }
    for (tag, _, _) in degenerate_shapes() {
        assert!(fixture.contains(tag), "fixture missing the {tag} row");
    }
}
