//! Robustness suite: the fault-injection, invariant, and watchdog
//! machinery added around the simulator.
//!
//! * The graceful fault profiles perturb DRAM-completion timing without
//!   losing data, so every algorithm must reach a final result identical
//!   to the fault-free run (the paper's architecture never relies on
//!   response timing for correctness, only for performance).
//! * The `black-hole` profile swallows completions outright, which must
//!   terminate through the no-progress watchdog with a structured
//!   diagnostic snapshot — never a hang.
//! * A panicking experiment point must become a `failed` row while the
//!   rest of the sweep completes.
//! * A MOMS bank under randomized traffic, latency, and backpressure must
//!   answer every accepted request exactly once (with `--features
//!   invariants`, the bank additionally self-checks its ledger and
//!   structural consistency every tick).

use accel::{RunError, System, SystemConfig};
use algos::{golden, Algorithm};
use bench::engine::{run_points, EngineConfig, Outcome, PointSpec};
use bench::{ArchPoint, RunSpec};
use graph::benchmarks::BenchmarkId;
use graph::{CooGraph, GraphSpec, Partitioner};
use moms::{MomsBank, MomsConfig, MomsReq};
use simkit::{FaultConfig, FaultProfile, SplitMix64};

fn test_graph() -> CooGraph {
    GraphSpec::rmat(8, 6)
        .build(41)
        .with_random_weights(0, 255, 3)
}

fn system_with_fault(g: &CooGraph, algo: Algorithm, fault: FaultConfig) -> System {
    let mut cfg = SystemConfig::small();
    cfg.fault = fault;
    System::new(g, Partitioner::new(256, 256), algo, cfg)
}

#[test]
fn fault_profiles_preserve_results() {
    let g = test_graph();
    let algos = [
        Algorithm::bfs(0),
        Algorithm::Scc,
        Algorithm::sssp(0),
        Algorithm::pagerank(),
    ];
    for algo in algos {
        let baseline = system_with_fault(&g, algo, FaultConfig::none()).run();
        for profile in FaultProfile::GRACEFUL {
            for seed in [1u64, 99] {
                let fault = FaultConfig { profile, seed };
                let r = system_with_fault(&g, algo, fault).run();
                if algo == Algorithm::pagerank() {
                    // PageRank gathers are f32 adds performed in response
                    // arrival order, so reordered completions can shift
                    // the result by an ulp; everything beyond rounding
                    // noise would be a lost or duplicated update.
                    assert_eq!(
                        golden::pagerank_mismatch(&r.values, &baseline.values, 1e-5),
                        None,
                        "pagerank under {} (seed {seed}) diverged beyond fp noise",
                        profile.name()
                    );
                } else {
                    // The monotone algorithms have a unique fixpoint:
                    // results must be bit-identical however completions
                    // are delayed or reordered.
                    assert_eq!(
                        r.values,
                        baseline.values,
                        "{} under {} (seed {seed}) diverged from fault-free run",
                        algo.name(),
                        profile.name()
                    );
                }
            }
        }
    }
}

#[test]
fn watchdog_fires_on_seeded_deadlock() {
    // Weighted SSSP on small intervals keeps thousands of source reads in
    // flight through the MOMS, so DRAM completions quickly exceed the
    // black hole's grace window and start vanishing: guaranteed deadlock,
    // which must surface as a structured stall, not a hang.
    let g = test_graph();
    let mut cfg = SystemConfig::small();
    // Cacheless MOMS: every irregular read becomes DRAM traffic, so the
    // completion stream exceeds the black hole's grace window fast.
    cfg.moms.private = cfg.moms.private.without_cache();
    cfg.moms.shared = cfg.moms.shared.without_cache();
    cfg.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 5,
    };
    cfg.watchdog_cycles = Some(20_000);
    let mut sys = System::new(&g, Partitioner::new(64, 64), Algorithm::sssp(0), cfg);
    match sys.run_to_outcome(None) {
        Err(RunError::Stalled(snap)) => {
            assert!(snap.cycle > snap.last_progress);
            assert_eq!(snap.threshold, 20_000);
            let names: Vec<&str> = snap.sections.iter().map(|s| s.name.as_str()).collect();
            for required in ["scheduler", "pes", "moms", "dram", "fault"] {
                assert!(names.contains(&required), "missing section {required}");
            }
            let rendered = snap.to_string();
            assert!(rendered.contains("no forward progress for"));
            assert!(rendered.contains("[pes]"));
            assert!(rendered.contains("dropped"));
        }
        other => panic!("expected a watchdog stall, got {other:?}"),
    }
}

#[test]
fn stall_snapshot_embeds_trace_tail_naming_dropped_request() {
    // Same seeded deadlock as above, but with event tracing on: the
    // diagnostic snapshot must gain a `trace-tail` section whose events
    // include the `fault.drop` record naming the black-holed completion —
    // the smoking gun a human needs to see first when triaging a hang.
    let g = test_graph();
    let mut cfg = SystemConfig::small();
    cfg.moms.private = cfg.moms.private.without_cache();
    cfg.moms.shared = cfg.moms.shared.without_cache();
    cfg.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 5,
    };
    cfg.watchdog_cycles = Some(20_000);
    cfg.trace = simkit::TraceConfig {
        level: simkit::trace::TraceLevel::Events,
        ..simkit::TraceConfig::default()
    };
    let mut sys = System::new(&g, Partitioner::new(64, 64), Algorithm::sssp(0), cfg);
    match sys.run_to_outcome(None) {
        Err(RunError::Stalled(snap)) => {
            let tail = snap
                .sections
                .iter()
                .find(|s| s.name == "trace-tail")
                .expect("tracing-enabled stall must embed a trace-tail section");
            assert!(!tail.entries.is_empty(), "trace tail is empty");
            let rendered = snap.to_string();
            assert!(rendered.contains("[trace-tail]"), "got: {rendered}");
            assert!(
                rendered.contains("fault.drop arg="),
                "trace tail must name the black-holed request:\n{rendered}"
            );
        }
        other => panic!("expected a watchdog stall, got {other:?}"),
    }
}

#[test]
fn run_panics_with_diagnostic_on_stall() {
    let g = test_graph();
    let mut cfg = SystemConfig::small();
    cfg.moms.private = cfg.moms.private.without_cache();
    cfg.moms.shared = cfg.moms.shared.without_cache();
    cfg.fault = FaultConfig {
        profile: FaultProfile::BlackHole,
        seed: 1,
    };
    cfg.watchdog_cycles = Some(10_000);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        System::new(&g, Partitioner::new(64, 64), Algorithm::sssp(0), cfg).run()
    }));
    let payload = result.expect_err("black-hole run must not complete");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic carries the rendered snapshot");
    assert!(msg.contains("no forward progress for"), "got: {msg}");
}

#[test]
fn sweep_continues_past_panicking_point() {
    let arch = ArchPoint::two_level_16_16();
    let good = |bench| {
        let mut spec = RunSpec::new(arch);
        spec.shrink = 64;
        PointSpec {
            bench,
            algo: Algorithm::Scc,
            spec,
        }
    };
    let mut bad = good(BenchmarkId::Wt);
    // Zero channels fails MomsSystemConfig validation inside the worker.
    bad.spec.channels = 0;
    let points = vec![good(BenchmarkId::Wt), bad, good(BenchmarkId::R24)];
    let results = run_points(
        &points,
        &EngineConfig {
            jobs: 2,
            ..Default::default()
        },
    );
    assert_eq!(results.len(), 3, "every submitted point gets a row");
    assert_eq!(results[0].outcome, Outcome::Completed);
    assert_eq!(results[2].outcome, Outcome::Completed);
    assert_eq!(results[1].outcome, Outcome::Failed);
    let err = results[1].error.as_deref().expect("failure message");
    assert!(!err.is_empty());
}

#[test]
fn moms_bank_randomized_traffic_conserves_requests() {
    // Random lines (a window small enough to force secondary misses),
    // random DRAM latency, random response backpressure — every accepted
    // request must be answered exactly once. With `--features invariants`
    // the bank also self-checks its ledger on each of the 100k ticks.
    let mut bank = MomsBank::new(MomsConfig::paper_private_bank(false).scaled(1, 32));
    let mut rng = SplitMix64::new(0xB0B0);
    let mut next_id: u32 = 0;
    let mut answered: Vec<u8> = Vec::new();
    // In-flight simulated memory: (ready_cycle, line, count).
    let mut mem: Vec<(u64, u64, u32)> = Vec::new();

    const TICKS: u64 = 100_000;
    const INJECT_UNTIL: u64 = 90_000;
    for now in 1..=TICKS {
        if now < INJECT_UNTIL && rng.next_below(4) != 0 {
            let req = MomsReq {
                line: rng.next_below(96),
                word: rng.next_below(16) as u8,
                id: next_id,
            };
            if bank.try_request(req) {
                answered.push(0);
                next_id += 1;
            }
        }
        // Serve bank line fetches with a random 20..150-cycle latency,
        // sometimes refusing to pick one up this cycle at all.
        if rng.next_below(8) != 0 {
            if let Some((line, count)) = bank.pop_mem_request() {
                mem.push((now + 20 + rng.next_below(130), line, count));
            }
        }
        let mut i = 0;
        while i < mem.len() {
            if mem[i].0 <= now && bank.can_accept_mem_response() {
                let (_, line, count) = mem.swap_remove(i);
                assert!(bank.push_mem_burst_response(line, count));
            } else {
                i += 1;
            }
        }
        // Randomly stall the response port to exercise backpressure.
        if rng.next_below(3) != 0 {
            while let Some(resp) = bank.pop_response() {
                let slot = &mut answered[resp.id as usize];
                assert_eq!(*slot, 0, "request {} answered twice", resp.id);
                *slot = 1;
            }
        }
        bank.tick(now);
    }
    // Drain.
    let mut now = TICKS;
    while !bank.is_idle() || !mem.is_empty() {
        now += 1;
        assert!(now < TICKS + 200_000, "drain did not converge");
        if let Some((line, count)) = bank.pop_mem_request() {
            mem.push((now + 20, line, count));
        }
        let mut i = 0;
        while i < mem.len() {
            if mem[i].0 <= now && bank.can_accept_mem_response() {
                let (_, line, count) = mem.swap_remove(i);
                assert!(bank.push_mem_burst_response(line, count));
            } else {
                i += 1;
            }
        }
        while let Some(resp) = bank.pop_response() {
            let slot = &mut answered[resp.id as usize];
            assert_eq!(*slot, 0, "request {} answered twice", resp.id);
            *slot = 1;
        }
        bank.tick(now);
    }
    assert!(next_id > 10_000, "traffic generator barely ran: {next_id}");
    let unanswered = answered.iter().filter(|&&a| a == 0).count();
    assert_eq!(
        unanswered, 0,
        "{unanswered} accepted requests never answered"
    );
}

#[test]
fn fault_injection_is_deterministic() {
    let g = GraphSpec::rmat(8, 4).build(11);
    let fault = FaultConfig {
        profile: FaultProfile::Chaos,
        seed: 1234,
    };
    let a = system_with_fault(&g, Algorithm::Scc, fault).run();
    let b = system_with_fault(&g, Algorithm::Scc, fault).run();
    assert_eq!(
        a.cycles, b.cycles,
        "same seed must replay the same schedule"
    );
    assert_eq!(a.values, b.values);
}
