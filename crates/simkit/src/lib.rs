//! Deterministic cycle-level simulation primitives.
//!
//! This crate provides the small set of building blocks used by the DRAM,
//! MOMS, and accelerator models to express registered, handshaked FPGA
//! hardware in plain Rust:
//!
//! * [`Fifo`] — a bounded queue with *two-phase* semantics: items pushed
//!   during cycle *c* become visible to `pop` only from cycle *c+1*. This
//!   mirrors a registered FIFO and makes the simulation outcome independent
//!   of the order in which components are ticked within a cycle.
//! * [`DelayLine`] — a fixed-latency pipe, used for die crossings and deep
//!   pipelines where only the latency (not per-stage occupancy) matters.
//! * [`SplitMix64`] — a tiny, fully deterministic RNG so that workloads and
//!   synthetic graphs are reproducible across platforms.
//! * [`Stats`] — a name→counter registry for throughput/occupancy metrics.
//! * [`record`] — a dependency-free [`Record`]/[`Value`] model with JSON
//!   and CSV writers, used by the experiment harness to export results.
//! * [`Watchdog`] — no-forward-progress detection that turns silent
//!   deadlocks into structured [`DiagnosticSnapshot`] dumps.
//! * [`FaultInjector`] — a deterministic, seedable delay/reorder/NACK
//!   stage for stress-testing response streams.
//! * [`trace`] — a zero-cost-when-disabled event/counter tracing layer
//!   with Perfetto/Chrome-trace and CSV exporters.
//! * [`epoch`] — an epoch-barrier parallel map over independent shards
//!   whose ordered result collection keeps multi-threaded simulation
//!   byte-identical to the sequential sweep.
//! * [`fuzz`] — the deterministic fuzzing framework: per-case seed
//!   scheduling, a greedy shrinking loop, and the stable `key=value`
//!   corpus line format the conformance fuzzer's regression corpus uses.
//!
//! # Example
//!
//! ```
//! use simkit::Fifo;
//!
//! let mut f: Fifo<u32> = Fifo::new(2);
//! f.push(7).unwrap();
//! assert_eq!(f.pop(), None); // not yet visible
//! f.tick();
//! assert_eq!(f.pop(), Some(7));
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod delay;
pub mod epoch;
pub mod fault;
pub mod fifo;
pub mod fuzz;
pub mod handshake;
pub mod record;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod watchdog;

pub use delay::DelayLine;
pub use fault::{FaultConfig, FaultInjector, FaultProfile};
pub use fifo::{Fifo, PushError};
pub use handshake::CrossingLink;
pub use record::{LatencyHistogram, Record, Value};
pub use rng::SplitMix64;
pub use stats::Stats;
pub use trace::{
    EventKind, TraceConfig, TraceEvent, TraceLevel, TraceReport, Tracer, Track, TrackKind,
};
pub use watchdog::{DiagnosticSection, DiagnosticSnapshot, Watchdog};

/// Simulation time, in clock cycles of the modelled design.
pub type Cycle = u64;
