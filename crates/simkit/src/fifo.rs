//! Bounded two-phase FIFOs.

use std::collections::VecDeque;

/// Error returned by [`Fifo::push`] when the queue (including staged items)
/// is at capacity.
///
/// The rejected item is handed back so the caller can retry next cycle,
/// which is exactly what a stalled `valid/ready` producer does in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> std::fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for PushError<T> {}

/// A bounded FIFO with registered (two-phase) semantics.
///
/// Items pushed during the current cycle are *staged* and only become
/// visible to [`pop`](Fifo::pop)/[`peek`](Fifo::peek) after the next call to
/// [`tick`](Fifo::tick). Capacity accounting covers both live and staged
/// items, so a full FIFO exerts backpressure immediately, like a hardware
/// FIFO whose `ready` deasserts when full.
///
/// # Example
///
/// ```
/// use simkit::Fifo;
/// let mut f = Fifo::new(1);
/// assert!(f.push(1u8).is_ok());
/// assert!(f.push(2u8).is_err()); // full: staged item counts
/// f.tick();
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    cap: usize,
    live: VecDeque<T>,
    staged: VecDeque<T>,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero; a zero-capacity FIFO can never transfer data.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "fifo capacity must be nonzero");
        Fifo {
            cap,
            live: VecDeque::new(),
            staged: VecDeque::new(),
        }
    }

    /// Total number of items, visible and staged.
    pub fn len(&self) -> usize {
        self.live.len() + self.staged.len()
    }

    /// `true` when no items are present at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when a push this cycle would succeed.
    pub fn can_push(&self) -> bool {
        self.len() < self.cap
    }

    /// Number of free slots.
    pub fn free(&self) -> usize {
        self.cap - self.len()
    }

    /// Capacity this FIFO was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Stages `item` for delivery next cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying the item back if the FIFO is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.can_push() {
            self.staged.push_back(item);
            Ok(())
        } else {
            Err(PushError(item))
        }
    }

    /// Removes and returns the oldest *visible* item.
    pub fn pop(&mut self) -> Option<T> {
        self.live.pop_front()
    }

    /// Borrows the oldest visible item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.live.front()
    }

    /// Number of items currently visible to `pop`.
    pub fn visible_len(&self) -> usize {
        self.live.len()
    }

    /// Advances one clock cycle: staged items become visible.
    pub fn tick(&mut self) {
        self.live.append(&mut self.staged);
    }

    /// Removes every item, visible and staged.
    pub fn clear(&mut self) {
        self.live.clear();
        self.staged.clear();
    }

    /// Iterates over visible items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.live.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_visible_only_after_tick() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.pop(), None);
        assert_eq!(f.visible_len(), 0);
        assert_eq!(f.len(), 2);
        f.tick();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_counts_staged() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.push(3), Err(PushError(3)));
        f.tick();
        // Still full: nothing popped.
        assert!(!f.can_push());
        assert_eq!(f.pop(), Some(1));
        assert!(f.can_push());
    }

    #[test]
    fn fifo_order_preserved_across_ticks() {
        let mut f = Fifo::new(8);
        f.push(1).unwrap();
        f.tick();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.tick();
        let drained: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn clear_empties_both_phases() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.tick();
        f.push(2).unwrap();
        f.clear();
        assert!(f.is_empty());
        f.tick();
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn free_and_capacity_are_consistent() {
        let mut f = Fifo::new(3);
        assert_eq!(f.free(), 3);
        f.push(9).unwrap();
        assert_eq!(f.free(), 2);
        assert_eq!(f.capacity(), 3);
    }
}
