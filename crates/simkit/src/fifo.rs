//! Bounded two-phase FIFOs.

/// Error returned by [`Fifo::push`] when the queue (including staged items)
/// is at capacity.
///
/// The rejected item is handed back so the caller can retry next cycle,
/// which is exactly what a stalled `valid/ready` producer does in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> std::fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for PushError<T> {}

/// A bounded FIFO with registered (two-phase) semantics.
///
/// Items pushed during the current cycle are *staged* and only become
/// visible to [`pop`](Fifo::pop)/[`peek`](Fifo::peek) after the next call to
/// [`tick`](Fifo::tick). Capacity accounting covers both live and staged
/// items, so a full FIFO exerts backpressure immediately, like a hardware
/// FIFO whose `ready` deasserts when full.
///
/// The storage is a fixed ring buffer allocated once at construction:
/// staged items live in the same ring directly behind the visible ones, so
/// [`tick`](Fifo::tick) is a counter update — the steady-state path never
/// allocates or moves items.
///
/// # Example
///
/// ```
/// use simkit::Fifo;
/// let mut f = Fifo::new(1);
/// assert!(f.push(1u8).is_ok());
/// assert!(f.push(2u8).is_err()); // full: staged item counts
/// f.tick();
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    /// Ring storage, exactly `capacity` slots.
    buf: Box<[Option<T>]>,
    /// Index of the oldest visible item.
    head: usize,
    /// Number of visible items (starting at `head`).
    live: usize,
    /// Number of staged items (directly behind the visible ones).
    staged: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero; a zero-capacity FIFO can never transfer data.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "fifo capacity must be nonzero");
        Fifo {
            buf: (0..cap).map(|_| None).collect(),
            head: 0,
            live: 0,
            staged: 0,
        }
    }

    /// Ring index of the `i`-th item after `head` (`i < capacity`).
    #[inline]
    fn slot(&self, i: usize) -> usize {
        let idx = self.head + i;
        if idx >= self.buf.len() {
            idx - self.buf.len()
        } else {
            idx
        }
    }

    /// Total number of items, visible and staged.
    #[inline]
    pub fn len(&self) -> usize {
        self.live + self.staged
    }

    /// `true` when no items are present at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when a push this cycle would succeed.
    #[inline]
    pub fn can_push(&self) -> bool {
        self.len() < self.buf.len()
    }

    /// Number of free slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.buf.len() - self.len()
    }

    /// Capacity this FIFO was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Stages `item` for delivery next cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying the item back if the FIFO is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.can_push() {
            let slot = self.slot(self.len());
            debug_assert!(self.buf[slot].is_none());
            self.buf[slot] = Some(item);
            self.staged += 1;
            Ok(())
        } else {
            Err(PushError(item))
        }
    }

    /// Removes and returns the oldest *visible* item.
    pub fn pop(&mut self) -> Option<T> {
        if self.live == 0 {
            return None;
        }
        let item = self.buf[self.head].take();
        debug_assert!(item.is_some());
        self.head = self.slot(1);
        self.live -= 1;
        item
    }

    /// Borrows the oldest visible item without removing it.
    pub fn peek(&self) -> Option<&T> {
        if self.live == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// Number of items currently visible to `pop`.
    #[inline]
    pub fn visible_len(&self) -> usize {
        self.live
    }

    /// Advances one clock cycle: staged items become visible. O(1).
    #[inline]
    pub fn tick(&mut self) {
        self.live += self.staged;
        self.staged = 0;
    }

    /// Removes every item, visible and staged.
    pub fn clear(&mut self) {
        for slot in self.buf.iter_mut() {
            *slot = None;
        }
        self.head = 0;
        self.live = 0;
        self.staged = 0;
    }

    /// Removes and returns the `i`-th *visible* item, preserving the
    /// relative order of everything else (the DRAM scheduler's
    /// out-of-order pick). O(i) item moves.
    ///
    /// # Panics
    ///
    /// Panics when `i >= visible_len()`.
    pub fn remove_visible(&mut self, i: usize) -> T {
        assert!(i < self.live, "remove_visible past the visible region");
        let item = self.buf[self.slot(i)].take();
        // Shift the items in front of the hole back by one slot, then
        // advance head: the younger side (usually the long one in a
        // scheduler window) never moves.
        for j in (1..=i).rev() {
            let src = self.slot(j - 1);
            let dst = self.slot(j);
            self.buf[dst] = self.buf[src].take();
        }
        self.head = self.slot(1);
        self.live -= 1;
        item.expect("visible slot holds an item")
    }

    /// Iterates over visible items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.live).map(|i| {
            self.buf[self.slot(i)]
                .as_ref()
                .expect("visible slot holds an item")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_visible_only_after_tick() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.pop(), None);
        assert_eq!(f.visible_len(), 0);
        assert_eq!(f.len(), 2);
        f.tick();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_counts_staged() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.push(3), Err(PushError(3)));
        f.tick();
        // Still full: nothing popped.
        assert!(!f.can_push());
        assert_eq!(f.pop(), Some(1));
        assert!(f.can_push());
    }

    #[test]
    fn fifo_order_preserved_across_ticks() {
        let mut f = Fifo::new(8);
        f.push(1).unwrap();
        f.tick();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.tick();
        let drained: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn clear_empties_both_phases() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.tick();
        f.push(2).unwrap();
        f.clear();
        assert!(f.is_empty());
        f.tick();
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn free_and_capacity_are_consistent() {
        let mut f = Fifo::new(3);
        assert_eq!(f.free(), 3);
        f.push(9).unwrap();
        assert_eq!(f.free(), 2);
        assert_eq!(f.capacity(), 3);
    }

    #[test]
    fn ring_wraps_across_many_cycles() {
        // Push/pop through several times the capacity so head wraps.
        let mut f = Fifo::new(3);
        let mut next = 0u32;
        for expect in 0..50u32 {
            while f.push(next).is_ok() {
                next += 1;
            }
            f.tick();
            assert_eq!(f.pop(), Some(expect));
        }
    }

    #[test]
    fn remove_visible_preserves_order() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        f.tick();
        assert_eq!(f.remove_visible(2), 2);
        assert_eq!(f.remove_visible(0), 0);
        let rest: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(rest, vec![1, 3, 4]);
    }

    #[test]
    fn remove_visible_interacts_with_staged_items() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.tick();
        f.push(3).unwrap(); // staged behind the visible region
        assert_eq!(f.remove_visible(1), 2);
        assert_eq!(f.pop(), Some(1));
        f.tick();
        assert_eq!(f.pop(), Some(3));
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "visible region")]
    fn remove_visible_rejects_staged_index() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap(); // staged, not visible
        f.remove_visible(0);
    }
}
