//! The inter-die crossing circuit of Fig. 5: a valid/ready handshake
//! whose signals are registered on both dies with no combinational path
//! in between.
//!
//! Because the `ready` signal from the receiving die takes two cycles to
//! reach the sender, up to two tokens can already be in the crossing
//! registers when the sender finally sees `ready` drop — so the receiving
//! queue needs at least **four** slots to absorb them while sustaining
//! one token per cycle (the exact argument in the paper's Fig. 5
//! caption). [`CrossingLink::new`] therefore requires `queue_slots >= 4`;
//! [`CrossingLink::new_unchecked`] lets tests demonstrate how smaller
//! queues throttle the link with backpressure bubbles.

use std::collections::VecDeque;

/// A registered die-crossing link carrying one token per cycle at full
/// throughput.
///
/// Call sequence per simulated cycle: the sender checks
/// [`sender_ready`](Self::sender_ready) and optionally
/// [`send`](Self::send)s one token; the receiver may
/// [`pop`](Self::pop) one token; finally [`tick`](Self::tick) advances
/// the registers.
///
/// # Example
///
/// ```
/// use simkit::handshake::CrossingLink;
///
/// let mut link: CrossingLink<u32> = CrossingLink::new(4);
/// let mut got = Vec::new();
/// for cycle in 0..20u32 {
///     if cycle < 10 && link.sender_ready() {
///         link.send(cycle);
///     }
///     if let Some(v) = link.pop() {
///         got.push(v);
///     }
///     link.tick();
/// }
/// while let Some(v) = link.pop() {
///     got.push(v);
///     link.tick();
/// }
/// assert_eq!(got, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone)]
pub struct CrossingLink<T> {
    /// Two pipeline registers on the forward (data) path.
    stage_a: Option<T>,
    stage_b: Option<T>,
    /// Receiving-side queue.
    queue: VecDeque<T>,
    queue_slots: usize,
    /// Two pipeline registers on the backward (ready) path: the sender
    /// sees the queue's fill level as it was two cycles ago.
    ready_b: bool,
    ready_a: bool,
    /// Tokens ever lost to overflow (always 0 with ≥4 slots).
    dropped: u64,
}

impl<T> CrossingLink<T> {
    /// Creates a link whose receiving queue holds `queue_slots` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `queue_slots < 4` — fewer slots force early backpressure
    /// and break full throughput (see module docs); use
    /// [`new_unchecked`](Self::new_unchecked) to build such a link
    /// deliberately.
    pub fn new(queue_slots: usize) -> Self {
        assert!(
            queue_slots >= 4,
            "a full-throughput registered crossing needs >= 4 queue slots (Fig. 5)"
        );
        Self::new_unchecked(queue_slots)
    }

    /// Creates a link without the 4-slot safety check.
    pub fn new_unchecked(queue_slots: usize) -> Self {
        assert!(queue_slots > 0, "queue must hold at least one token");
        CrossingLink {
            stage_a: None,
            stage_b: None,
            // Occupancy is bounded by `queue_slots`, so reserving up front
            // keeps the steady-state tick path free of allocations.
            queue: VecDeque::with_capacity(queue_slots),
            queue_slots,
            ready_b: true,
            ready_a: true,
            dropped: 0,
        }
    }

    /// The sender-side `ready` — the queue state as seen through two
    /// cycles of backward registers.
    pub fn sender_ready(&self) -> bool {
        self.ready_a
    }

    /// Places a token into the first crossing register.
    ///
    /// # Panics
    ///
    /// Panics if called twice in one cycle (the register is single-width)
    /// — callers must check [`sender_ready`](Self::sender_ready) and send
    /// at most once per cycle.
    pub fn send(&mut self, t: T) {
        assert!(self.stage_a.is_none(), "one token per cycle");
        self.stage_a = Some(t);
    }

    /// Pops the oldest token from the receiving queue.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Tokens currently queued on the receiving die.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tokens lost to queue overflow (0 unless built with fewer than 4
    /// slots via [`new_unchecked`](Self::new_unchecked)).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` when no token is in flight or queued.
    pub fn is_empty(&self) -> bool {
        self.stage_a.is_none() && self.stage_b.is_none() && self.queue.is_empty()
    }

    /// `true` when a [`tick`](Self::tick) would leave the link bit-for-bit
    /// unchanged: no token in the crossing registers and the two-deep
    /// `ready` pipeline already reflects the current queue fill. Idle
    /// skipping may fast-forward a settled link any number of cycles.
    pub fn is_settled(&self) -> bool {
        let receiver_ready = self.queue.len() + 3 <= self.queue_slots;
        self.stage_a.is_none()
            && self.stage_b.is_none()
            && self.ready_a == receiver_ready
            && self.ready_b == receiver_ready
    }

    /// Advances one clock edge on both dies.
    pub fn tick(&mut self) {
        // Forward path: stage_b lands in the queue, stage_a shifts up.
        if let Some(t) = self.stage_b.take() {
            if self.queue.len() < self.queue_slots {
                self.queue.push_back(t);
            } else {
                self.dropped += 1;
            }
        }
        self.stage_b = self.stage_a.take();
        // Backward path: the receiver's "space for the worst case" signal
        // takes two cycles to reach the sender, during which the sender
        // may emit two more tokens on top of the one whose enqueue just
        // computed this signal — so deassert while fewer than 3 slots
        // remain free. Occupancy is then bounded by exactly `queue_slots`.
        let receiver_ready = self.queue.len() + 3 <= self.queue_slots;
        self.ready_a = self.ready_b;
        self.ready_b = receiver_ready;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    /// Drives `n` tokens through a link with a randomly stalling receiver;
    /// returns (received, dropped).
    fn drive(slots: usize, n: u32, stall_p: f64, seed: u64) -> (Vec<u32>, u64) {
        let mut link: CrossingLink<u32> = CrossingLink::new_unchecked(slots);
        let mut rng = SplitMix64::new(seed);
        let mut sent = 0u32;
        let mut got = Vec::new();
        for _ in 0..20_000 {
            if sent < n && link.sender_ready() {
                link.send(sent);
                sent += 1;
            }
            if !rng.chance(stall_p) {
                if let Some(v) = link.pop() {
                    got.push(v);
                }
            }
            link.tick();
            if sent == n && link.is_empty() {
                break;
            }
        }
        // Drain any stragglers.
        while let Some(v) = link.pop() {
            got.push(v);
        }
        (got, link.dropped())
    }

    #[test]
    fn full_throughput_when_receiver_keeps_up() {
        let mut link: CrossingLink<u32> = CrossingLink::new(4);
        let mut got = 0u32;
        let n = 1000;
        let mut sent = 0;
        let mut cycles = 0u64;
        while got < n {
            if sent < n && link.sender_ready() {
                link.send(sent);
                sent += 1;
            }
            if link.pop().is_some() {
                got += 1;
            }
            link.tick();
            cycles += 1;
            assert!(cycles < 5000);
        }
        // One token per cycle plus the 2-cycle fill latency.
        assert!(cycles <= n as u64 + 4, "{cycles} cycles for {n} tokens");
    }

    #[test]
    fn four_slots_never_drop_under_random_stalls() {
        for seed in 0..20 {
            let (got, dropped) = drive(4, 500, 0.5, seed);
            assert_eq!(dropped, 0, "seed {seed}");
            assert_eq!(got, (0..500).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn fewer_slots_are_safe_but_slow() {
        // The Fig. 5 sizing argument: the conservative ready generation
        // never loses tokens, but with under 4 slots it must deassert so
        // early that the link cannot sustain one token per cycle.
        let time_for = |slots: usize| -> u64 {
            let mut link: CrossingLink<u32> = CrossingLink::new_unchecked(slots);
            let n = 1000u32;
            let (mut sent, mut got, mut cycles) = (0u32, 0u32, 0u64);
            while got < n {
                if sent < n && link.sender_ready() {
                    link.send(sent);
                    sent += 1;
                }
                if link.pop().is_some() {
                    got += 1;
                }
                link.tick();
                cycles += 1;
                assert!(cycles < 100_000);
            }
            assert_eq!(link.dropped(), 0, "protocol must never drop");
            cycles
        };
        let t4 = time_for(4);
        let t3 = time_for(3);
        assert!(t4 <= 1004, "4 slots must sustain full throughput: {t4}");
        assert!(
            t3 as f64 > 1.4 * t4 as f64,
            "3 slots should throttle: {t3} vs {t4}"
        );
    }

    #[test]
    #[should_panic(expected = "4 queue slots")]
    fn constructor_enforces_fig5_minimum() {
        let _ = CrossingLink::<u8>::new(3);
    }

    #[test]
    fn tokens_keep_order() {
        let (got, dropped) = drive(6, 300, 0.3, 99);
        assert_eq!(dropped, 0);
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }
}
