//! Deterministic fuzzing framework: seed scheduling, greedy case
//! shrinking, and a stable `key=value` corpus line format.
//!
//! This module holds the *generic* machinery of the conformance fuzzer.
//! It knows nothing about graphs or accelerators — the concrete case
//! grammar and the differential oracle stack live above it (see
//! `bench::fuzz`), which keeps the framework reusable and keeps this
//! crate at the bottom of the dependency order.
//!
//! The three pieces:
//!
//! * [`case_seed`] — derives the per-case RNG seed from a master seed and
//!   a case index, so a whole fuzz run is replayable from `(master, i)`
//!   and any single case is replayable in isolation.
//! * [`shrink`] — a greedy, deterministic delta-debugging loop: given a
//!   failing case, a candidate generator, and the failure predicate, it
//!   walks toward a locally minimal case, re-checking the predicate after
//!   every proposed reduction.
//! * [`KvLine`] — encode/parse for the corpus text format: one case per
//!   line as whitespace-separated `key=value` pairs. The format is
//!   byte-stable (keys keep insertion order) so corpus files diff cleanly
//!   and replay bit-identically.

use crate::SplitMix64;

/// Derives the deterministic RNG seed for case `index` of a fuzz run
/// with master seed `master`.
///
/// Neighbouring indices must yield unrelated streams, so the index is
/// spread with the golden-ratio multiplier and the result is passed
/// through one SplitMix64 round rather than handed to the generator
/// raw.
pub fn case_seed(master: u64, index: u64) -> u64 {
    let mixed = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SplitMix64::new(mixed).next_u64()
}

/// The result of a [`shrink`] run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome<C> {
    /// The locally minimal failing case.
    pub minimal: C,
    /// Reductions that were accepted (the predicate still failed).
    pub accepted: usize,
    /// Total predicate evaluations spent, accepted or not.
    pub evals: usize,
    /// Whether shrinking stopped at a fixpoint (no candidate of the
    /// minimal case fails) rather than at the evaluation budget.
    pub converged: bool,
}

/// Greedily shrinks a failing case to a local minimum.
///
/// `candidates` proposes strictly "smaller" variants of a case, in
/// priority order (try the biggest reductions first). `still_fails`
/// re-runs the oracle; a candidate that still fails becomes the new
/// current case and the pass restarts. The loop ends when no candidate
/// fails (converged) or after `max_evals` oracle evaluations.
///
/// Both closures are called deterministically, so a shrink of the same
/// case with the same oracle always lands on the same minimum.
///
/// `initial` must itself be failing — the caller has just observed the
/// failure — so the function never evaluates it again.
pub fn shrink<C: Clone>(
    initial: C,
    mut still_fails: impl FnMut(&C) -> bool,
    mut candidates: impl FnMut(&C) -> Vec<C>,
    max_evals: usize,
) -> ShrinkOutcome<C> {
    let mut current = initial;
    let mut accepted = 0;
    let mut evals = 0;
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if evals >= max_evals {
                return ShrinkOutcome {
                    minimal: current,
                    accepted,
                    evals,
                    converged: false,
                };
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                accepted += 1;
                improved = true;
                break; // restart the pass from the smaller case
            }
        }
        if !improved {
            return ShrinkOutcome {
                minimal: current,
                accepted,
                evals,
                converged: true,
            };
        }
    }
}

/// One corpus line: an ordered list of `key=value` pairs.
///
/// Encoding writes pairs in insertion order separated by single spaces;
/// parsing accepts any whitespace between pairs and `#`-prefixed
/// comment/blank lines are the *caller's* concern (a corpus file holds
/// comment lines plus exactly one case line). Keys and values must be
/// non-empty and free of whitespace; values may contain further `=`
/// characters (the split is on the first one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvLine {
    pairs: Vec<(String, String)>,
}

impl KvLine {
    /// An empty line to be filled with [`push`](KvLine::push).
    pub fn new() -> Self {
        KvLine::default()
    }

    /// Appends a pair. Panics if the key or value is empty or contains
    /// whitespace — corpus writers control both, so this is a programmer
    /// error, not input validation.
    pub fn push(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        assert!(
            !key.is_empty() && !key.chars().any(char::is_whitespace),
            "bad corpus key {key:?}"
        );
        assert!(
            !value.is_empty() && !value.chars().any(char::is_whitespace),
            "bad corpus value {value:?} for key {key:?}"
        );
        self.pairs.push((key.to_owned(), value));
    }

    /// Renders the line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }

    /// Parses a line of `key=value` tokens.
    pub fn parse(line: &str) -> Result<KvLine, String> {
        let mut pairs = Vec::new();
        for tok in line.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("corpus token {tok:?} is not key=value"))?;
            if k.is_empty() || v.is_empty() {
                return Err(format!("corpus token {tok:?} has an empty key or value"));
            }
            pairs.push((k.to_owned(), v.to_owned()));
        }
        if pairs.is_empty() {
            return Err("empty corpus line".to_owned());
        }
        Ok(KvLine { pairs })
    }

    /// The value for `key`, if present (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value for `key`, or an error naming the missing key.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("corpus line is missing key {key:?}"))
    }

    /// Parses the value for `key` into `T`, or errors naming the key.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.require(key)?.parse().map_err(|_| {
            format!(
                "corpus key {key:?} has unparsable value {:?}",
                self.get(key)
            )
        })
    }

    /// Like [`parsed`](KvLine::parsed) but returns `default` when the
    /// key is absent (still errors on a present-but-unparsable value).
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.parsed(key),
        }
    }

    /// Keys present on the line but not in `known` — lets a parser
    /// reject misspelled keys instead of silently ignoring them.
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(k, _)| !known.contains(&k.as_str()))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_deterministic_and_spread() {
        assert_eq!(case_seed(7, 0), case_seed(7, 0));
        assert_ne!(case_seed(7, 0), case_seed(7, 1));
        assert_ne!(case_seed(7, 0), case_seed(8, 0));
        // Nearby indices share no obvious structure: all 64 first seeds
        // are distinct.
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| case_seed(1, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn shrink_minimizes_a_toy_list_case() {
        // Failure: the list contains the element 13. Minimal case: [13].
        let initial: Vec<u32> = (0..100).collect();
        let out = shrink(
            initial,
            |c| c.contains(&13),
            |c| {
                let mut cands = Vec::new();
                if c.len() > 1 {
                    let mid = c.len() / 2;
                    cands.push(c[..mid].to_vec());
                    cands.push(c[mid..].to_vec());
                    // Dropping single elements finishes the job once the
                    // halves stop failing.
                    for i in 0..c.len() {
                        let mut d = c.clone();
                        d.remove(i);
                        cands.push(d);
                    }
                }
                cands
            },
            10_000,
        );
        assert_eq!(out.minimal, vec![13]);
        assert!(out.converged);
        assert!(out.accepted > 0);
        assert!(out.evals >= out.accepted);
    }

    #[test]
    fn shrink_respects_the_eval_budget() {
        let out = shrink(
            vec![0u32; 64],
            |_| true, // everything fails: shrinking would run forever
            |c| {
                if c.len() > 1 {
                    vec![c[..c.len() - 1].to_vec()]
                } else {
                    Vec::new()
                }
            },
            10,
        );
        assert_eq!(out.evals, 10);
        assert!(!out.converged);
        assert_eq!(out.minimal.len(), 64 - 10);
    }

    #[test]
    fn shrink_is_deterministic() {
        let run = || {
            shrink(
                (0..40u32).collect::<Vec<_>>(),
                |c| c.iter().sum::<u32>() >= 50,
                |c| {
                    (0..c.len())
                        .map(|i| {
                            let mut d = c.clone();
                            d.remove(i);
                            d
                        })
                        .collect()
                },
                1_000,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.minimal, b.minimal);
        assert_eq!(a.evals, b.evals);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn kv_line_roundtrips() {
        let mut line = KvLine::new();
        line.push("graph", "rmat:5:4");
        line.push("seed", 42u64);
        line.push("algo", "sssp:0");
        let enc = line.encode();
        assert_eq!(enc, "graph=rmat:5:4 seed=42 algo=sssp:0");
        let back = KvLine::parse(&enc).unwrap();
        assert_eq!(back, line);
        assert_eq!(back.get("seed"), Some("42"));
        assert_eq!(back.parsed::<u64>("seed").unwrap(), 42);
        assert_eq!(back.parsed_or::<u32>("devices", 1).unwrap(), 1);
        assert!(back.parsed::<u64>("algo").is_err());
        assert!(back.require("missing").is_err());
        assert_eq!(
            back.unknown_keys(&["graph", "seed", "algo"]),
            Vec::<String>::new()
        );
        assert_eq!(back.unknown_keys(&["graph", "seed"]), vec!["algo"]);
    }

    #[test]
    fn kv_line_rejects_malformed_input() {
        assert!(KvLine::parse("").is_err());
        assert!(KvLine::parse("   ").is_err());
        assert!(KvLine::parse("novalue").is_err());
        assert!(KvLine::parse("=v").is_err());
        assert!(KvLine::parse("k=").is_err());
        // Values may contain '=': split happens at the first one.
        let l = KvLine::parse("k=a=b").unwrap();
        assert_eq!(l.get("k"), Some("a=b"));
    }
}
