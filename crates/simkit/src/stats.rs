//! Lightweight named-counter statistics.

use std::collections::BTreeMap;
use std::fmt;

/// A registry of named `u64` counters plus a few derived helpers.
///
/// Components increment counters as events occur; at the end of a run the
/// harness reads them out to compute hit rates, stall fractions, and
/// bandwidth. `BTreeMap` keeps reporting order stable.
///
/// # Example
///
/// ```
/// use simkit::Stats;
/// let mut s = Stats::new();
/// s.add("hits", 3);
/// s.inc("misses");
/// assert_eq!(s.get("hits"), 3);
/// assert!((s.ratio("hits", "misses") - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `a / b` as `f64`; zero when `b` is zero.
    pub fn ratio(&self, a: &str, b: &str) -> f64 {
        let d = self.get(b);
        if d == 0 {
            0.0
        } else {
            self.get(a) as f64 / d as f64
        }
    }

    /// `a / (a + b)` as `f64`; zero when both are zero. Handy for hit rates.
    pub fn fraction(&self, a: &str, b: &str) -> f64 {
        let x = self.get(a);
        let y = self.get(b);
        if x + y == 0 {
            0.0
        } else {
            x as f64 / (x + y) as f64
        }
    }

    /// Merges another registry into this one, summing shared counters.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no counter has been created.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.inc("x");
        s.add("x", 4);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = Stats::new();
        s.add("a", 10);
        assert_eq!(s.ratio("a", "nothing"), 0.0);
        s.add("b", 5);
        assert!((s.ratio("a", "b") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_is_hit_rate_style() {
        let mut s = Stats::new();
        s.add("hits", 30);
        s.add("misses", 10);
        assert!((s.fraction("hits", "misses") - 0.75).abs() < 1e-12);
        assert_eq!(Stats::new().fraction("h", "m"), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn display_is_never_empty_per_counter() {
        let mut s = Stats::new();
        s.inc("only");
        assert_eq!(s.to_string(), "only: 1\n");
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut s = Stats::new();
        s.inc("b");
        s.inc("a");
        let names: Vec<_> = s.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
