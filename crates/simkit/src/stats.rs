//! Lightweight named-counter statistics.

use std::fmt;

/// A registry of named `u64` counters plus a few derived helpers.
///
/// Components increment counters as events occur; at the end of a run the
/// harness reads them out to compute hit rates, stall fractions, and
/// bandwidth. Counters live in a name-sorted vector — registries are
/// small (tens of entries), so a binary search beats a tree walk and,
/// unlike a `String`-keyed map, bumping an existing counter allocates
/// nothing. This is hot-path code: components charge counters every
/// simulated cycle.
///
/// # Example
///
/// ```
/// use simkit::Stats;
/// let mut s = Stats::new();
/// s.add("hits", 3);
/// s.inc("misses");
/// assert_eq!(s.get("hits"), 3);
/// assert!((s.ratio("hits", "misses") - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// `(name, value)` sorted by name.
    counters: Vec<(Box<str>, u64)>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    fn position(&self, name: &str) -> Result<usize, usize> {
        self.counters
            .binary_search_by(|(k, _)| k.as_ref().cmp(name))
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.position(name) {
            Ok(i) => self.counters[i].1 += n,
            Err(i) => self.counters.insert(i, (name.into(), n)),
        }
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        match self.position(name) {
            Ok(i) => self.counters[i].1,
            Err(_) => 0,
        }
    }

    /// `a / b` as `f64`; zero when `b` is zero.
    pub fn ratio(&self, a: &str, b: &str) -> f64 {
        let d = self.get(b);
        if d == 0 {
            0.0
        } else {
            self.get(a) as f64 / d as f64
        }
    }

    /// `a / (a + b)` as `f64`; zero when both are zero. Handy for hit rates.
    pub fn fraction(&self, a: &str, b: &str) -> f64 {
        let x = self.get(a);
        let y = self.get(b);
        if x + y == 0 {
            0.0
        } else {
            x as f64 / (x + y) as f64
        }
    }

    /// Merges another registry into this one, summing shared counters.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
    }

    /// Iterates counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no counter has been created.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

/// A fixed-geometry histogram of `u64` samples with an explicit overflow
/// bucket, used by the tracing layer for occupancy distributions.
///
/// Buckets are linear: bucket `i` covers `[i * width, (i + 1) * width)`,
/// and anything at or above `buckets * width` lands in the overflow
/// bucket. All arithmetic saturates, so pathological samples (`u64::MAX`)
/// cannot poison the summary.
///
/// # Example
///
/// ```
/// use simkit::stats::Histogram;
/// let mut h = Histogram::linear(10, 8);
/// for v in [3, 5, 5, 70, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1); // 200 >= 10 * 8
/// // The median falls in the first bucket; its upper edge is 9.
/// assert_eq!(h.percentile(50.0), Some(9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with `buckets` linear buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics when `width` or `buckets` is zero.
    pub fn linear(width: u64, buckets: usize) -> Self {
        assert!(width > 0 && buckets > 0, "degenerate histogram geometry");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = (v / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] = self.counts[idx].saturating_add(1);
        } else {
            self.overflow = self.overflow.saturating_add(1);
        }
        self.total = self.total.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples that fell past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Largest sample seen (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile (0–100) as an upper bound of the bucket the
    /// rank falls into; `None` when the histogram is empty. Overflow
    /// samples report the true maximum.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the sample that bounds the percentile (1-based).
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i, clamped to the observed max.
                let edge = (i as u64 + 1).saturating_mul(self.width) - 1;
                return Some(edge.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Per-bucket counts, overflow excluded.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// Time-bucketed aggregation of a sampled quantity: for each window of
/// `bucket_cycles` simulated cycles, the count, sum, and maximum of the
/// samples that fell inside it. Backs the exported occupancy series.
///
/// # Example
///
/// ```
/// use simkit::stats::TimeBuckets;
/// let mut tb = TimeBuckets::new(100);
/// tb.record(10, 4);
/// tb.record(50, 8);
/// tb.record(250, 2);
/// let pts = tb.points();
/// assert_eq!(pts, vec![(0, 8, 6.0), (200, 2, 2.0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeBuckets {
    bucket_cycles: u64,
    /// `(bucket_index, count, sum, max)`, append-only and index-ordered
    /// because simulation time only moves forward.
    buckets: Vec<(u64, u64, u64, u64)>,
}

impl TimeBuckets {
    /// Aggregation over windows of `bucket_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be nonzero");
        TimeBuckets {
            bucket_cycles,
            buckets: Vec::new(),
        }
    }

    /// Records sample `v` taken at cycle `now`. Samples must arrive in
    /// nondecreasing time order (simulation time is monotonic).
    pub fn record(&mut self, now: u64, v: u64) {
        let idx = now / self.bucket_cycles;
        match self.buckets.last_mut() {
            Some(b) if b.0 == idx => {
                b.1 = b.1.saturating_add(1);
                b.2 = b.2.saturating_add(v);
                b.3 = b.3.max(v);
            }
            _ => self.buckets.push((idx, 1, v, v)),
        }
    }

    /// Width of one bucket in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.1).sum()
    }

    /// `(bucket_start_cycle, max, mean)` per non-empty bucket, in time
    /// order — the shape the trace exporters consume.
    pub fn points(&self) -> Vec<(u64, u64, f64)> {
        self.buckets
            .iter()
            .map(|&(idx, count, sum, max)| {
                (
                    idx * self.bucket_cycles,
                    max,
                    if count == 0 {
                        0.0
                    } else {
                        sum as f64 / count as f64
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.inc("x");
        s.add("x", 4);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = Stats::new();
        s.add("a", 10);
        assert_eq!(s.ratio("a", "nothing"), 0.0);
        s.add("b", 5);
        assert!((s.ratio("a", "b") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_is_hit_rate_style() {
        let mut s = Stats::new();
        s.add("hits", 30);
        s.add("misses", 10);
        assert!((s.fraction("hits", "misses") - 0.75).abs() < 1e-12);
        assert_eq!(Stats::new().fraction("h", "m"), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn display_is_never_empty_per_counter() {
        let mut s = Stats::new();
        s.inc("only");
        assert_eq!(s.to_string(), "only: 1\n");
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut s = Stats::new();
        s.inc("b");
        s.inc("a");
        let names: Vec<_> = s.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::linear(8, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::linear(10, 4);
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 7);
        assert!((h.mean() - 7.0).abs() < 1e-12);
        // Every percentile of a one-sample histogram is that sample's
        // bucket, clamped to the observed max.
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(50.0), Some(7));
        assert_eq!(h.percentile(100.0), Some(7));
    }

    #[test]
    fn histogram_percentiles_walk_buckets() {
        let mut h = Histogram::linear(10, 10);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(10.0), Some(9)); // first bucket's edge
        assert_eq!(h.percentile(50.0), Some(49));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(99));
    }

    #[test]
    fn histogram_overflow_bucket_catches_large_samples() {
        let mut h = Histogram::linear(4, 2); // covers [0, 8)
        h.record(3);
        h.record(8);
        h.record(1_000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1_000);
        // Ranks past the in-range buckets resolve to the true maximum.
        assert_eq!(h.percentile(100.0), Some(1_000));
        assert_eq!(h.percentile(1.0), Some(3));
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        let mut h = Histogram::linear(u64::MAX, 1);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum would overflow without saturation
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.overflow(), 2); // MAX / MAX == 1 == bucket count
        assert!(h.mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate histogram geometry")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::linear(0, 4);
    }

    #[test]
    fn time_buckets_aggregate_per_window() {
        let mut tb = TimeBuckets::new(100);
        tb.record(0, 1);
        tb.record(99, 3);
        tb.record(100, 10);
        tb.record(350, 4);
        assert_eq!(tb.count(), 4);
        assert_eq!(
            tb.points(),
            vec![(0, 3, 2.0), (100, 10, 10.0), (300, 4, 4.0)]
        );
    }

    #[test]
    fn time_buckets_empty_and_single() {
        let tb = TimeBuckets::new(16);
        assert_eq!(tb.count(), 0);
        assert!(tb.points().is_empty());
        let mut tb = TimeBuckets::new(16);
        tb.record(17, 5);
        assert_eq!(tb.points(), vec![(16, 5, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "bucket width must be nonzero")]
    fn time_buckets_reject_zero_width() {
        let _ = TimeBuckets::new(0);
    }
}
