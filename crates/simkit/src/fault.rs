//! Deterministic, seedable fault injection for response streams.
//!
//! Robustness of a miss-optimized memory system only shows under
//! adversarial timing: responses that arrive late, out of order, or get
//! transiently rejected and retried. The [`FaultInjector`] sits between
//! a producer (the DRAM model) and its consumer (the accelerator's
//! response router) and perturbs delivery according to a named
//! [`FaultProfile`] and a seed. Every decision comes from a
//! [`SplitMix64`](crate::SplitMix64) stream, so a `(profile, seed)` pair
//! replays the exact same fault schedule on every run and platform.
//!
//! All profiles except [`FaultProfile::BlackHole`] are *lossless*: every
//! offered item is eventually delivered exactly once, so a correct
//! consumer must produce results identical to the fault-free run.
//! `BlackHole` deliberately drops items after a grace period — it exists
//! to seed deadlocks and prove that a no-progress watchdog fires.

use std::collections::BTreeMap;
use std::str::FromStr;

use crate::watchdog::DiagnosticSection;
use crate::{Cycle, SplitMix64};

/// Items delivered unperturbed by [`FaultProfile::BlackHole`] before it
/// starts dropping everything.
pub const BLACK_HOLE_GRACE: u64 = 256;

/// A named fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// No perturbation: the injector is a transparent pass-through.
    #[default]
    None,
    /// Occasional large delivery delays (1/16 of items, 16–64 cycles).
    Delay,
    /// Small uniform jitter on every item, reordering near neighbours.
    Reorder,
    /// Transient NACKs: 1/32 of items are rejected and redelivered after
    /// a fixed retry penalty.
    Nack,
    /// A mild mix of delays, NACKs, and jitter.
    ChaosLite,
    /// An aggressive mix of delays, NACKs, and jitter.
    Chaos,
    /// Drops every item after [`BLACK_HOLE_GRACE`] deliveries. Lossy by
    /// design — used to seed deadlocks for watchdog tests, never part of
    /// the graceful-degradation guarantee.
    BlackHole,
    /// Sustained random loss: each item is dropped with probability
    /// `permille`/1000, survivors get a small jitter. Link-grade only —
    /// the consumer must run a retransmitting transport to survive it
    /// (the DRAM response path has no such protocol, so `Lossy` is not
    /// part of [`FaultProfile::GRACEFUL`]).
    Lossy {
        /// Drop probability in 1/1000ths (0..=1000).
        permille: u16,
    },
    /// Duplicate delivery: 1/8 of items are delivered twice, the copy
    /// trailing by a few cycles. Link-grade only — the consumer must
    /// dedup by sequence number; on the DRAM path a duplicate response
    /// would double-fire burst bookkeeping.
    Duplicate,
}

impl FaultProfile {
    /// Every built-in profile, in documentation order.
    pub const ALL: [FaultProfile; 9] = [
        FaultProfile::None,
        FaultProfile::Delay,
        FaultProfile::Reorder,
        FaultProfile::Nack,
        FaultProfile::ChaosLite,
        FaultProfile::Chaos,
        FaultProfile::BlackHole,
        FaultProfile::Lossy { permille: 100 },
        FaultProfile::Duplicate,
    ];

    /// The lossless profiles under which results must be identical to a
    /// fault-free run.
    pub const GRACEFUL: [FaultProfile; 5] = [
        FaultProfile::Delay,
        FaultProfile::Reorder,
        FaultProfile::Nack,
        FaultProfile::ChaosLite,
        FaultProfile::Chaos,
    ];

    /// Stable CLI name (`--fault-profile` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Delay => "delay",
            FaultProfile::Reorder => "reorder",
            FaultProfile::Nack => "nack",
            FaultProfile::ChaosLite => "chaos-lite",
            FaultProfile::Chaos => "chaos",
            FaultProfile::BlackHole => "black-hole",
            FaultProfile::Lossy { .. } => "lossy",
            FaultProfile::Duplicate => "duplicate",
        }
    }

    /// `true` when the profile can drop items outright, so only a
    /// retransmitting consumer can guarantee delivery.
    pub fn is_lossy(&self) -> bool {
        matches!(self, FaultProfile::BlackHole | FaultProfile::Lossy { .. })
    }
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // `lossy:N` selects a drop rate of N/1000; bare `lossy` means 10%.
        if let Some(rate) = s.strip_prefix("lossy:") {
            let permille: u16 = rate
                .parse()
                .ok()
                .filter(|p| *p <= 1000)
                .ok_or_else(|| format!("lossy rate {rate:?} is not in 0..=1000 (permille)"))?;
            return Ok(FaultProfile::Lossy { permille });
        }
        FaultProfile::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown fault profile {s:?} (try: none, delay, reorder, nack, chaos-lite, chaos, black-hole, lossy[:PERMILLE], duplicate)"))
    }
}

/// A fault schedule: which profile to apply and the RNG seed driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// The perturbation profile.
    pub profile: FaultProfile,
    /// Seed for the deterministic decision stream.
    pub seed: u64,
}

impl FaultConfig {
    /// A pass-through configuration (no faults).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// `true` when the profile actually perturbs anything.
    pub fn is_active(&self) -> bool {
        self.profile != FaultProfile::None
    }
}

/// Deterministic delay/reorder/NACK/drop stage for a response stream.
///
/// [`offer`](Self::offer) an item when the producer emits it;
/// [`pop_ready`](Self::pop_ready) items whose (possibly perturbed)
/// release cycle has arrived. Items are released in `(release cycle,
/// arrival order)` order, so the schedule is fully deterministic.
///
/// # Example
///
/// ```
/// use simkit::fault::{FaultConfig, FaultInjector, FaultProfile};
/// let cfg = FaultConfig { profile: FaultProfile::Delay, seed: 1 };
/// let mut inj: FaultInjector<u32> = FaultInjector::new(cfg);
/// inj.offer(0, 7);
/// let mut now = 0;
/// let got = loop {
///     if let Some(x) = inj.pop_ready(now) {
///         break x;
///     }
///     now += 1;
/// };
/// assert_eq!(got, 7);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector<T> {
    cfg: FaultConfig,
    rng: SplitMix64,
    held: BTreeMap<(Cycle, u64), T>,
    seq: u64,
    offered: u64,
    delivered: u64,
    delayed: u64,
    nacked: u64,
    dropped: u64,
    duplicated: u64,
}

impl<T> FaultInjector<T> {
    /// Creates an injector for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            rng: SplitMix64::new(cfg.seed ^ 0xFA_17_1D_EA),
            cfg,
            held: BTreeMap::new(),
            seq: 0,
            offered: 0,
            delivered: 0,
            delayed: 0,
            nacked: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// The configured schedule.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// `true` when the profile perturbs delivery (callers may bypass the
    /// injector entirely when this is `false`).
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Hands one produced item to the injector at cycle `now`.
    pub fn offer(&mut self, now: Cycle, item: T)
    where
        T: Clone,
    {
        self.offered += 1;
        let extra = match self.cfg.profile {
            FaultProfile::None => 0,
            FaultProfile::Delay => {
                if self.rng.next_below(16) == 0 {
                    16 + self.rng.next_below(49)
                } else {
                    0
                }
            }
            FaultProfile::Reorder => self.rng.next_below(8),
            FaultProfile::Nack => {
                if self.rng.next_below(32) == 0 {
                    self.nacked += 1;
                    32 + self.rng.next_below(17)
                } else {
                    0
                }
            }
            FaultProfile::ChaosLite => {
                if self.rng.next_below(32) == 0 {
                    8 + self.rng.next_below(25)
                } else if self.rng.next_below(64) == 0 {
                    self.nacked += 1;
                    48
                } else {
                    self.rng.next_below(4)
                }
            }
            FaultProfile::Chaos => {
                if self.rng.next_below(8) == 0 {
                    16 + self.rng.next_below(113)
                } else if self.rng.next_below(16) == 0 {
                    self.nacked += 1;
                    96
                } else {
                    self.rng.next_below(8)
                }
            }
            FaultProfile::BlackHole => {
                if self.offered > BLACK_HOLE_GRACE {
                    self.dropped += 1;
                    return;
                }
                0
            }
            FaultProfile::Lossy { permille } => {
                if self.rng.next_below(1000) < permille as u64 {
                    self.dropped += 1;
                    return;
                }
                self.rng.next_below(4)
            }
            FaultProfile::Duplicate => {
                if self.rng.next_below(8) == 0 {
                    self.duplicated += 1;
                    let trail = 2 + self.rng.next_below(7);
                    self.held.insert((now + trail, self.seq), item.clone());
                    self.seq += 1;
                }
                self.rng.next_below(4)
            }
        };
        if extra > 0 {
            self.delayed += 1;
        }
        self.held.insert((now + extra, self.seq), item);
        self.seq += 1;
    }

    /// Pops the next item whose release cycle has arrived, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        let (&key, _) = self.held.first_key_value()?;
        if key.0 > now {
            return None;
        }
        self.delivered += 1;
        self.held.remove(&key)
    }

    /// Items currently held back.
    pub fn pending(&self) -> usize {
        self.held.len()
    }

    /// Items dropped so far (nonzero only for the lossy profiles).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies injected so far (nonzero only for
    /// [`FaultProfile::Duplicate`]).
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Items offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Items delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Current state as a diagnostic section for watchdog dumps.
    pub fn diagnostic(&self) -> DiagnosticSection {
        let mut s = DiagnosticSection::new("fault");
        s.push("profile", self.cfg.profile.name());
        s.push("seed", self.cfg.seed);
        s.push("offered", self.offered);
        s.push("delivered", self.delivered);
        s.push("delayed", self.delayed);
        s.push("nacked", self.nacked);
        s.push("dropped", self.dropped);
        s.push("duplicated", self.duplicated);
        if let FaultProfile::Lossy { permille } = self.cfg.profile {
            s.push("loss_permille", permille);
        }
        s.push("pending", self.pending());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(inj: &mut FaultInjector<u64>, until: Cycle) -> Vec<u64> {
        let mut got = Vec::new();
        for now in 0..until {
            while let Some(x) = inj.pop_ready(now) {
                got.push(x);
            }
        }
        got
    }

    #[test]
    fn none_profile_is_transparent_and_ordered() {
        let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig::none());
        assert!(!inj.is_active());
        for i in 0..100 {
            inj.offer(i, i);
        }
        let got = drain_all(&mut inj, 200);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn lossless_profiles_deliver_every_item_exactly_once() {
        for profile in FaultProfile::GRACEFUL {
            let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig { profile, seed: 9 });
            for i in 0..1000 {
                inj.offer(i, i);
            }
            let mut got = drain_all(&mut inj, 3000);
            assert_eq!(inj.pending(), 0, "{} left items behind", profile.name());
            assert_eq!(inj.dropped(), 0);
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>(), "{}", profile.name());
        }
    }

    #[test]
    fn chaos_actually_reorders() {
        let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig {
            profile: FaultProfile::Chaos,
            seed: 3,
        });
        for i in 0..1000 {
            inj.offer(i, i);
        }
        let got = drain_all(&mut inj, 3000);
        assert_ne!(got, (0..1000).collect::<Vec<_>>(), "no reordering observed");
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            profile: FaultProfile::ChaosLite,
            seed: 42,
        };
        let mut a: FaultInjector<u64> = FaultInjector::new(cfg);
        let mut b: FaultInjector<u64> = FaultInjector::new(cfg);
        for i in 0..500 {
            a.offer(i, i);
            b.offer(i, i);
        }
        assert_eq!(drain_all(&mut a, 2000), drain_all(&mut b, 2000));
    }

    #[test]
    fn black_hole_drops_after_grace() {
        let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig {
            profile: FaultProfile::BlackHole,
            seed: 0,
        });
        for i in 0..BLACK_HOLE_GRACE + 100 {
            inj.offer(i, i);
        }
        let got = drain_all(&mut inj, 2000);
        assert_eq!(got.len() as u64, BLACK_HOLE_GRACE);
        assert_eq!(inj.dropped(), 100);
    }

    #[test]
    fn profile_names_round_trip() {
        for p in FaultProfile::ALL {
            if let FaultProfile::Lossy { permille } = p {
                // `lossy` alone means the default 10% rate.
                assert_eq!(permille, 100);
            }
            assert_eq!(p.name().parse::<FaultProfile>().unwrap(), p);
        }
        assert!("bogus".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn lossy_rate_parses_and_validates() {
        assert_eq!(
            "lossy:250".parse::<FaultProfile>().unwrap(),
            FaultProfile::Lossy { permille: 250 }
        );
        assert_eq!(
            "lossy".parse::<FaultProfile>().unwrap(),
            FaultProfile::Lossy { permille: 100 }
        );
        assert!("lossy:1001".parse::<FaultProfile>().is_err());
        assert!("lossy:abc".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn lossy_drops_near_the_configured_rate_deterministically() {
        let cfg = FaultConfig {
            profile: FaultProfile::Lossy { permille: 200 },
            seed: 11,
        };
        let mut a: FaultInjector<u64> = FaultInjector::new(cfg);
        let mut b: FaultInjector<u64> = FaultInjector::new(cfg);
        for i in 0..2000 {
            a.offer(i, i);
            b.offer(i, i);
        }
        // ~20% of 2000 = 400 drops; allow wide slack, but loss must be
        // substantial and exactly reproducible for the same seed.
        assert!(
            (250..550).contains(&(a.dropped() as usize)),
            "{}",
            a.dropped()
        );
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(drain_all(&mut a, 4000), drain_all(&mut b, 4000));
    }

    #[test]
    fn duplicate_delivers_every_item_plus_extras() {
        let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig {
            profile: FaultProfile::Duplicate,
            seed: 5,
        });
        for i in 0..800 {
            inj.offer(i, i);
        }
        let got = drain_all(&mut inj, 3000);
        assert!(inj.duplicated() > 0, "no duplicates injected");
        assert_eq!(got.len() as u64, 800 + inj.duplicated());
        assert_eq!(inj.dropped(), 0);
        let mut uniq = got.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq, (0..800).collect::<Vec<_>>(), "an item went missing");
    }

    #[test]
    fn diagnostic_reports_counters() {
        let mut inj: FaultInjector<u64> = FaultInjector::new(FaultConfig {
            profile: FaultProfile::Nack,
            seed: 1,
        });
        for i in 0..200 {
            inj.offer(i, i);
        }
        let d = inj.diagnostic();
        assert_eq!(d.name, "fault");
        assert!(d.entries.iter().any(|(k, v)| k == "profile" && v == "nack"));
        assert!(d.entries.iter().any(|(k, _)| k == "offered"));
    }
}
