//! No-forward-progress detection with structured diagnostics.
//!
//! A cycle-level model of a deeply pipelined memory system can deadlock
//! in ways that are invisible from the outside: every component keeps
//! ticking, yet no request ever retires. The [`Watchdog`] turns that
//! silent hang into a loud, bounded failure — the driver notes every
//! forward-progress event (a retired request, a delivered response) and
//! periodically asks the watchdog whether too many cycles have elapsed
//! since the last one. When it trips, the driver assembles a
//! [`DiagnosticSnapshot`] — per-component occupancy sections rendered as
//! a readable dump — so the stall site can be identified post mortem
//! instead of attaching a debugger to a spinning process.

use std::fmt;

use crate::Cycle;

/// Detects the absence of forward progress.
///
/// The owner calls [`note_progress`](Self::note_progress) whenever
/// anything retires and [`is_stalled`](Self::is_stalled) periodically;
/// the watchdog trips once `threshold` cycles pass without progress.
///
/// # Example
///
/// ```
/// use simkit::watchdog::Watchdog;
/// let mut w = Watchdog::new(100);
/// w.note_progress(5);
/// assert!(!w.is_stalled(100));
/// assert!(w.is_stalled(106));
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    threshold: Cycle,
    last_progress: Cycle,
}

impl Watchdog {
    /// Creates a watchdog that trips after `threshold` cycles without
    /// progress.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: Cycle) -> Self {
        assert!(threshold > 0, "watchdog threshold must be nonzero");
        Watchdog {
            threshold,
            last_progress: 0,
        }
    }

    /// Records that something retired at cycle `now`.
    pub fn note_progress(&mut self, now: Cycle) {
        self.last_progress = now;
    }

    /// `true` once more than the threshold has elapsed since the last
    /// progress event.
    pub fn is_stalled(&self, now: Cycle) -> bool {
        now.saturating_sub(self.last_progress) > self.threshold
    }

    /// Cycles elapsed since the last progress event.
    pub fn stalled_for(&self, now: Cycle) -> Cycle {
        now.saturating_sub(self.last_progress)
    }

    /// Cycle of the most recent progress event.
    pub fn last_progress(&self) -> Cycle {
        self.last_progress
    }

    /// The configured no-progress threshold.
    pub fn threshold(&self) -> Cycle {
        self.threshold
    }
}

/// One named group of key/value diagnostics (one component's state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticSection {
    /// Component name, e.g. `"moms"` or `"dram"`.
    pub name: String,
    /// Ordered key/value pairs describing the component's state.
    pub entries: Vec<(String, String)>,
}

impl DiagnosticSection {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>) -> Self {
        DiagnosticSection {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Appends one key/value entry.
    pub fn push(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        self.entries.push((key.into(), value.to_string()));
    }
}

/// Point-in-time state dump taken when a [`Watchdog`] trips.
///
/// Rendered via [`Display`](fmt::Display) as an indented, per-section
/// report suitable for a panic message or stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticSnapshot {
    /// Cycle at which the stall was detected.
    pub cycle: Cycle,
    /// Cycle of the last observed progress event.
    pub last_progress: Cycle,
    /// The watchdog threshold that tripped.
    pub threshold: Cycle,
    /// Per-component state sections.
    pub sections: Vec<DiagnosticSection>,
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no forward progress for {} cycles (threshold {}): last retirement \
             at cycle {}, detected at cycle {}",
            self.cycle.saturating_sub(self.last_progress),
            self.threshold,
            self.last_progress,
            self.cycle
        )?;
        for s in &self.sections {
            writeln!(f, "  [{}]", s.name)?;
            for (k, v) in &s.entries {
                writeln!(f, "    {k}: {v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_after_threshold() {
        let mut w = Watchdog::new(10);
        assert!(!w.is_stalled(10));
        assert!(w.is_stalled(11));
        w.note_progress(11);
        assert!(!w.is_stalled(21));
        assert!(w.is_stalled(22));
        assert_eq!(w.stalled_for(15), 4);
        assert_eq!(w.last_progress(), 11);
        assert_eq!(w.threshold(), 10);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_threshold_rejected() {
        let _ = Watchdog::new(0);
    }

    #[test]
    fn snapshot_renders_all_sections() {
        let mut sec = DiagnosticSection::new("moms");
        sec.push("bank[0]", "mshr=3/64 subs=7");
        let snap = DiagnosticSnapshot {
            cycle: 1234,
            last_progress: 200,
            threshold: 1000,
            sections: vec![sec],
        };
        let text = snap.to_string();
        assert!(text.contains("no forward progress for 1034 cycles"));
        assert!(text.contains("[moms]"));
        assert!(text.contains("bank[0]: mshr=3/64 subs=7"));
    }
}
