//! Deterministic random number generation.

/// SplitMix64: a tiny, fast, fully deterministic RNG.
///
/// Used everywhere a synthetic workload needs randomness so that graphs,
/// weights, and relabelings are bit-identical across platforms and runs.
/// Not cryptographically secure (and does not need to be).
///
/// # Example
///
/// ```
/// use simkit::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire's multiply-shift rejection-free reduction is biased for
        // large bounds; our bounds are tiny compared to 2^64, so the bias
        // is negligible for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(6);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n as f64 / 8.0;
            assert!((b as f64 - expected).abs() < expected * 0.1, "bucket {b}");
        }
    }
}
