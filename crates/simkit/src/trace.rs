//! Zero-cost-when-disabled event tracing for cycle-level simulations.
//!
//! Every timed component ([`crate::Fifo`]-level models own their counters
//! already) can also own a [`Tracer`]: a fixed-capacity ring buffer of
//! typed [`TraceEvent`]s stamped with the simulated cycle. A disabled
//! tracer stores nothing and its [`Tracer::event`] call is a single
//! predictable branch, so production runs pay nothing for the hooks.
//!
//! At the end of a run the harness collects each component's buffer,
//! merges them into one time-ordered stream ([`merge_events`]), and
//! exports it as a Perfetto/Chrome-trace JSON file ([`to_chrome_json`])
//! or a flat CSV timeline ([`to_csv`]). A timestamp-free canonical text
//! form ([`to_canonical`]) backs golden-trace regression tests.
//!
//! Tracing must never perturb the simulation: tracers observe, they do
//! not participate in handshakes. The differential suite in
//! `tests/trace_noninterference.rs` enforces this end to end.
//!
//! # Example
//!
//! ```
//! use simkit::trace::{EventKind, TraceConfig, TraceLevel, Tracer, Track};
//!
//! let cfg = TraceConfig::events();
//! let mut t = Tracer::for_track(Track::pe(0), &cfg);
//! t.event(5, EventKind::PeIssue, 42);
//! let events = t.take();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].kind.name(), "pe.issue");
//! ```

use std::fmt;
use std::str::FromStr;

use crate::Cycle;

/// How much the tracing layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Nothing is recorded; every hook is a dead branch.
    #[default]
    Off,
    /// Periodic occupancy samples only (cheap, bounded memory).
    Counters,
    /// Occupancy samples plus the full typed event stream.
    Events,
}

impl FromStr for TraceLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TraceLevel::Off),
            "counters" => Ok(TraceLevel::Counters),
            "events" => Ok(TraceLevel::Events),
            other => Err(format!(
                "unknown trace level {other:?} (expected off|counters|events)"
            )),
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Events => "events",
        })
    }
}

/// Configuration for the tracing layer, carried alongside the other
/// system-level knobs (fault profile, watchdog threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record.
    pub level: TraceLevel,
    /// Ring-buffer capacity *per component*; older events are dropped
    /// (and counted) once a component exceeds it.
    pub capacity: usize,
    /// Restrict event recording to `[start, end)` in simulated cycles.
    pub window: Option<(Cycle, Cycle)>,
    /// Cycles between occupancy samples (also the time-bucket width of
    /// the exported counter series).
    pub sample_period: Cycle,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            capacity: 1 << 16,
            window: None,
            sample_period: 1024,
        }
    }
}

impl TraceConfig {
    /// Full event tracing with default capacity and sampling.
    pub fn events() -> Self {
        TraceConfig {
            level: TraceLevel::Events,
            ..TraceConfig::default()
        }
    }

    /// Counter-only tracing with default sampling.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::default()
        }
    }

    /// `true` unless the level is [`TraceLevel::Off`].
    pub fn is_active(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// `true` when the full event stream is recorded.
    pub fn records_events(&self) -> bool {
        self.level == TraceLevel::Events
    }
}

/// Which hardware unit a track models. Order defines track ordering in
/// exports and the tie-break for simultaneous events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackKind {
    /// The job scheduler / top-level control (one instance).
    Scheduler,
    /// A processing element.
    Pe,
    /// A private (per-PE-group) MOMS bank.
    MomsPrivate,
    /// A shared MOMS bank.
    MomsShared,
    /// A DRAM channel.
    DramChannel,
    /// An inter-accelerator fabric link (one direction of one device
    /// pair).
    Link,
    /// The fabric controller (checkpoints, rollback, recovery — one
    /// instance).
    Fabric,
    /// The multi-tenant serving layer's scheduler (admission, dispatch,
    /// preemption — one instance).
    Serve,
}

/// Identity of one timeline in the trace (one PE, one bank, one channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Unit type.
    pub kind: TrackKind,
    /// Instance index within the unit type.
    pub index: u16,
}

impl Track {
    /// The scheduler / control track.
    pub fn scheduler() -> Self {
        Track {
            kind: TrackKind::Scheduler,
            index: 0,
        }
    }

    /// Track of PE `i`.
    pub fn pe(i: usize) -> Self {
        Track {
            kind: TrackKind::Pe,
            index: i as u16,
        }
    }

    /// Track of private MOMS bank `i`.
    pub fn moms_private(i: usize) -> Self {
        Track {
            kind: TrackKind::MomsPrivate,
            index: i as u16,
        }
    }

    /// Track of shared MOMS bank `i`.
    pub fn moms_shared(i: usize) -> Self {
        Track {
            kind: TrackKind::MomsShared,
            index: i as u16,
        }
    }

    /// Track of DRAM channel `i`.
    pub fn dram(i: usize) -> Self {
        Track {
            kind: TrackKind::DramChannel,
            index: i as u16,
        }
    }

    /// Track of fabric link `i`.
    pub fn link(i: usize) -> Self {
        Track {
            kind: TrackKind::Link,
            index: i as u16,
        }
    }

    /// The fabric controller track.
    pub fn fabric() -> Self {
        Track {
            kind: TrackKind::Fabric,
            index: 0,
        }
    }

    /// The serving-layer scheduler track.
    pub fn serve() -> Self {
        Track {
            kind: TrackKind::Serve,
            index: 0,
        }
    }

    /// Stable human-readable label, also the Perfetto thread name.
    pub fn label(&self) -> String {
        match self.kind {
            TrackKind::Scheduler => "sched".to_owned(),
            TrackKind::Pe => format!("pe[{}]", self.index),
            TrackKind::MomsPrivate => format!("moms.private[{}]", self.index),
            TrackKind::MomsShared => format!("moms.shared[{}]", self.index),
            TrackKind::DramChannel => format!("dram.ch[{}]", self.index),
            TrackKind::Link => format!("link[{}]", self.index),
            TrackKind::Fabric => "fabric".to_owned(),
            TrackKind::Serve => "serve".to_owned(),
        }
    }

    /// Dense sort key used as the Perfetto `tid` and for track ordering.
    pub fn sort_key(&self) -> u32 {
        let kind = match self.kind {
            TrackKind::Scheduler => 0u32,
            TrackKind::Pe => 1,
            TrackKind::MomsPrivate => 2,
            TrackKind::MomsShared => 3,
            TrackKind::DramChannel => 4,
            TrackKind::Link => 5,
            TrackKind::Fabric => 6,
            TrackKind::Serve => 7,
        };
        (kind << 16) | self.index as u32
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The typed event vocabulary. Every variant carries one `u64` argument
/// whose meaning is variant-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum EventKind {
    /// PE picked up a job; arg = destination interval index.
    PeJobStart,
    /// PE finished a job; arg = destination interval index.
    PeJobDone,
    /// PE issued a gather into its pipeline; arg = destination offset.
    PeIssue,
    /// PE retired a gather; arg = destination offset.
    PeRetire,
    /// PE could not issue: read-after-write hazard; arg = blocked count.
    PeStallRaw,
    /// PE could not hand a read to the MOMS; arg = line address.
    PeStallBackpressure,
    /// PE ran out of free request IDs; arg = 0.
    PeStallIdStarved,
    /// MOMS cache hit; arg = line address.
    MomsHit,
    /// First miss on a line (allocates an MSHR); arg = line address.
    MomsPrimaryMiss,
    /// Additional miss on an in-flight line; arg = line address.
    MomsSecondaryMiss,
    /// Cache fill evicted a resident line; arg = evicted line address.
    MomsEvict,
    /// One pending subentry was replayed to its PE; arg = request id.
    MomsReplay,
    /// Replay blocked: response queue full; arg = line address.
    MomsStallReplayFull,
    /// Primary miss blocked: memory request queue full; arg = line.
    MomsStallMemFull,
    /// Primary miss blocked: cuckoo insert failed; arg = line.
    MomsStallMshrFull,
    /// Secondary miss blocked: subentry rows exhausted; arg = line.
    MomsStallSubentryFull,
    /// Cuckoo insert placed a key; arg = number of kicks performed.
    CuckooInsert,
    /// Cuckoo insert displaced a resident key; arg = kick depth so far.
    CuckooKick,
    /// Subentry row allocated for a primary miss; arg = line address.
    SubentryAlloc,
    /// Subentry chain extended with a fresh row; arg = line address.
    SubentryChain,
    /// Subentry buffer refused an append; arg = line address.
    SubentryOverflow,
    /// DRAM row activate (after any precharge); arg = row id.
    DramActivate,
    /// DRAM precharge of an open row; arg = row id being closed.
    DramPrecharge,
    /// DRAM access hit the open row; arg = row id.
    DramRowHit,
    /// DRAM transaction completed; arg = request id.
    DramComplete,
    /// Scheduler handed a job to a PE; arg = (pe << 32) | interval.
    SchedDispatch,
    /// A Template-1 iteration began; arg = iteration number.
    IterStart,
    /// A Template-1 iteration ended; arg = iteration number.
    IterEnd,
    /// The fault injector dropped a response; arg = request id.
    FaultDrop,
    /// A link message entered a fabric link; arg = destination device.
    LinkTx,
    /// A link message was delivered by a fabric link; arg = source device.
    LinkRx,
    /// The link fault injector dropped a message; arg = source device.
    LinkDrop,
    /// A link payload was retransmitted after an ack timeout; arg =
    /// sequence number.
    LinkRetransmit,
    /// A cumulative ack was sent back to a payload's source; arg =
    /// acknowledged sequence number.
    LinkAck,
    /// A duplicate payload was discarded by the receiver; arg = sequence
    /// number.
    LinkDupDrop,
    /// The fabric snapshotted vertex state at a barrier; arg = iteration.
    CheckpointSave,
    /// The fabric rolled every shard back to a checkpoint; arg =
    /// iteration resumed from.
    Rollback,
    /// A serving-layer request arrived; arg = request id.
    ServeArrive,
    /// Admission control rejected a request under overload; arg =
    /// request id.
    ServeShed,
    /// A request batch was dispatched onto a device slot; arg = request
    /// id of the batch leader.
    ServeDispatch,
    /// A running job was preempted at an iteration boundary and its
    /// checkpoint parked; arg = request id of the batch leader.
    ServePreempt,
    /// A parked job resumed from its checkpoint; arg = request id of the
    /// batch leader.
    ServeResume,
    /// A request completed and its latency was recorded; arg = request
    /// id.
    ServeComplete,
}

impl EventKind {
    /// Stable dotted name, used in all exports and the golden fixture.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PeJobStart => "pe.job_start",
            EventKind::PeJobDone => "pe.job_done",
            EventKind::PeIssue => "pe.issue",
            EventKind::PeRetire => "pe.retire",
            EventKind::PeStallRaw => "pe.stall_raw",
            EventKind::PeStallBackpressure => "pe.stall_backpressure",
            EventKind::PeStallIdStarved => "pe.stall_id_starved",
            EventKind::MomsHit => "moms.hit",
            EventKind::MomsPrimaryMiss => "moms.primary_miss",
            EventKind::MomsSecondaryMiss => "moms.secondary_miss",
            EventKind::MomsEvict => "moms.evict",
            EventKind::MomsReplay => "moms.replay",
            EventKind::MomsStallReplayFull => "moms.stall_replay_full",
            EventKind::MomsStallMemFull => "moms.stall_mem_full",
            EventKind::MomsStallMshrFull => "moms.stall_mshr_full",
            EventKind::MomsStallSubentryFull => "moms.stall_subentry_full",
            EventKind::CuckooInsert => "cuckoo.insert",
            EventKind::CuckooKick => "cuckoo.kick",
            EventKind::SubentryAlloc => "subentry.alloc",
            EventKind::SubentryChain => "subentry.chain",
            EventKind::SubentryOverflow => "subentry.overflow",
            EventKind::DramActivate => "dram.activate",
            EventKind::DramPrecharge => "dram.precharge",
            EventKind::DramRowHit => "dram.row_hit",
            EventKind::DramComplete => "dram.complete",
            EventKind::SchedDispatch => "sched.dispatch",
            EventKind::IterStart => "iter.start",
            EventKind::IterEnd => "iter.end",
            EventKind::FaultDrop => "fault.drop",
            EventKind::LinkTx => "link.tx",
            EventKind::LinkRx => "link.rx",
            EventKind::LinkDrop => "link.drop",
            EventKind::LinkRetransmit => "link.retransmit",
            EventKind::LinkAck => "link.ack",
            EventKind::LinkDupDrop => "link.dup_drop",
            EventKind::CheckpointSave => "fabric.checkpoint",
            EventKind::Rollback => "fabric.rollback",
            EventKind::ServeArrive => "serve.arrive",
            EventKind::ServeShed => "serve.shed",
            EventKind::ServeDispatch => "serve.dispatch",
            EventKind::ServePreempt => "serve.preempt",
            EventKind::ServeResume => "serve.resume",
            EventKind::ServeComplete => "serve.complete",
        }
    }

    /// Perfetto category (the prefix of [`EventKind::name`]).
    pub fn category(&self) -> &'static str {
        let name = self.name();
        &name[..name.find('.').unwrap_or(name.len())]
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub time: Cycle,
    /// Emitting component.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// Variant-specific argument (see [`EventKind`]).
    pub arg: u64,
}

impl TraceEvent {
    /// Timestamp-free canonical rendering (golden-fixture format).
    pub fn canonical(&self) -> String {
        format!("{} {} {}", self.track.label(), self.kind.name(), self.arg)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{} {} {} arg={}",
            self.time,
            self.track.label(),
            self.kind.name(),
            self.arg
        )
    }
}

/// Per-component ring-buffered event sink.
///
/// Disabled tracers ([`Tracer::disabled`]) allocate nothing and reduce
/// [`Tracer::event`] to one branch; the differential suite verifies the
/// enabled path never changes simulation results either.
#[derive(Debug, Clone)]
pub struct Tracer {
    on: bool,
    track: Track,
    window: Option<(Cycle, Cycle)>,
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Next write slot once the ring has wrapped.
    head: usize,
    /// Total events recorded (including overwritten ones).
    total: u64,
}

impl Tracer {
    /// A tracer that records nothing; the default for every component.
    pub fn disabled() -> Self {
        Tracer {
            on: false,
            track: Track::scheduler(),
            window: None,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// A tracer recording on behalf of `track` per `cfg`. Returns a
    /// disabled tracer unless `cfg` asks for full events.
    pub fn for_track(track: Track, cfg: &TraceConfig) -> Self {
        if !cfg.records_events() || cfg.capacity == 0 {
            return Tracer::disabled();
        }
        Tracer {
            on: true,
            track,
            window: cfg.window,
            capacity: cfg.capacity,
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// `true` when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Records one event; a no-op (single branch) when disabled or when
    /// `now` falls outside the configured window.
    #[inline]
    pub fn event(&mut self, now: Cycle, kind: EventKind, arg: u64) {
        if !self.on {
            return;
        }
        self.event_slow(now, kind, arg);
    }

    #[cold]
    fn event_slow(&mut self, now: Cycle, kind: EventKind, arg: u64) {
        if let Some((start, end)) = self.window {
            if now < start || now >= end {
                return;
            }
        }
        let ev = TraceEvent {
            time: now,
            track: self.track,
            kind,
            arg,
        };
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events recorded so far, including any that were overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to ring-buffer wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The last `n` events, oldest first. Cheap; does not consume.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let ordered = self.ordered();
        let skip = ordered.len().saturating_sub(n);
        ordered.into_iter().skip(skip).collect()
    }

    /// Drains the buffer, returning events oldest first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let out = self.ordered();
        self.buf.clear();
        self.head = 0;
        out
    }

    fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Merges per-component streams (each internally time-ordered) into one
/// stream ordered by `(time, track)`. The merge is deterministic: pass
/// the streams in a deterministic order and equal-time events within one
/// component keep their emission order.
pub fn merge_events(streams: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.time, e.track.sort_key()));
    all
}

/// One exported occupancy series: per-time-bucket maxima of a sampled
/// quantity (MSHR occupancy, subentry rows in use, queue depth, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSeries {
    /// Metric name (e.g. `"mshr_occupancy"`).
    pub name: String,
    /// Width of one bucket in cycles.
    pub bucket_cycles: Cycle,
    /// `(bucket_start_cycle, max, mean)` per non-empty bucket.
    pub points: Vec<(Cycle, u64, f64)>,
}

/// Everything a traced run produced, ready for export.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Merged, time-ordered event stream (empty at counters level).
    pub events: Vec<TraceEvent>,
    /// Sampled occupancy series.
    pub counters: Vec<CounterSeries>,
    /// Events lost to ring wraparound, summed over components.
    pub dropped: u64,
    /// Total simulated cycles of the run.
    pub cycles: Cycle,
}

impl TraceReport {
    /// `true` when the report holds neither events nor counter samples.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty()
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a report as Chrome-trace JSON (the Perfetto-compatible
/// "JSON Array of Events" format): one thread per track, instant events
/// for the stream, counter tracks for the sampled series, and complete
/// (`"X"`) slices reconstructed from PE job start/done pairs. Simulated
/// cycles map 1:1 onto trace microseconds.
pub fn to_chrome_json(report: &TraceReport) -> String {
    let mut tracks: Vec<Track> = report.events.iter().map(|e| e.track).collect();
    tracks.sort_by_key(Track::sort_key);
    tracks.dedup();

    let mut out = String::with_capacity(64 * report.events.len() + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&body);
    };

    emit(
        &mut out,
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sim\"}}"
            .to_owned(),
    );
    for t in &tracks {
        let mut name = String::new();
        push_json_str(&mut name, &t.label());
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{name}}}}}",
                tid = t.sort_key(),
            ),
        );
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}",
                tid = t.sort_key(),
            ),
        );
    }

    // PE job slices: pair job_start/job_done per track into "X" events.
    let mut open: std::collections::BTreeMap<u32, (Cycle, u64)> = std::collections::BTreeMap::new();
    for e in &report.events {
        match e.kind {
            EventKind::PeJobStart => {
                open.insert(e.track.sort_key(), (e.time, e.arg));
            }
            EventKind::PeJobDone => {
                if let Some((start, interval)) = open.remove(&e.track.sort_key()) {
                    emit(
                        &mut out,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"job\",\
                             \"cat\":\"pe\",\"ts\":{start},\"dur\":{dur},\
                             \"args\":{{\"interval\":{interval}}}}}",
                            tid = e.track.sort_key(),
                            dur = e.time.saturating_sub(start).max(1),
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    for e in &report.events {
        if matches!(e.kind, EventKind::PeJobStart | EventKind::PeJobDone) {
            continue; // already rendered as slices
        }
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"name\":\"{name}\",\
                 \"cat\":\"{cat}\",\"ts\":{ts},\"s\":\"t\",\
                 \"args\":{{\"arg\":{arg}}}}}",
                tid = e.track.sort_key(),
                name = e.kind.name(),
                cat = e.kind.category(),
                ts = e.time,
                arg = e.arg,
            ),
        );
    }

    for series in &report.counters {
        let mut name = String::new();
        push_json_str(&mut name, &series.name);
        for &(t, max, _mean) in &series.points {
            emit(
                &mut out,
                format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"name\":{name},\"ts\":{t},\
                     \"args\":{{\"value\":{max}}}}}"
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Renders a report as a flat CSV timeline. Events become
/// `time,track,event,<kind>,<arg>` rows and counter samples become
/// `time,,counter,<name>,<max>` rows, so one file plots both.
pub fn to_csv(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str("time,track,record,name,value\n");
    for e in &report.events {
        out.push_str(&format!(
            "{},{},event,{},{}\n",
            e.time,
            e.track.label(),
            e.kind.name(),
            e.arg
        ));
    }
    for series in &report.counters {
        for &(t, max, mean) in &series.points {
            out.push_str(&format!("{t},,counter,{},{max},{mean:.2}\n", series.name));
        }
    }
    out
}

/// Renders events in the timestamp-free canonical form used by the
/// golden-trace regression fixture: one `track kind arg` line per event,
/// in merged stream order.
pub fn to_canonical(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(32 * events.len());
    for e in events {
        out.push_str(&e.canonical());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.event(1, EventKind::MomsHit, 7);
        assert!(!t.is_enabled());
        assert_eq!(t.total_recorded(), 0);
        assert!(t.take().is_empty());
    }

    #[test]
    fn counters_level_keeps_tracers_disabled() {
        let t = Tracer::for_track(Track::pe(0), &TraceConfig::counters());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let cfg = TraceConfig {
            capacity: 3,
            ..TraceConfig::events()
        };
        let mut t = Tracer::for_track(Track::dram(1), &cfg);
        for i in 0..5u64 {
            t.event(i, EventKind::DramRowHit, i);
        }
        assert_eq!(t.total_recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let evs = t.take();
        assert_eq!(evs.iter().map(|e| e.arg).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn window_filters_events() {
        let cfg = TraceConfig {
            window: Some((10, 20)),
            ..TraceConfig::events()
        };
        let mut t = Tracer::for_track(Track::pe(2), &cfg);
        t.event(5, EventKind::PeIssue, 0);
        t.event(10, EventKind::PeIssue, 1);
        t.event(19, EventKind::PeIssue, 2);
        t.event(20, EventKind::PeIssue, 3);
        let evs = t.take();
        assert_eq!(evs.iter().map(|e| e.arg).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn tail_returns_last_events_oldest_first() {
        let mut t = Tracer::for_track(Track::moms_shared(0), &TraceConfig::events());
        for i in 0..10u64 {
            t.event(i, EventKind::MomsReplay, i);
        }
        let tail = t.tail(3);
        assert_eq!(
            tail.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn merge_orders_by_time_then_track() {
        let mk = |time, track, arg| TraceEvent {
            time,
            track,
            kind: EventKind::MomsHit,
            arg,
        };
        let a = vec![mk(2, Track::pe(1), 0), mk(5, Track::pe(1), 1)];
        let b = vec![mk(2, Track::pe(0), 2), mk(3, Track::pe(0), 3)];
        let merged = merge_events(vec![a, b]);
        let order: Vec<u64> = merged.iter().map(|e| e.arg).collect();
        assert_eq!(order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn chrome_json_is_balanced_and_names_tracks() {
        let report = TraceReport {
            events: vec![
                TraceEvent {
                    time: 1,
                    track: Track::pe(0),
                    kind: EventKind::PeJobStart,
                    arg: 4,
                },
                TraceEvent {
                    time: 9,
                    track: Track::pe(0),
                    kind: EventKind::PeJobDone,
                    arg: 4,
                },
                TraceEvent {
                    time: 3,
                    track: Track::dram(0),
                    kind: EventKind::DramActivate,
                    arg: 17,
                },
            ],
            counters: vec![CounterSeries {
                name: "mshr_occupancy".to_owned(),
                bucket_cycles: 64,
                points: vec![(0, 5, 2.5)],
            }],
            dropped: 0,
            cycles: 10,
        };
        let json = to_chrome_json(&report);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("pe[0]"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("dram.activate"));
        assert!(json.contains("mshr_occupancy"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "JSON braces must balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let report = TraceReport {
            events: vec![TraceEvent {
                time: 4,
                track: Track::moms_private(1),
                kind: EventKind::MomsPrimaryMiss,
                arg: 99,
            }],
            counters: vec![CounterSeries {
                name: "q".to_owned(),
                bucket_cycles: 16,
                points: vec![(16, 2, 1.0)],
            }],
            dropped: 0,
            cycles: 20,
        };
        let csv = to_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "4,moms.private[1],event,moms.primary_miss,99");
        assert_eq!(lines[2], "16,,counter,q,2,1.00");
    }

    #[test]
    fn canonical_form_is_timestamp_free() {
        let ev = TraceEvent {
            time: 123,
            track: Track::moms_shared(2),
            kind: EventKind::SubentryChain,
            arg: 8,
        };
        assert_eq!(to_canonical(&[ev]), "moms.shared[2] subentry.chain 8\n");
    }

    #[test]
    fn level_parses_and_displays() {
        assert_eq!("events".parse::<TraceLevel>().unwrap(), TraceLevel::Events);
        assert_eq!(
            "counters".parse::<TraceLevel>().unwrap(),
            TraceLevel::Counters
        );
        assert_eq!("off".parse::<TraceLevel>().unwrap(), TraceLevel::Off);
        assert!("loud".parse::<TraceLevel>().is_err());
        assert_eq!(TraceLevel::Events.to_string(), "events");
    }
}
