//! Fixed-latency delay lines.

use std::collections::VecDeque;

use crate::Cycle;

/// A fixed-latency, optionally bounded pipe.
///
/// An item pushed at cycle *c* becomes poppable at cycle *c + latency*.
/// Unlike [`Fifo`](crate::Fifo), the delay line models a pipeline whose
/// stages are always free to advance — it is used for die-crossing hops
/// (Fig. 5 of the paper) and for response paths whose occupancy never
/// exerts backpressure in the modelled design.
///
/// # Example
///
/// ```
/// use simkit::DelayLine;
/// let mut d = DelayLine::unbounded(3);
/// d.push(10, "x");
/// assert_eq!(d.pop_ready(12), None);
/// assert_eq!(d.pop_ready(13), Some("x"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: Cycle,
    cap: Option<usize>,
    items: VecDeque<(Cycle, T)>,
}

impl<T> DelayLine<T> {
    /// Creates a delay line with the given latency and unlimited occupancy.
    pub fn unbounded(latency: Cycle) -> Self {
        DelayLine {
            latency,
            cap: None,
            // Head room so typical occupancies never grow the buffer on
            // the hot path; unbounded lines may still grow past this.
            items: VecDeque::with_capacity(16),
        }
    }

    /// Creates a delay line holding at most `cap` in-flight items.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn bounded(latency: Cycle, cap: usize) -> Self {
        assert!(cap > 0, "delay line capacity must be nonzero");
        DelayLine {
            latency,
            cap: Some(cap),
            items: VecDeque::with_capacity(cap),
        }
    }

    /// Latency in cycles between push and availability.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when another item may enter this cycle.
    pub fn can_push(&self) -> bool {
        match self.cap {
            Some(c) => self.items.len() < c,
            None => true,
        }
    }

    /// Inserts `item` at cycle `now`; it matures at `now + latency`.
    ///
    /// # Panics
    ///
    /// Panics if the line is bounded and full — callers must check
    /// [`can_push`](Self::can_push) first, mirroring a hardware assertion
    /// on a violated ready/valid contract.
    pub fn push(&mut self, now: Cycle, item: T) {
        assert!(self.can_push(), "push into full delay line");
        self.items.push_back((now + self.latency, item));
    }

    /// Pops the oldest item if it has matured by cycle `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if let Some((ready, _)) = self.items.front() {
            if *ready <= now {
                return self.items.pop_front().map(|(_, t)| t);
            }
        }
        None
    }

    /// Borrows the oldest item if it has matured by cycle `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((ready, t)) if *ready <= now => Some(t),
            _ => None,
        }
    }

    /// Cycle at which the oldest in-flight item matures, if any. Idle
    /// skipping uses this as the line's next-event time.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.items.front().map(|(ready, _)| *ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_mature_after_latency() {
        let mut d = DelayLine::unbounded(5);
        d.push(100, 1u8);
        for c in 100..105 {
            assert_eq!(d.pop_ready(c), None, "cycle {c}");
        }
        assert_eq!(d.pop_ready(105), Some(1));
    }

    #[test]
    fn zero_latency_is_same_cycle() {
        let mut d = DelayLine::unbounded(0);
        d.push(7, 'a');
        assert_eq!(d.pop_ready(7), Some('a'));
    }

    #[test]
    fn preserves_order() {
        let mut d = DelayLine::unbounded(2);
        d.push(0, 1);
        d.push(1, 2);
        assert_eq!(d.pop_ready(3), Some(1));
        assert_eq!(d.pop_ready(3), Some(2));
    }

    #[test]
    fn bounded_backpressure() {
        let mut d = DelayLine::bounded(4, 2);
        d.push(0, 1);
        d.push(0, 2);
        assert!(!d.can_push());
        assert_eq!(d.pop_ready(4), Some(1));
        assert!(d.can_push());
    }

    #[test]
    #[should_panic(expected = "full delay line")]
    fn push_when_full_panics() {
        let mut d = DelayLine::bounded(1, 1);
        d.push(0, 1);
        d.push(0, 2);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut d = DelayLine::unbounded(1);
        d.push(0, 42);
        assert_eq!(d.peek_ready(1), Some(&42));
        assert_eq!(d.pop_ready(1), Some(42));
        assert!(d.is_empty());
    }
}
