//! Dependency-free structured result serialization.
//!
//! Experiment results flow out of the harness as flat records — one row per
//! simulated point — that downstream tooling consumes as JSON or CSV. The
//! build must work fully offline, so instead of a serde derive this module
//! defines a tiny [`Value`] model and a [`Record`] trait that types
//! implement by listing their `(field, value)` pairs explicitly.
//!
//! # Formats
//!
//! * **JSON** ([`write_json`]): an array of objects, one per record. Lists
//!   (e.g. per-channel bandwidth) serialize as JSON arrays. Non-finite
//!   floats serialize as `null` (JSON has no NaN/Infinity).
//! * **CSV** ([`write_csv`]): a header row from the first record's field
//!   names, then one line per record. Lists are joined with `;` inside a
//!   single cell. Fields containing `,`, `"`, or newlines are quoted per
//!   RFC 4180.
//!
//! ```
//! use simkit::record::{Record, Value, to_json};
//!
//! struct Point { name: &'static str, gteps: f64 }
//! impl Record for Point {
//!     fn fields(&self) -> Vec<(&'static str, Value)> {
//!         vec![("name", Value::from(self.name)), ("gteps", Value::from(self.gteps))]
//!     }
//! }
//! let rows = [Point { name: "rmat-21", gteps: 2.5 }];
//! assert_eq!(to_json(&rows), "[\n  {\"name\": \"rmat-21\", \"gteps\": 2.5}\n]\n");
//! ```

use std::fmt::Write as _;
use std::io::{self, Write};

/// A scalar or list value inside a [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / not-applicable.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 counters round-trip).
    UInt(u64),
    /// Floating point. Non-finite values serialize as JSON `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Homogeneous or mixed list, e.g. per-channel bandwidth.
    List(Vec<Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Render as a JSON fragment.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json_into(&mut s);
        s
    }

    fn write_json_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{}", fmt_float(*f));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_json_into(out);
                }
                out.push(']');
            }
        }
    }

    /// Render as a CSV cell (unquoted; [`write_csv`] adds quoting).
    fn to_csv_cell(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => fmt_float(*f),
            Value::Str(s) => s.clone(),
            Value::List(items) => items
                .iter()
                .map(|v| v.to_csv_cell())
                .collect::<Vec<_>>()
                .join(";"),
        }
    }
}

/// Shortest float form that still round-trips through `str::parse::<f64>`.
fn fmt_float(f: f64) -> String {
    if !f.is_finite() {
        return "NaN".into();
    }
    // `{}` on f64 is already shortest-round-trip in Rust; just make sure
    // integral values keep a `.0` so readers see a float column.
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// A flat, serializable result row.
///
/// Implementors list their fields in a fixed order; the order defines the
/// CSV column order and the JSON key order.
pub trait Record {
    /// The `(field name, value)` pairs of this record, in column order.
    fn fields(&self) -> Vec<(&'static str, Value)>;
}

/// Serialize records as a pretty-ish JSON array (one object per line).
pub fn to_json<R: Record>(records: &[R]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {");
        for (j, (name, value)) in r.fields().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": ");
            value.write_json_into(&mut out);
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Serialize records as CSV (RFC 4180 quoting, header from first record).
pub fn to_csv<R: Record>(records: &[R]) -> String {
    let mut out = String::new();
    let Some(first) = records.first() else {
        return out;
    };
    let header: Vec<&str> = first.fields().iter().map(|(n, _)| *n).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in records {
        let fields = r.fields();
        debug_assert_eq!(
            fields.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            header,
            "all records in a CSV export must share one schema"
        );
        let line: Vec<String> = fields
            .iter()
            .map(|(_, v)| csv_quote(&v.to_csv_cell()))
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

fn csv_quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Write records to `w` as JSON.
pub fn write_json<R: Record, W: Write>(w: &mut W, records: &[R]) -> io::Result<()> {
    w.write_all(to_json(records).as_bytes())
}

/// Write records to `w` as CSV.
pub fn write_csv<R: Record, W: Write>(w: &mut W, records: &[R]) -> io::Result<()> {
    w.write_all(to_csv(records).as_bytes())
}

/// Output format selector shared by every exporting subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// JSON array of objects.
    #[default]
    Json,
    /// Comma-separated values with a header row.
    Csv,
}

impl std::str::FromStr for Format {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format '{other}' (expected json|csv)")),
        }
    }
}

impl Format {
    /// Serialize `records` in this format.
    pub fn render<R: Record>(self, records: &[R]) -> String {
        match self {
            Format::Json => to_json(records),
            Format::Csv => to_csv(records),
        }
    }
}

/// Sub-bucket resolution bits of [`LatencyHistogram`]: each power-of-two
/// range is split into `2^HIST_SUB_BITS` linear sub-buckets, bounding the
/// relative quantile error at `2^-HIST_SUB_BITS` (12.5%).
const HIST_SUB_BITS: u32 = 3;
/// Values below this are counted in exact unit buckets.
const HIST_EXACT: usize = 1 << (HIST_SUB_BITS + 1);
/// Total bucket count: the exact range plus 8 sub-buckets for every
/// remaining bit position of a `u64`.
const HIST_BUCKETS: usize = HIST_EXACT + (64 - (HIST_SUB_BITS + 1) as usize) * (1 << HIST_SUB_BITS);

/// Allocation-free log-linear latency histogram.
///
/// Designed for per-request latency recording in hot scheduler loops: the
/// whole state is two fixed arrays' worth of `u64` counters, so `record`
/// never allocates and `merge` is a pure element-wise add — exactly
/// associative and commutative, which keeps fan-out/fan-in aggregation
/// byte-deterministic regardless of merge order.
///
/// Values below 16 land in exact unit buckets; larger values share a
/// bucket with at most 12.5% relative spread (power-of-two exponent plus
/// [`HIST_SUB_BITS`] linear bits). [`quantile`](Self::quantile) returns
/// the inclusive upper edge of the bucket holding the requested rank
/// (clamped to the observed maximum), so for any recorded distribution
/// `oracle(q) <= quantile(q) <= oracle(q) * 9/8 + 1`.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets[..] == other.buckets[..]
    }
}
impl Eq for LatencyHistogram {}

impl LatencyHistogram {
    /// An empty histogram. All state is inline; nothing is allocated.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`.
    fn bucket_of(v: u64) -> usize {
        if v < HIST_EXACT as u64 {
            return v as usize;
        }
        // Highest set bit is at position m >= SUB_BITS+1; the SUB_BITS
        // bits below it pick the linear sub-bucket.
        let m = 63 - v.leading_zeros();
        let sub = (v >> (m - HIST_SUB_BITS)) & ((1 << HIST_SUB_BITS) - 1);
        HIST_EXACT + ((m - (HIST_SUB_BITS + 1)) * (1 << HIST_SUB_BITS) + sub as u32) as usize
    }

    /// Inclusive upper edge of bucket `b` — the value `quantile` reports
    /// for samples inside it.
    fn upper_edge(b: usize) -> u64 {
        if b < HIST_EXACT {
            return b as u64;
        }
        let i = (b - HIST_EXACT) as u32;
        let m = HIST_SUB_BITS + 1 + i / (1 << HIST_SUB_BITS);
        let sub = (i % (1 << HIST_SUB_BITS)) as u128;
        let hi = ((1 << HIST_SUB_BITS) as u128 + sub + 1) << (m - HIST_SUB_BITS);
        u64::try_from(hi - 1).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Element-wise `u64` addition (saturating
    /// on the sample sum), so merging is exactly associative and
    /// commutative: any merge tree over the same histograms yields the
    /// same bytes.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket containing the sample of rank `ceil(q * count)` (rank 1 for
    /// `q = 0`), clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_edge(b).min(self.max);
            }
        }
        self.max
    }

    /// The standard latency quartet `(p50, p90, p99, p999)`.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        cycles: u64,
        gteps: f64,
        per_ch: Vec<f64>,
        note: Option<String>,
    }

    impl Record for Row {
        fn fields(&self) -> Vec<(&'static str, Value)> {
            vec![
                ("name", Value::from(self.name.clone())),
                ("cycles", Value::from(self.cycles)),
                ("gteps", Value::from(self.gteps)),
                ("per_ch", Value::from(self.per_ch.clone())),
                ("note", Value::from(self.note.clone())),
            ]
        }
    }

    fn rows() -> Vec<Row> {
        vec![
            Row {
                name: "rmat-21".into(),
                cycles: 123456,
                gteps: 2.5,
                per_ch: vec![10.0, 10.5],
                note: None,
            },
            Row {
                name: "web, \"large\"".into(),
                cycles: 99,
                gteps: 0.125,
                per_ch: vec![1.0],
                note: Some("t/o".into()),
            },
        ]
    }

    #[test]
    fn json_round_trips_structure() {
        let j = to_json(&rows());
        assert!(j.starts_with("[\n"));
        assert!(j.contains("\"name\": \"rmat-21\""));
        assert!(j.contains("\"cycles\": 123456"));
        assert!(j.contains("\"gteps\": 2.5"));
        assert!(j.contains("\"per_ch\": [10.0, 10.5]"));
        assert!(j.contains("\"note\": null"));
        assert!(j.contains("\\\"large\\\""));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn json_escapes_control_and_nonfinite() {
        assert_eq!(Value::Str("a\nb".into()).to_json(), "\"a\\nb\"");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn csv_has_header_and_quoting() {
        let c = to_csv(&rows());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,cycles,gteps,per_ch,note");
        assert_eq!(lines.next().unwrap(), "rmat-21,123456,2.5,10.0;10.5,");
        // Embedded comma and quotes force RFC 4180 quoting.
        assert_eq!(
            lines.next().unwrap(),
            "\"web, \"\"large\"\"\",99,0.125,1.0,t/o"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn csv_of_empty_slice_is_empty() {
        let rows: Vec<Row> = vec![];
        assert_eq!(to_csv(&rows), "");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(fmt_float(3.0), "3.0");
        assert_eq!(fmt_float(0.25), "0.25");
        assert_eq!(fmt_float(1e300).parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn histogram_is_exact_below_sixteen() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        // With exact unit buckets, every quantile matches the oracle.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = Vec::new();
        let mut x = 1u64;
        while x < 1 << 40 {
            vals.push(x);
            vals.push(x + x / 3);
            x *= 7;
        }
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let n = vals.len() as f64;
            let rank = ((q * n).ceil() as usize).clamp(1, vals.len());
            let oracle = vals[rank - 1];
            let got = h.quantile(q);
            assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            assert!(
                got <= oracle + oracle / 8 + 1,
                "q={q}: {got} > oracle {oracle} * 9/8 + 1"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in [3u64, 90, 17, 200_000, 5, 1 << 33] {
            all.record(v);
        }
        for v in [3u64, 90, 17] {
            a.record(v);
        }
        for v in [200_000u64, 5, 1 << 33] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        let empty = LatencyHistogram::new();
        let mut c = all.clone();
        c.merge(&empty);
        assert_eq!(c, all);
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket's edge saturates instead of overflowing.
        assert_eq!(h.quantile(1.0), u64::MAX);
        let (p50, p90, p99, p999) = h.summary();
        assert_eq!(p50, 0);
        assert_eq!(p90, u64::MAX);
        assert_eq!(p99, u64::MAX);
        assert_eq!(p999, u64::MAX);
    }

    #[test]
    fn format_parses_and_renders() {
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("CSV".parse::<Format>().unwrap(), Format::Csv);
        assert!("xml".parse::<Format>().is_err());
        assert!(Format::Csv.render(&rows()).starts_with("name,"));
        assert!(Format::Json.render(&rows()).starts_with("[\n"));
    }
}
