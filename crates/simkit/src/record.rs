//! Dependency-free structured result serialization.
//!
//! Experiment results flow out of the harness as flat records — one row per
//! simulated point — that downstream tooling consumes as JSON or CSV. The
//! build must work fully offline, so instead of a serde derive this module
//! defines a tiny [`Value`] model and a [`Record`] trait that types
//! implement by listing their `(field, value)` pairs explicitly.
//!
//! # Formats
//!
//! * **JSON** ([`write_json`]): an array of objects, one per record. Lists
//!   (e.g. per-channel bandwidth) serialize as JSON arrays. Non-finite
//!   floats serialize as `null` (JSON has no NaN/Infinity).
//! * **CSV** ([`write_csv`]): a header row from the first record's field
//!   names, then one line per record. Lists are joined with `;` inside a
//!   single cell. Fields containing `,`, `"`, or newlines are quoted per
//!   RFC 4180.
//!
//! ```
//! use simkit::record::{Record, Value, to_json};
//!
//! struct Point { name: &'static str, gteps: f64 }
//! impl Record for Point {
//!     fn fields(&self) -> Vec<(&'static str, Value)> {
//!         vec![("name", Value::from(self.name)), ("gteps", Value::from(self.gteps))]
//!     }
//! }
//! let rows = [Point { name: "rmat-21", gteps: 2.5 }];
//! assert_eq!(to_json(&rows), "[\n  {\"name\": \"rmat-21\", \"gteps\": 2.5}\n]\n");
//! ```

use std::fmt::Write as _;
use std::io::{self, Write};

/// A scalar or list value inside a [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / not-applicable.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 counters round-trip).
    UInt(u64),
    /// Floating point. Non-finite values serialize as JSON `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Homogeneous or mixed list, e.g. per-channel bandwidth.
    List(Vec<Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Render as a JSON fragment.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json_into(&mut s);
        s
    }

    fn write_json_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{}", fmt_float(*f));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_json_into(out);
                }
                out.push(']');
            }
        }
    }

    /// Render as a CSV cell (unquoted; [`write_csv`] adds quoting).
    fn to_csv_cell(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => fmt_float(*f),
            Value::Str(s) => s.clone(),
            Value::List(items) => items
                .iter()
                .map(|v| v.to_csv_cell())
                .collect::<Vec<_>>()
                .join(";"),
        }
    }
}

/// Shortest float form that still round-trips through `str::parse::<f64>`.
fn fmt_float(f: f64) -> String {
    if !f.is_finite() {
        return "NaN".into();
    }
    // `{}` on f64 is already shortest-round-trip in Rust; just make sure
    // integral values keep a `.0` so readers see a float column.
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// A flat, serializable result row.
///
/// Implementors list their fields in a fixed order; the order defines the
/// CSV column order and the JSON key order.
pub trait Record {
    /// The `(field name, value)` pairs of this record, in column order.
    fn fields(&self) -> Vec<(&'static str, Value)>;
}

/// Serialize records as a pretty-ish JSON array (one object per line).
pub fn to_json<R: Record>(records: &[R]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {");
        for (j, (name, value)) in r.fields().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": ");
            value.write_json_into(&mut out);
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Serialize records as CSV (RFC 4180 quoting, header from first record).
pub fn to_csv<R: Record>(records: &[R]) -> String {
    let mut out = String::new();
    let Some(first) = records.first() else {
        return out;
    };
    let header: Vec<&str> = first.fields().iter().map(|(n, _)| *n).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in records {
        let fields = r.fields();
        debug_assert_eq!(
            fields.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            header,
            "all records in a CSV export must share one schema"
        );
        let line: Vec<String> = fields
            .iter()
            .map(|(_, v)| csv_quote(&v.to_csv_cell()))
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

fn csv_quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Write records to `w` as JSON.
pub fn write_json<R: Record, W: Write>(w: &mut W, records: &[R]) -> io::Result<()> {
    w.write_all(to_json(records).as_bytes())
}

/// Write records to `w` as CSV.
pub fn write_csv<R: Record, W: Write>(w: &mut W, records: &[R]) -> io::Result<()> {
    w.write_all(to_csv(records).as_bytes())
}

/// Output format selector shared by every exporting subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// JSON array of objects.
    #[default]
    Json,
    /// Comma-separated values with a header row.
    Csv,
}

impl std::str::FromStr for Format {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format '{other}' (expected json|csv)")),
        }
    }
}

impl Format {
    /// Serialize `records` in this format.
    pub fn render<R: Record>(self, records: &[R]) -> String {
        match self {
            Format::Json => to_json(records),
            Format::Csv => to_csv(records),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        cycles: u64,
        gteps: f64,
        per_ch: Vec<f64>,
        note: Option<String>,
    }

    impl Record for Row {
        fn fields(&self) -> Vec<(&'static str, Value)> {
            vec![
                ("name", Value::from(self.name.clone())),
                ("cycles", Value::from(self.cycles)),
                ("gteps", Value::from(self.gteps)),
                ("per_ch", Value::from(self.per_ch.clone())),
                ("note", Value::from(self.note.clone())),
            ]
        }
    }

    fn rows() -> Vec<Row> {
        vec![
            Row {
                name: "rmat-21".into(),
                cycles: 123456,
                gteps: 2.5,
                per_ch: vec![10.0, 10.5],
                note: None,
            },
            Row {
                name: "web, \"large\"".into(),
                cycles: 99,
                gteps: 0.125,
                per_ch: vec![1.0],
                note: Some("t/o".into()),
            },
        ]
    }

    #[test]
    fn json_round_trips_structure() {
        let j = to_json(&rows());
        assert!(j.starts_with("[\n"));
        assert!(j.contains("\"name\": \"rmat-21\""));
        assert!(j.contains("\"cycles\": 123456"));
        assert!(j.contains("\"gteps\": 2.5"));
        assert!(j.contains("\"per_ch\": [10.0, 10.5]"));
        assert!(j.contains("\"note\": null"));
        assert!(j.contains("\\\"large\\\""));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn json_escapes_control_and_nonfinite() {
        assert_eq!(Value::Str("a\nb".into()).to_json(), "\"a\\nb\"");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn csv_has_header_and_quoting() {
        let c = to_csv(&rows());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,cycles,gteps,per_ch,note");
        assert_eq!(lines.next().unwrap(), "rmat-21,123456,2.5,10.0;10.5,");
        // Embedded comma and quotes force RFC 4180 quoting.
        assert_eq!(
            lines.next().unwrap(),
            "\"web, \"\"large\"\"\",99,0.125,1.0,t/o"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn csv_of_empty_slice_is_empty() {
        let rows: Vec<Row> = vec![];
        assert_eq!(to_csv(&rows), "");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(fmt_float(3.0), "3.0");
        assert_eq!(fmt_float(0.25), "0.25");
        assert_eq!(fmt_float(1e300).parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn format_parses_and_renders() {
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("CSV".parse::<Format>().unwrap(), Format::Csv);
        assert!("xml".parse::<Format>().is_err());
        assert!(Format::Csv.render(&rows()).starts_with("name,"));
        assert!(Format::Json.render(&rows()).starts_with("[\n"));
    }
}
