//! Epoch-barrier parallel execution over independent shards.
//!
//! A globally synchronous simulation advances in *epochs*: every shard's
//! inputs are fixed at the epoch boundary, each shard ticks independently
//! to the next barrier, and only then does a (single-threaded) exchange
//! phase couple them. Within an epoch the shards share no mutable state,
//! so the host may run them on worker threads in any order — the results,
//! collected back **in shard order**, are byte-identical to a sequential
//! sweep.
//!
//! [`run_epoch`] is that parallel map: contiguous chunks of the shard
//! slice are assigned to scoped worker threads, each worker writes its
//! results into per-shard slots, and the caller receives a `Vec` indexed
//! exactly like the input. With `threads <= 1` (or a single shard) it
//! degenerates to the plain in-order `for` loop — the exact sequential
//! code path, not an emulation of it.
//!
//! # Example
//!
//! ```
//! use simkit::epoch::run_epoch;
//!
//! let mut shards = vec![1u64, 2, 3, 4, 5];
//! let doubled = run_epoch(&mut shards, 4, |i, s| {
//!     *s *= 2;
//!     (i, *s)
//! });
//! assert_eq!(doubled, vec![(0, 2), (1, 4), (2, 6), (3, 8), (4, 10)]);
//! ```

/// Resolves a requested worker-thread count: `0` means "auto" — the
/// minimum of the shard count and the host's available parallelism — and
/// any explicit request is clamped to the shard count (extra workers
/// would only idle).
pub fn resolve_threads(requested: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    if requested == 0 {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cores.min(shards)
    } else {
        requested.min(shards)
    }
}

/// Runs `f(index, item)` for every item of `items`, returning the results
/// in item order.
///
/// With `threads > 1` the items are split into `threads` contiguous
/// chunks, each processed by its own scoped worker thread; every result
/// is written into the slot of its item, so the output order — and, for
/// deterministic `f`, the output content — is independent of the thread
/// count and of scheduling. With `threads <= 1` (or fewer than two
/// items) the items are processed by a plain sequential loop on the
/// calling thread.
///
/// Panics in `f` propagate to the caller once every worker has stopped
/// (scoped threads join on scope exit).
pub fn run_epoch<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest_items = &mut items[..];
        let mut rest_slots = &mut slots[..];
        let mut base = 0usize;
        while !rest_items.is_empty() {
            let take = chunk.min(rest_items.len());
            let (chunk_items, tail_items) = rest_items.split_at_mut(take);
            let (chunk_slots, tail_slots) = rest_slots.split_at_mut(take);
            rest_items = tail_items;
            rest_slots = tail_slots;
            let start = base;
            base += take;
            scope.spawn(move || {
                for (k, (item, slot)) in chunk_items.iter_mut().zip(chunk_slots).enumerate() {
                    *slot = Some(f(start + k, item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every epoch slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let base: Vec<u64> = (0..23).collect();
        let mut seq = base.clone();
        let want = run_epoch(&mut seq, 1, |i, v| i as u64 * 1000 + *v * 3);
        for threads in [2usize, 3, 8, 64] {
            let mut par = base.clone();
            let got = run_epoch(&mut par, threads, |i, v| i as u64 * 1000 + *v * 3);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn mutations_land_on_the_right_items() {
        let mut items: Vec<usize> = vec![0; 17];
        run_epoch(&mut items, 4, |i, v| *v = i * 2);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn degenerate_shapes_work() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(run_epoch(&mut empty, 4, |_, v| *v).is_empty());
        let mut one = vec![7u32];
        assert_eq!(run_epoch(&mut one, 8, |_, v| *v + 1), vec![8]);
    }

    #[test]
    fn resolve_threads_clamps_and_autodetects() {
        assert_eq!(resolve_threads(3, 8), 3);
        assert_eq!(resolve_threads(16, 4), 4);
        assert_eq!(resolve_threads(1, 8), 1);
        let auto = resolve_threads(0, 8);
        assert!((1..=8).contains(&auto));
        // Auto never exceeds the shard count.
        assert_eq!(resolve_threads(0, 1), 1);
    }
}
