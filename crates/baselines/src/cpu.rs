//! Multithreaded CPU reference implementations.
//!
//! Stand-ins for the paper's Ligra/GraphMat baselines (Fig. 16): the same
//! three algorithms, shared-memory parallel, run on the host CPU over the
//! same graphs as the simulated accelerator. Values agree with
//! `algos::golden` (exactly for the monotone algorithms, to fp tolerance
//! for PageRank), so the comparison measures performance, not semantics.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Instant;

use algos::spec::UNREACHED;
use algos::Algorithm;
use graph::CooGraph;

/// Outcome of a timed CPU run.
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Final per-node values (same encoding as the accelerator).
    pub values: Vec<u32>,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Edges processed (edges × iterations actually executed).
    pub edges_processed: u64,
}

impl CpuRun {
    /// Throughput in GTEPS.
    pub fn gteps(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.edges_processed as f64 / self.seconds / 1e9
        }
    }
}

/// Runs `algo` on `g` with `threads` worker threads and times it.
///
/// # Panics
///
/// Panics if `threads` is zero or the algorithm/graph combination is
/// unsupported (weighted algorithm on an unweighted graph).
pub fn run(algo: &Algorithm, g: &CooGraph, threads: usize) -> CpuRun {
    assert!(threads > 0, "at least one thread");
    match algo {
        Algorithm::PageRank { iterations } => pagerank(g, *iterations, threads),
        Algorithm::Scc | Algorithm::Wcc => min_propagate(g, algo, threads),
        Algorithm::Sssp { .. } | Algorithm::Bfs { .. } => min_propagate(g, algo, threads),
    }
}

fn chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let step = len.div_ceil(parts).max(1);
    (0..len)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(len)))
        .collect()
}

fn pagerank(g: &CooGraph, iterations: u32, threads: usize) -> CpuRun {
    let n = g.num_nodes() as usize;
    let od = g.out_degrees();
    let algo = Algorithm::PageRank { iterations };
    let start = Instant::now();

    // Normalized scores, as the accelerator stores them.
    let mut x: Vec<f32> = algo
        .initial_vin(g)
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
    let ranges = chunks(g.num_edges(), threads);
    for _ in 0..iterations {
        // Per-thread partial sums, reduced after the join.
        let partials: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let x = &x;
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let mut sum = vec![0f32; n];
                        for i in lo..hi {
                            let (s, d, _) = g.edge(i);
                            sum[d as usize] += x[s as usize];
                        }
                        sum
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        let base = 0.15f32 / n as f32;
        for i in 0..n {
            let sum: f32 = partials.iter().map(|p| p[i]).sum();
            let pr = base + 0.85 * sum;
            x[i] = if od[i] == 0 { pr } else { pr / od[i] as f32 };
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let raw: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
    CpuRun {
        values: algo.finalize(g, &raw),
        seconds,
        edges_processed: g.num_edges() as u64 * iterations as u64,
    }
}

fn min_propagate(g: &CooGraph, algo: &Algorithm, threads: usize) -> CpuRun {
    let n = g.num_nodes() as usize;
    if algo.is_weighted() {
        assert!(g.is_weighted(), "weighted algorithm needs weights");
    }
    let start = Instant::now();
    let v: Vec<AtomicU32> = algo
        .initial_vin(g)
        .into_iter()
        .map(AtomicU32::new)
        .collect();
    let ranges = chunks(g.num_edges(), threads);
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let changed = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for &(lo, hi) in &ranges {
                let v = &v;
                let changed = &changed;
                scope.spawn(move || {
                    for i in lo..hi {
                        let (s, d, w) = g.edge(i);
                        let u = v[s as usize].load(Ordering::Relaxed);
                        if u == UNREACHED {
                            continue;
                        }
                        let cand = match algo {
                            Algorithm::Scc | Algorithm::Wcc => u,
                            Algorithm::Sssp { .. } => u.saturating_add(w),
                            Algorithm::Bfs { .. } => u.saturating_add(1),
                            Algorithm::PageRank { .. } => unreachable!("handled above"),
                        };
                        // Atomic min.
                        let mut cur = v[d as usize].load(Ordering::Relaxed);
                        while cand < cur {
                            match v[d as usize].compare_exchange_weak(
                                cur,
                                cand,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => {
                                    changed.store(true, Ordering::Relaxed);
                                    break;
                                }
                                Err(actual) => cur = actual,
                            }
                        }
                    }
                });
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
        assert!(rounds <= n as u64 + 1, "propagation failed to converge");
    }
    let seconds = start.elapsed().as_secs_f64();
    CpuRun {
        values: v.into_iter().map(|a| a.into_inner()).collect(),
        seconds,
        edges_processed: g.num_edges() as u64 * rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algos::golden;
    use graph::GraphSpec;

    #[test]
    fn cpu_scc_matches_golden() {
        let g = GraphSpec::rmat(10, 8).build(7);
        let algo = Algorithm::Scc;
        let got = run(&algo, &g, 4);
        assert_eq!(got.values, golden::run(&algo, &g));
        assert!(got.seconds >= 0.0);
    }

    #[test]
    fn cpu_sssp_matches_dijkstra() {
        let g = GraphSpec::rmat(9, 8)
            .build(9)
            .with_random_weights(0, 255, 2);
        let algo = Algorithm::sssp(0);
        let got = run(&algo, &g, 4);
        assert_eq!(got.values, golden::dijkstra(&g, 0));
    }

    #[test]
    fn cpu_pagerank_matches_golden_within_tolerance() {
        let g = GraphSpec::rmat(9, 6).build(11);
        let algo = Algorithm::pagerank();
        let got = run(&algo, &g, 4);
        let want = golden::run(&algo, &g);
        assert_eq!(golden::pagerank_mismatch(&got.values, &want, 1e-3), None);
    }

    #[test]
    fn single_thread_equals_multi_thread_for_monotone() {
        let g = GraphSpec::rmat(9, 8).build(13);
        let algo = Algorithm::bfs(0);
        let a = run(&algo, &g, 1);
        let b = run(&algo, &g, 8);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn gteps_reporting() {
        let g = GraphSpec::rmat(8, 4).build(15);
        let got = run(&Algorithm::Scc, &g, 2);
        assert!(got.gteps() > 0.0);
        assert!(got.edges_processed >= g.num_edges() as u64);
    }
}
