//! ForeGraph-style statically tiled scratchpad baseline.
//!
//! The behaviour Fig. 1b illustrates: node intervals are transferred at
//! tile granularity whether or not their nodes are needed, and the number
//! of source-tile transfers is quadratic in the number of intervals. This
//! model walks the actual shard structure of a partitioned graph (so empty
//! shards genuinely skip their tile loads) and converts traffic to time at
//! a given bandwidth.

use graph::PartitionedGraph;

/// Traffic/time model of a statically tiled accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScratchpadModel {
    /// External bandwidth in bytes per cycle.
    pub ext_bytes_per_cycle: f64,
    /// Edge processing rate in edges per cycle (PE parallelism).
    pub edges_per_cycle: f64,
    /// Bytes per node value.
    pub node_bytes: u64,
    /// Bytes per stored edge.
    pub edge_bytes: u64,
}

impl Default for ScratchpadModel {
    fn default() -> Self {
        ScratchpadModel {
            ext_bytes_per_cycle: 80.0,
            edges_per_cycle: 8.0,
            node_bytes: 4,
            edge_bytes: 4,
        }
    }
}

/// Traffic breakdown for one iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TileTraffic {
    /// Bytes of edges streamed.
    pub edge_bytes: u64,
    /// Bytes of source tiles loaded (the quadratic term).
    pub src_tile_bytes: u64,
    /// Bytes of destination tiles loaded and written back.
    pub dst_tile_bytes: u64,
}

impl TileTraffic {
    /// Total DRAM bytes moved.
    pub fn total(&self) -> u64 {
        self.edge_bytes + self.src_tile_bytes + self.dst_tile_bytes
    }
}

impl ScratchpadModel {
    /// Computes one iteration's DRAM traffic for `parts`, loading a source
    /// tile for every nonempty shard and a destination tile per interval.
    pub fn iteration_traffic(&self, parts: &PartitionedGraph) -> TileTraffic {
        let mut t = TileTraffic::default();
        for d in 0..parts.qd() {
            let d_nodes = parts.d_interval_len(d) as u64;
            let mut any = false;
            for s in 0..parts.qs() {
                let shard = parts.shard(s, d);
                if shard.is_empty() {
                    continue;
                }
                any = true;
                t.edge_bytes += shard.len() as u64 * self.edge_bytes;
                // The whole source tile moves regardless of how many of
                // its nodes the shard actually references.
                let s_base = parts.s_interval_base(s) as u64;
                let s_nodes = (parts.ns() as u64).min(parts.num_nodes() as u64 - s_base);
                t.src_tile_bytes += s_nodes * self.node_bytes;
            }
            if any {
                // Destination tile: load + write back.
                t.dst_tile_bytes += 2 * d_nodes * self.node_bytes;
            }
        }
        t
    }

    /// Cycles for one iteration: transfer time and compute overlap.
    pub fn iteration_cycles(&self, parts: &PartitionedGraph) -> f64 {
        let t = self.iteration_traffic(parts);
        let transfer = t.total() as f64 / self.ext_bytes_per_cycle;
        let compute = parts.total_edges() as f64 / self.edges_per_cycle;
        transfer.max(compute)
    }

    /// Throughput in edges per cycle.
    pub fn edges_per_cycle_achieved(&self, parts: &PartitionedGraph) -> f64 {
        parts.total_edges() as f64 / self.iteration_cycles(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{GraphSpec, Partitioner};

    #[test]
    fn src_traffic_grows_quadratically_with_intervals() {
        let g = GraphSpec::erdos_renyi(4096, 65536).build(3);
        let coarse = Partitioner::new(2048, 2048).partition(&g);
        let fine = Partitioner::new(256, 256).partition(&g);
        let m = ScratchpadModel::default();
        let tc = m.iteration_traffic(&coarse);
        let tf = m.iteration_traffic(&fine);
        // Edge traffic identical; tile traffic much larger when tiled
        // finely (Qd 16 vs 2: nearly 8x the source passes on a dense
        // shard structure).
        assert_eq!(tc.edge_bytes, tf.edge_bytes);
        assert!(
            tf.src_tile_bytes > 4 * tc.src_tile_bytes,
            "{} vs {}",
            tf.src_tile_bytes,
            tc.src_tile_bytes
        );
    }

    #[test]
    fn empty_shards_skip_tiles() {
        // A graph with edges only inside interval 0.
        let g =
            graph::CooGraph::from_edges(512, (0..100).map(|i| (i % 64, (i * 7) % 64)).collect());
        let parts = Partitioner::new(64, 64).partition(&g);
        let t = ScratchpadModel::default().iteration_traffic(&parts);
        // One shard, one source tile, one destination tile.
        assert_eq!(t.src_tile_bytes, 64 * 4);
        assert_eq!(t.dst_tile_bytes, 2 * 64 * 4);
    }

    #[test]
    fn compute_bound_when_bandwidth_ample() {
        let g = GraphSpec::rmat(10, 16).build(5);
        let parts = Partitioner::new(1024, 1024).partition(&g);
        let m = ScratchpadModel {
            ext_bytes_per_cycle: 1e9,
            ..ScratchpadModel::default()
        };
        let cycles = m.iteration_cycles(&parts);
        let compute = parts.total_edges() as f64 / m.edges_per_cycle;
        assert!((cycles - compute).abs() < 1e-6);
    }
}
