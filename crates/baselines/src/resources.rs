//! Analytic FPGA resource and frequency model (Fig. 17, §V-G).
//!
//! Vivado reports are replaced by per-component cost functions calibrated
//! against the paper's observations: designs are limited mostly by LUTs
//! (interconnect) and BRAM, DSPs are underutilised even for floating-point
//! PageRank, per-SLR LUT utilisation peaks near 90%, and clocks land
//! between 196 and 227 MHz (the exploration discards designs under
//! 185 MHz).

use moms::{MomsSystemConfig, Topology};

/// Absolute resource counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// Six-input LUTs.
    pub luts: f64,
    /// Flip-flops.
    pub ffs: f64,
    /// BRAM36 blocks.
    pub bram36: f64,
    /// UltraRAM blocks.
    pub uram: f64,
    /// DSP48 slices.
    pub dsps: f64,
}

impl ResourceUsage {
    fn add(&mut self, o: ResourceUsage) {
        self.luts += o.luts;
        self.ffs += o.ffs;
        self.bram36 += o.bram36;
        self.uram += o.uram;
        self.dsps += o.dsps;
    }

    /// Utilisation fractions against the VU9P resources left after the AWS
    /// shell (§V-A reserves 25–35% of two SLRs; we model a flat 25%).
    pub fn utilisation(&self) -> ResourceUsage {
        let avail = vu9p_after_shell();
        ResourceUsage {
            luts: self.luts / avail.luts,
            ffs: self.ffs / avail.ffs,
            bram36: self.bram36 / avail.bram36,
            uram: self.uram / avail.uram,
            dsps: self.dsps / avail.dsps,
        }
    }

    /// Largest utilisation fraction across resource classes.
    pub fn max_utilisation(&self) -> f64 {
        let u = self.utilisation();
        u.luts.max(u.ffs).max(u.bram36).max(u.uram).max(u.dsps)
    }
}

/// VU9P totals minus the 25% shell reservation.
fn vu9p_after_shell() -> ResourceUsage {
    ResourceUsage {
        luts: 1_182_000.0 * 0.75,
        ffs: 2_364_000.0 * 0.75,
        bram36: 2_160.0 * 0.75,
        uram: 960.0 * 0.75,
        dsps: 6_840.0 * 0.75,
    }
}

/// Resource/frequency estimator for a full design point.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    /// MOMS configuration of the design.
    pub moms: MomsSystemConfig,
    /// `true` for the floating-point PageRank PEs (uses DSPs, HLS gather).
    pub floating_point: bool,
    /// Destination-buffer nodes per PE and bytes per node.
    pub pe_buffer_bytes: u64,
}

impl ResourceModel {
    /// Cost of one PE: control, DMA, gather pipeline, URAM buffer.
    fn pe_cost(&self) -> ResourceUsage {
        ResourceUsage {
            luts: if self.floating_point {
                9_000.0
            } else {
                6_500.0
            },
            ffs: if self.floating_point {
                14_000.0
            } else {
                9_000.0
            },
            bram36: 8.0, // edge queue, state memory, free-ID queue
            uram: (self.pe_buffer_bytes as f64 / (288.0 * 1024.0 / 8.0)).ceil(),
            dsps: if self.floating_point { 8.0 } else { 0.0 },
        }
    }

    /// Cost of one MOMS bank given its on-chip memory bits.
    fn bank_cost(bits: u64) -> ResourceUsage {
        ResourceUsage {
            luts: 7_000.0,
            ffs: 9_000.0,
            // MSHRs in BRAM, subentries/cache in URAM (§V-B); split the
            // bits 1:3 between the two.
            bram36: (bits as f64 * 0.25 / 36_864.0).ceil(),
            uram: (bits as f64 * 0.75 / 294_912.0).ceil(),
            dsps: 0.0,
        }
    }

    /// Interconnect cost: crossbar ports grow with PEs × banks, plus the
    /// per-channel burst interconnect.
    fn interconnect_cost(&self) -> ResourceUsage {
        let pes = self.moms.num_pes as f64;
        let banks = match self.moms.topology {
            Topology::Private => 0.0,
            _ => self.moms.shared_banks as f64,
        };
        let channels = self.moms.num_channels as f64;
        ResourceUsage {
            luts: 1_800.0 * pes * banks.max(1.0).sqrt() + 14_000.0 * channels + 3_000.0 * pes,
            ffs: 2_400.0 * pes * banks.max(1.0).sqrt() + 18_000.0 * channels + 4_000.0 * pes,
            bram36: 2.0 * channels,
            uram: 0.0,
            dsps: 0.0,
        }
    }

    /// Total resource usage of the design.
    pub fn total(&self) -> ResourceUsage {
        let mut t = ResourceUsage::default();
        for _ in 0..self.moms.num_pes {
            t.add(self.pe_cost());
        }
        if !matches!(self.moms.topology, Topology::Shared) {
            for _ in 0..self.moms.num_pes {
                t.add(Self::bank_cost(self.moms.private.memory_bits()));
            }
        }
        if !matches!(self.moms.topology, Topology::Private) {
            for _ in 0..self.moms.shared_banks {
                t.add(Self::bank_cost(self.moms.shared.memory_bits()));
            }
        }
        t.add(self.interconnect_cost());
        t
    }

    /// Estimated clock in MHz: 250 MHz target degraded by congestion
    /// (utilisation) and SLR-crossing pressure; clamped to the paper's
    /// observed band.
    pub fn frequency_mhz(&self) -> f64 {
        let util = self.total().max_utilisation().min(1.2);
        // Crossing pressure: how many PEs sit on a different SLR than the
        // central crossbar.
        let crossings =
            self.moms.pe_slr.iter().filter(|&&s| s != 1).count() as f64 / self.moms.num_pes as f64;
        let f = 250.0 - 45.0 * util.max(0.3) - 25.0 * crossings;
        f.clamp(150.0, 250.0)
    }

    /// `true` when the design would be discarded by the exploration
    /// (< 185 MHz, §V-B) or does not fit.
    pub fn feasible(&self) -> bool {
        self.frequency_mhz() >= 185.0 && self.total().max_utilisation() <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like(fp: bool) -> ResourceModel {
        ResourceModel {
            moms: MomsSystemConfig::paper_two_level_16_16(),
            floating_point: fp,
            pe_buffer_bytes: 32_768 * if fp { 8 } else { 4 },
        }
    }

    #[test]
    fn paper_scale_design_fits_and_clocks_in_band() {
        let m = paper_like(true);
        assert!(m.feasible(), "16/16 two-level must be feasible");
        let f = m.frequency_mhz();
        assert!(
            (185.0..=235.0).contains(&f),
            "frequency {f} outside the paper's observed band"
        );
    }

    #[test]
    fn luts_dominate_over_dsps() {
        // §V-G: designs are mostly limited by LUTs/BRAM; DSPs are
        // underutilised even in floating point.
        let u = paper_like(true).total().utilisation();
        assert!(u.dsps < 0.10, "DSP utilisation {} too high", u.dsps);
        assert!(u.luts > u.dsps * 3.0);
    }

    #[test]
    fn more_pes_and_banks_cost_more() {
        let small = paper_like(false);
        let mut big_cfg = MomsSystemConfig::paper_two_level_16_16();
        big_cfg.num_pes = 24;
        big_cfg.pe_slr = moms::system::default_pe_slrs(24);
        big_cfg.shared_banks = 32;
        let big = ResourceModel {
            moms: big_cfg,
            floating_point: false,
            pe_buffer_bytes: 32_768 * 4,
        };
        assert!(big.total().luts > small.total().luts);
        assert!(big.frequency_mhz() <= small.frequency_mhz());
    }

    #[test]
    fn infeasible_when_overprovisioned() {
        let mut cfg = MomsSystemConfig::paper_two_level_16_16();
        cfg.num_pes = 200;
        cfg.pe_slr = moms::system::default_pe_slrs(200);
        cfg.shared_banks = 64;
        let m = ResourceModel {
            moms: cfg,
            floating_point: true,
            pe_buffer_bytes: 32_768 * 8,
        };
        assert!(!m.feasible());
    }
}
