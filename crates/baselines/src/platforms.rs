//! Platform bandwidth/power table (Table IV) and efficiency metrics.

/// A hardware platform from Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// This work / FabGraph: AWS f1 FPGA, 4× DDR4.
    Fpga,
    /// Gunrock: NVIDIA Tesla V100 with HBM2 (power is board TDP, an
    /// overestimate per the paper's footnote).
    Gpu,
    /// Ligra/GraphMat: dual-socket Xeon E5-2680 v3.
    Cpu,
}

impl Platform {
    /// External memory bandwidth in GB/s (Table IV).
    pub fn bandwidth_gbs(self) -> f64 {
        match self {
            Platform::Fpga => 64.0,
            Platform::Gpu => 900.0,
            Platform::Cpu => 233.0,
        }
    }

    /// Power in watts (Table IV; GPU is the full-board TDP).
    pub fn power_w(self) -> f64 {
        match self {
            Platform::Fpga => 23.0,
            Platform::Gpu => 300.0,
            Platform::Cpu => 224.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Fpga => "FPGA (this work / FabGraph)",
            Platform::Gpu => "GPU (Gunrock, V100)",
            Platform::Cpu => "CPU (Ligra/GraphMat, 2×E5-2680v3)",
        }
    }
}

/// Bandwidth efficiency: GTEPS per GB/s of external bandwidth.
pub fn bandwidth_efficiency(gteps: f64, platform: Platform) -> f64 {
    gteps / platform.bandwidth_gbs()
}

/// Power efficiency: GTEPS per watt.
pub fn power_efficiency(gteps: f64, platform: Platform) -> f64 {
    gteps / platform.power_w()
}

/// Relative efficiency of `(a_gteps, a)` over `(b_gteps, b)` in bandwidth
/// terms — the ratio the paper's "1.1–5.8× more bandwidth-efficient"
/// claims use.
pub fn bandwidth_efficiency_ratio(a_gteps: f64, a: Platform, b_gteps: f64, b: Platform) -> f64 {
    bandwidth_efficiency(a_gteps, a) / bandwidth_efficiency(b_gteps, b)
}

/// Relative power efficiency.
pub fn power_efficiency_ratio(a_gteps: f64, a: Platform, b_gteps: f64, b: Platform) -> f64 {
    power_efficiency(a_gteps, a) / power_efficiency(b_gteps, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_values() {
        assert_eq!(Platform::Fpga.bandwidth_gbs(), 64.0);
        assert_eq!(Platform::Fpga.power_w(), 23.0);
        assert_eq!(Platform::Gpu.bandwidth_gbs(), 900.0);
        assert_eq!(Platform::Gpu.power_w(), 300.0);
        assert_eq!(Platform::Cpu.bandwidth_gbs(), 233.0);
        assert_eq!(Platform::Cpu.power_w(), 224.0);
    }

    #[test]
    fn efficiency_ratios_behave() {
        // Equal raw throughput: the FPGA is 233/64 more bandwidth
        // efficient and 224/23 more power efficient than the CPU.
        let r = bandwidth_efficiency_ratio(1.0, Platform::Fpga, 1.0, Platform::Cpu);
        assert!((r - 233.0 / 64.0).abs() < 1e-9);
        let p = power_efficiency_ratio(1.0, Platform::Fpga, 1.0, Platform::Cpu);
        assert!((p - 224.0 / 23.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_nonempty() {
        for p in [Platform::Fpga, Platform::Gpu, Platform::Cpu] {
            assert!(!p.name().is_empty());
        }
    }
}
