//! First-order analytic throughput model of the MOMS accelerator, used to
//! compare against the FabGraph model at *paper scale* (tens of millions
//! of nodes), where cycle-level simulation is intractable but the paper's
//! Fig. 14/16 claims actually live.
//!
//! One iteration moves, over the external memory:
//!
//! * the edge stream: `M · edge_bytes`;
//! * destination vertex traffic: `2 N · 4` (one load + one write-back per
//!   interval per iteration — *linear* in `N`, the paper's §I-C point);
//! * irregular source reads: `M / merge · 64` bytes, where `merge` is the
//!   average number of reads served per fetched line (the MOMS coalescing
//!   factor; measured values on the simulator range from ~2 on low-skew
//!   graphs to ~8 on hot windows).
//!
//! Iteration time is the maximum of bandwidth time and compute time
//! (`M / PEs`), matching the optimistic overlap assumption used for the
//! FabGraph model so the comparison is apples-to-apples.

/// Analytic MOMS accelerator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomsAnalyticModel {
    /// Processing elements (1 edge/cycle each).
    pub pes: u64,
    /// External bandwidth in bytes per cycle.
    pub ext_bytes_per_cycle: f64,
    /// Average irregular reads served per fetched 64 B line.
    pub merge_factor: f64,
    /// Bytes per stored edge.
    pub edge_bytes: u64,
}

impl MomsAnalyticModel {
    /// The paper's headline configuration at `channels` DDR4 channels:
    /// 16 PEs, 16 GB/s per channel at 200 MHz, and a conservative
    /// coalescing factor of 4 (the simulator measures 2–8).
    pub fn paper_default(channels: u64) -> Self {
        MomsAnalyticModel {
            pes: 16,
            ext_bytes_per_cycle: 80.0 * channels as f64,
            merge_factor: 4.0,
            edge_bytes: 4,
        }
    }

    /// Estimated cycles for one iteration on an `n`-node, `m`-edge graph.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn iteration_cycles(&self, n: u64, m: u64) -> f64 {
        assert!(self.pes > 0 && self.merge_factor > 0.0, "degenerate model");
        let edge_stream = (m * self.edge_bytes) as f64;
        let dst_traffic = (2 * n * 4) as f64;
        let irregular = m as f64 / self.merge_factor * 64.0;
        let bw_time = (edge_stream + dst_traffic + irregular) / self.ext_bytes_per_cycle;
        let compute = m as f64 / self.pes as f64;
        bw_time.max(compute)
    }

    /// Throughput in edges per cycle.
    pub fn edges_per_cycle(&self, n: u64, m: u64) -> f64 {
        m as f64 / self.iteration_cycles(n, m)
    }

    /// Throughput in GTEPS at `freq_mhz`.
    pub fn gteps(&self, n: u64, m: u64, freq_mhz: f64) -> f64 {
        self.edges_per_cycle(n, m) * freq_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabgraph::FabGraphModel;

    #[test]
    fn vertex_traffic_is_linear_in_n() {
        let m = MomsAnalyticModel::paper_default(4);
        // Doubling N at fixed M must change the cycle count by less than
        // the doubled destination traffic alone (no quadratic blow-up).
        let edges = 1_000_000_000u64;
        let t1 = m.iteration_cycles(20_000_000, edges);
        let t2 = m.iteration_cycles(40_000_000, edges);
        let extra = (2 * 20_000_000 * 4) as f64 / m.ext_bytes_per_cycle;
        assert!((t2 - t1) <= extra * 1.01, "{} vs {}", t2 - t1, extra);
    }

    #[test]
    fn paper_scale_crossover_vs_fabgraph() {
        // Fig. 14's qualitative claim: FabGraph's Qd·N internal/vertex
        // traffic loses to the MOMS on large graphs at 4 channels, while
        // on 1 channel FabGraph's perfectly streamed edges can win.
        let n = 60_000_000u64; // twitter-class
        let m = 1_500_000_000u64;
        let fab4 = FabGraphModel::paper_default(4).gteps(n, m, 200.0);
        let moms4 = MomsAnalyticModel::paper_default(4).gteps(n, m, 200.0);
        assert!(
            moms4 > fab4,
            "MOMS {moms4:.2} must beat FabGraph {fab4:.2} at 4 channels on large graphs"
        );
    }

    #[test]
    fn merge_factor_matters() {
        let n = 60_000_000u64;
        let m = 1_500_000_000u64;
        let weak = MomsAnalyticModel {
            merge_factor: 1.0,
            ..MomsAnalyticModel::paper_default(4)
        };
        let strong = MomsAnalyticModel {
            merge_factor: 8.0,
            ..MomsAnalyticModel::paper_default(4)
        };
        assert!(strong.gteps(n, m, 200.0) > 1.5 * weak.gteps(n, m, 200.0));
    }
}
