//! Baselines and platform models for the comparison experiments.
//!
//! * [`fabgraph`] — the analytic throughput model of FabGraph used by the
//!   paper itself for Figs. 14/16 (edges always active, ideal DRAM
//!   bandwidth, no RAW stalls, internal L1↔L2 bandwidth limit).
//! * [`scratchpad`] — a ForeGraph-style statically tiled scratchpad
//!   baseline: computes the DRAM traffic and time of tile-based execution,
//!   the behaviour Fig. 1b motivates against.
//! * [`cpu`] — multithreaded CPU reference implementations of PageRank,
//!   SCC-style label propagation, and SSSP, standing in for Ligra/GraphMat
//!   in the Fig. 16 comparison (see DESIGN.md for the substitution).
//! * [`resources`] — the analytic FPGA resource and frequency model behind
//!   Fig. 17 and §V-G.
//! * [`platforms`] — Table IV: external bandwidth and power per platform,
//!   plus bandwidth/power-efficiency helpers.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod analytic;
pub mod cpu;
pub mod fabgraph;
pub mod platforms;
pub mod resources;
pub mod scratchpad;

pub use analytic::MomsAnalyticModel;
pub use fabgraph::FabGraphModel;
pub use platforms::Platform;
pub use resources::{ResourceModel, ResourceUsage};
pub use scratchpad::ScratchpadModel;
