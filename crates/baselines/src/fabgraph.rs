//! Analytic FabGraph throughput model.
//!
//! The paper compares against FabGraph \[44\] using "the theoretical model
//! described by Equations (2) to (7) in the FabGraph paper", assuming
//! edges are always active and ideal DRAM bandwidth, and ignoring RAW
//! conflicts and SLR effects (§V-D). This module reconstructs that model
//! from FabGraph's architecture:
//!
//! FabGraph caches vertices at two levels — a large on-chip L2 buffer
//! holding one source/destination interval pair and small per-PE L1
//! scratchpads — and streams edge shards. One iteration therefore costs,
//! in time:
//!
//! * edge streaming: every shard is read once, `M · edge_bytes / BW_ext`;
//! * vertex movement over DRAM: each destination interval is loaded and
//!   written once per iteration (`2 N · 4 / BW_ext`), while each *source*
//!   interval must be re-read once per destination interval it feeds
//!   (`Q_d` passes over the node set → `Q_d · N · 4 / BW_ext`);
//! * internal L2→L1 traffic: every source interval is broadcast from L2 to
//!   the PE scratchpads for every destination interval,
//!   `Q_d · N · 4 / BW_int`;
//! * compute: `M / (PEs · f)` edges at one edge per PE per cycle.
//!
//! Iteration time is the maximum of the overlapped phases (the pipeline
//! overlaps edge and vertex streams), matching the optimistic reading the
//! paper takes. With one channel this is usually edge-bound (FabGraph wins
//! small configurations); with more channels the `Q_d`-proportional vertex
//! traffic and the fixed internal bandwidth dominate, which is exactly the
//! "scales less than ideally" behaviour of Fig. 14.

/// Parameters of the analytic model.
#[derive(Debug, Clone, PartialEq)]
pub struct FabGraphModel {
    /// On-chip vertex buffer capacity in nodes (determines `Q_d`).
    pub l2_nodes: u64,
    /// External DRAM bandwidth in bytes/cycle (per the ideal 16 GB/s per
    /// channel at the modelled clock).
    pub ext_bytes_per_cycle: f64,
    /// Internal L2→L1 bandwidth in bytes/cycle.
    pub int_bytes_per_cycle: f64,
    /// Number of processing pipelines.
    pub pes: u64,
    /// Bytes per stored edge (4 for the compressed format).
    pub edge_bytes: u64,
}

impl FabGraphModel {
    /// The configuration the paper uses for comparison: 4 MB of vertex
    /// buffer, 8 pipelines, 64-bit internal port per pipeline.
    pub fn paper_default(channels: u64) -> Self {
        FabGraphModel {
            l2_nodes: (4 << 20) / 4,
            // 16 GB/s per channel at 200 MHz = 80 B/cycle.
            ext_bytes_per_cycle: 80.0 * channels as f64,
            int_bytes_per_cycle: 64.0,
            pes: 8,
            edge_bytes: 4,
        }
    }

    /// Scales the vertex buffer (used when graphs are scaled down so that
    /// `Q_d` ratios stay paper-like).
    pub fn with_l2_nodes(mut self, nodes: u64) -> Self {
        self.l2_nodes = nodes;
        self
    }

    /// Estimated cycles for one iteration over a graph with `n` nodes and
    /// `m` edges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn iteration_cycles(&self, n: u64, m: u64) -> f64 {
        assert!(self.l2_nodes > 0 && self.pes > 0, "degenerate model");
        assert!(n > 0, "graph must have nodes");
        let qd = n.div_ceil(self.l2_nodes);
        let edge_stream = (m * self.edge_bytes) as f64 / self.ext_bytes_per_cycle;
        let dst_traffic = (2 * n * 4) as f64 / self.ext_bytes_per_cycle;
        let src_traffic = (qd * n * 4) as f64 / self.ext_bytes_per_cycle;
        let internal = (qd * n * 4) as f64 / self.int_bytes_per_cycle;
        let compute = m as f64 / self.pes as f64;
        // Phases overlap; the slowest one bounds the iteration.
        edge_stream
            .max(dst_traffic + src_traffic)
            .max(internal)
            .max(compute)
    }

    /// Throughput in edges per cycle for an `iters`-iteration run.
    pub fn edges_per_cycle(&self, n: u64, m: u64) -> f64 {
        m as f64 / self.iteration_cycles(n, m)
    }

    /// Throughput in GTEPS at `freq_mhz`.
    pub fn gteps(&self, n: u64, m: u64, freq_mhz: f64) -> f64 {
        self.edges_per_cycle(n, m) * freq_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_graphs_avoid_vertex_traffic() {
        let m = FabGraphModel::paper_default(1);
        // Node set fits on chip: qd == 1, so only edge streaming and
        // compute matter (no repeated source passes).
        let n = m.l2_nodes / 2;
        let edges = n * 32;
        let cycles = m.iteration_cycles(n, edges);
        let edge_only = (edges * 4) as f64 / m.ext_bytes_per_cycle;
        let compute = edges as f64 / m.pes as f64;
        let expect = edge_only.max(compute);
        assert!(
            (cycles - expect).abs() / expect < 0.2,
            "{cycles} vs {expect}"
        );
    }

    #[test]
    fn large_graphs_hit_internal_bandwidth() {
        let m = FabGraphModel::paper_default(4);
        // Node set 32x the buffer: internal broadcast dominates.
        let n = m.l2_nodes * 32;
        let edges = n * 8;
        let cycles = m.iteration_cycles(n, edges);
        let internal = (32 * n * 4) as f64 / m.int_bytes_per_cycle;
        assert!(
            (cycles - internal).abs() / internal < 0.1,
            "expected internal-bandwidth bound"
        );
    }

    #[test]
    fn scaling_channels_saturates() {
        // Going 1 -> 4 channels helps much less than 4x on a large graph
        // (the paper's "scales less than ideally").
        let n = (4u64 << 20) / 4 * 16;
        let m = n * 8;
        let t1 = FabGraphModel::paper_default(1).edges_per_cycle(n, m);
        let t4 = FabGraphModel::paper_default(4).edges_per_cycle(n, m);
        assert!(t4 / t1 < 3.0, "speedup {:.2} should be sublinear", t4 / t1);
        assert!(t4 >= t1, "more bandwidth can never hurt");
    }

    #[test]
    fn gteps_is_frequency_scaled() {
        let m = FabGraphModel::paper_default(1);
        let a = m.gteps(1 << 20, 8 << 20, 200.0);
        let b = m.gteps(1 << 20, 8 << 20, 100.0);
        assert!((a / b - 2.0).abs() < 1e-9);
    }
}
