//! Iteration-level checkpointing and rollback recovery for the fabric.
//!
//! A multi-device run is globally synchronous: after every barrier
//! exchange the host-side mirror holds the globally consistent `V_in`
//! values and the next-iteration active flags are known. That is exactly
//! the state a [`Checkpoint`] captures — everything needed to replay the
//! run from that barrier on fresh or rolled-back devices. The
//! [`CheckpointStore`] keeps a bounded window of them (configurable
//! interval and retention), and the [`Fabric`](crate::Fabric) consults the
//! newest one when a device or link watchdog trips: instead of
//! surfacing [`FabricError`](crate::FabricError), it rolls every shard
//! back, resets the link protocol, and replays — bounded by
//! [`RecoveryConfig::max_attempts`] — recording what happened in a
//! [`RecoveryReport`].

use simkit::Cycle;

use std::collections::VecDeque;

/// Globally consistent fabric state at one barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Iterations completed when this checkpoint was taken.
    pub iteration: u32,
    /// Global cycle at which every device sat at the barrier.
    pub cycle: Cycle,
    /// The globally consistent `V_in` value of every node.
    pub values: Vec<u32>,
    /// Active flags of the next iteration's source intervals.
    pub active: Vec<bool>,
    /// Edges processed so far, per device.
    pub edges: Vec<u64>,
}

/// Bounded ring of the most recent checkpoints.
///
/// # Eviction order
///
/// Eviction is deterministic and strictly oldest-first: [`save`]
/// appends at the back and pops from the front until at most
/// [`capacity`](CheckpointStore::capacity) checkpoints remain, so the
/// retained window is always the contiguous run of the newest saves, in
/// save order, regardless of how many sessions share the store or how
/// their saves interleave. Two runs that issue the same save sequence
/// observe byte-identical stores — the serving layer relies on this to
/// keep preempt/park/evict decisions reproducible when many concurrent
/// sessions checkpoint against bounded capacity.
///
/// [`save`]: CheckpointStore::save
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    retention: usize,
    saved: VecDeque<Checkpoint>,
    taken: u64,
}

impl CheckpointStore {
    /// A store keeping the `retention` most recent checkpoints
    /// (`retention` is clamped to at least 1 — a store that cannot hold a
    /// checkpoint cannot recover anything).
    pub fn new(retention: usize) -> Self {
        CheckpointStore {
            retention: retention.max(1),
            saved: VecDeque::new(),
            taken: 0,
        }
    }

    /// Saves `ckpt`, evicting the oldest checkpoint beyond retention.
    pub fn save(&mut self, ckpt: Checkpoint) {
        self.taken += 1;
        self.saved.push_back(ckpt);
        while self.saved.len() > self.retention {
            self.saved.pop_front();
        }
    }

    /// The newest checkpoint, if any was taken.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.saved.back()
    }

    /// The oldest retained checkpoint — the furthest the fabric could
    /// still roll back.
    pub fn oldest(&self) -> Option<&Checkpoint> {
        self.saved.front()
    }

    /// Checkpoints currently retained.
    pub fn len(&self) -> usize {
        self.saved.len()
    }

    /// Maximum checkpoints the store retains before [`save`]
    /// (oldest-first) eviction kicks in — the clamped `retention` this
    /// store was built with.
    ///
    /// [`save`]: CheckpointStore::save
    pub fn capacity(&self) -> usize {
        self.retention
    }

    /// `true` when no checkpoint was ever saved (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.saved.is_empty()
    }

    /// Total checkpoints taken over the run, including evicted ones.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

/// Rollback-recovery policy of a fabric run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Barriers between checkpoints (1 = snapshot at every barrier).
    pub checkpoint_interval: u32,
    /// How many checkpoints the store retains.
    pub retention: usize,
    /// Total rollbacks attempted before the original error surfaces.
    pub max_attempts: u32,
    /// Downtime in cycles charged per rollback (detection, link reset,
    /// and state reload), booked as `link_wait` on every PE.
    pub reset_cycles: Cycle,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 1,
            retention: 2,
            max_attempts: 8,
            reset_cycles: 10_000,
        }
    }
}

/// What tripped the watchdog that a rollback answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCause {
    /// The link exchange made no progress (lost messages, dead link).
    LinkStalled,
    /// A device's own watchdog tripped mid-iteration.
    DeviceStalled {
        /// Which device stalled.
        device: usize,
    },
}

impl RecoveryCause {
    /// Stable label for exports and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryCause::LinkStalled => "link-stalled",
            RecoveryCause::DeviceStalled { .. } => "device-stalled",
        }
    }
}

impl std::fmt::Display for RecoveryCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryCause::LinkStalled => write!(f, "link-stalled"),
            RecoveryCause::DeviceStalled { device } => {
                write!(f, "device-stalled[{device}]")
            }
        }
    }
}

/// One rollback the fabric performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAttempt {
    /// Why the rollback happened.
    pub cause: RecoveryCause,
    /// Global cycle at which the failure was detected.
    pub at_cycle: Cycle,
    /// Iteration the run resumed from (the checkpoint's iteration).
    pub resumed_iteration: u32,
    /// Cycles of work discarded plus reset downtime
    /// (`resume - checkpoint.cycle`).
    pub cycles_lost: Cycle,
}

/// Structured account of every rollback of one fabric run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Every rollback, in order.
    pub attempts: Vec<RecoveryAttempt>,
    /// Sum of `cycles_lost` over all attempts.
    pub total_cycles_lost: Cycle,
    /// Checkpoints taken over the run (including the implicit initial
    /// one).
    pub checkpoints_taken: u64,
}

impl RecoveryReport {
    /// `true` when the run rolled back at least once.
    pub fn recovered(&self) -> bool {
        !self.attempts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(iteration: u32) -> Checkpoint {
        Checkpoint {
            iteration,
            cycle: iteration as Cycle * 100,
            values: vec![iteration; 4],
            active: vec![true, false],
            edges: vec![iteration as u64 * 10; 2],
        }
    }

    #[test]
    fn store_keeps_only_the_retention_newest() {
        let mut s = CheckpointStore::new(2);
        assert!(s.is_empty());
        for i in 0..5 {
            s.save(ckpt(i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.taken(), 5);
        assert_eq!(s.latest().unwrap().iteration, 4);
    }

    #[test]
    fn eviction_is_strictly_oldest_first() {
        let mut s = CheckpointStore::new(3);
        for i in 0..7 {
            s.save(ckpt(i));
            // After each save the window is the contiguous newest run:
            // oldest..=latest with no gaps and no reordering.
            let oldest = s.oldest().unwrap().iteration;
            let latest = s.latest().unwrap().iteration;
            assert_eq!(latest, i);
            assert_eq!(oldest, i.saturating_sub(2));
            assert_eq!(s.len() as u32, latest - oldest + 1);
        }
        assert_eq!(s.taken(), 7);
    }

    #[test]
    fn restore_after_reset_replays_the_saved_state() {
        // A store that survives a device reset must hand back exactly the
        // bytes it was given — the fabric reloads values/active/edges from
        // the checkpoint verbatim.
        let mut s = CheckpointStore::new(2);
        s.save(ckpt(3));
        s.save(ckpt(4));
        let restored = s.latest().cloned().unwrap();
        assert_eq!(restored, ckpt(4));
        assert_eq!(restored.values, vec![4; 4]);
        assert_eq!(restored.edges, vec![40; 2]);
        // Rolling back does not consume the checkpoint: a second failure
        // can restore from the same snapshot.
        assert_eq!(s.latest().cloned().unwrap(), ckpt(4));
        assert_eq!(s.len(), 2);
        // Saving after the rollback keeps counting and evicting in order.
        s.save(ckpt(4));
        assert_eq!(s.taken(), 3);
        assert_eq!(s.oldest().unwrap().iteration, 4);
    }

    #[test]
    fn zero_retention_is_clamped_to_one() {
        let mut s = CheckpointStore::new(0);
        assert_eq!(s.capacity(), 1);
        s.save(ckpt(1));
        s.save(ckpt(2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().iteration, 2);
    }

    #[test]
    fn capacity_reports_the_clamped_retention() {
        assert_eq!(CheckpointStore::new(5).capacity(), 5);
        let mut s = CheckpointStore::new(3);
        for i in 0..9 {
            s.save(ckpt(i));
            assert!(s.len() <= s.capacity());
        }
        assert_eq!(s.len(), s.capacity());
    }

    #[test]
    fn report_tracks_attempts_and_cycles() {
        let mut r = RecoveryReport::default();
        assert!(!r.recovered());
        r.attempts.push(RecoveryAttempt {
            cause: RecoveryCause::LinkStalled,
            at_cycle: 500,
            resumed_iteration: 3,
            cycles_lost: 200,
        });
        r.total_cycles_lost += 200;
        assert!(r.recovered());
        assert_eq!(r.attempts[0].cause.name(), "link-stalled");
        assert_eq!(
            RecoveryCause::DeviceStalled { device: 2 }.to_string(),
            "device-stalled[2]"
        );
    }
}
