//! Cycle-level model of the multi-die FPGA graph accelerator (Fig. 6).
//!
//! The [`System`] wires together:
//!
//! * multithreaded out-of-order [`pe::Pe`]s — DMA for node init / edge
//!   pointer / edge streaming / writeback bursts, the two MOMS interfaces
//!   of Fig. 10 (free-ID queue + state memory for weighted graphs,
//!   destination-offset-as-ID for unweighted), and a `gather()` pipeline
//!   with RAW stall tracking;
//! * a dynamic job [`system::Scheduler`] exposing one job per destination
//!   interval, pulled by idle PEs (§IV-E: jobs are 1–2 orders of magnitude
//!   more numerous than PEs, so no static balancing is needed);
//! * the [`moms::MomsSystem`] for irregular source-value reads;
//! * the multi-channel [`dram::MemorySystem`] for burst traffic, with PE
//!   bursts split at the 2,048 B channel-interleave boundary.
//!
//! Execution follows Template 1: iterations run to convergence (or the
//! fixed PageRank count), `active_srcs` tracking skips inactive shards,
//! and synchronous algorithms swap `V_DRAM,in`/`V_DRAM,out` between
//! iterations. Results are functionally exact: the `tests/` suite checks
//! them against the golden executors in `algos`.
//!
//! # Example
//!
//! ```
//! use accel::{System, SystemConfig};
//! use algos::{golden, Algorithm};
//! use graph::{GraphSpec, Partitioner};
//!
//! let g = GraphSpec::rmat(8, 4).build(1);
//! let algo = Algorithm::bfs(0);
//! let mut sys = System::new(&g, Partitioner::new(128, 128), algo, SystemConfig::small());
//! let result = sys.run();
//! assert_eq!(result.values, golden::run(&algo, &g));
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod fabric;
pub mod fuzz;
pub mod pe;
pub mod run_config;
pub mod system;

pub use checkpoint::{
    Checkpoint, CheckpointStore, RecoveryAttempt, RecoveryCause, RecoveryConfig, RecoveryReport,
};
pub use config::{ExecutionMode, PeConfig, SystemConfig, DEFAULT_WATCHDOG_CYCLES};
pub use driver::Driver;
pub use fabric::{
    Fabric, FabricError, FabricRunResult, LinkConfig, LinkNetworkStats, LinkRetryConfig, LinkStats,
    LinkTopology,
};
pub use pe::{Pe, PeCycleBreakdown};
pub use run_config::{CacheVariant, RunConfig};
pub use system::{MetricsSnapshot, PeStallBreakdown, RunError, RunResult, System};
