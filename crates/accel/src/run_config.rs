//! The single configuration path for accelerator runs.
//!
//! Every front end — the [`Driver`](crate::Driver) builder, the experiment
//! harness's sweep specs, ad-hoc tests — lowers its knobs into a
//! [`RunConfig`] and calls [`RunConfig::build`]. That one method owns the
//! invariants that used to be duplicated per caller: cache-variant
//! stripping, PE BRAM sized to the destination interval, and validation.

use dram::DramConfig;
use graph::Partitioner;
use moms::MomsSystemConfig;
use simkit::{Cycle, FaultConfig, TraceConfig};

use crate::checkpoint::RecoveryConfig;
use crate::config::{ExecutionMode, PeConfig, SystemConfig, DEFAULT_WATCHDOG_CYCLES};
use crate::fabric::LinkConfig;

/// Which cache arrays stay enabled (Fig. 15's four variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheVariant {
    /// Private and shared arrays enabled.
    #[default]
    Full,
    /// Shared array only.
    NoPrivate,
    /// Private array only.
    NoShared,
    /// No cache arrays at all (MSHRs and subentries only).
    None,
}

impl CacheVariant {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            CacheVariant::Full => "priv+shared",
            CacheVariant::NoPrivate => "shared only",
            CacheVariant::NoShared => "priv only",
            CacheVariant::None => "no caches",
        }
    }
}

/// A fully resolved run configuration: MOMS topology and bank parameters,
/// DRAM timing, interval sizes, and execution control.
///
/// Construct one with [`RunConfig::new`] from whatever source defines the
/// architecture (a `Driver`, an experiment `ArchPoint`, a hand-built
/// [`MomsSystemConfig`]), adjust the public fields, then [`build`]
/// (`RunConfig::build`) the `(SystemConfig, Partitioner)` pair every
/// simulator entry point consumes.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// MOMS topology and bank parameters; its `num_pes`/`num_channels`
    /// define the PE and channel counts of the whole system.
    pub moms: MomsSystemConfig,
    /// DRAM channel timing.
    pub dram: DramConfig,
    /// Interval sizes `(Ns, Nd)`; `Nd` also sizes the PE destination BRAM.
    pub intervals: (u32, u32),
    /// Which cache arrays stay enabled.
    pub caches: CacheVariant,
    /// Synchronous/asynchronous iteration control.
    pub execution: ExecutionMode,
    /// Iteration cap override.
    pub max_iterations: Option<u32>,
    /// Per-PE microarchitecture template; `bram_nodes` is overridden with
    /// `Nd` by [`build`](RunConfig::build).
    pub pe: PeConfig,
    /// MOMS request-trace capacity (0 = no trace).
    pub moms_trace_cap: usize,
    /// Fault-injection profile for DRAM completions (default: none).
    pub fault: FaultConfig,
    /// No-progress watchdog threshold; `None` disables the watchdog.
    pub watchdog_cycles: Option<Cycle>,
    /// Event/counter tracing configuration (default: off).
    pub trace: TraceConfig,
    /// Fast-forward provably idle stretches of the simulation (host-side
    /// speed only; results are bit-identical either way).
    pub idle_skip: bool,
    /// Number of fabric devices; `1` means the plain single-`System` path.
    /// Consumed by [`Fabric::new`](crate::fabric::Fabric::new), ignored by
    /// [`build`](RunConfig::build).
    pub devices: usize,
    /// Inter-accelerator link network parameters (only meaningful when
    /// `devices > 1`).
    pub link: LinkConfig,
    /// Checkpoint/rollback recovery policy for fabric runs; `None`
    /// (default) surfaces watchdog trips as [`crate::FabricError`]s.
    pub recovery: Option<RecoveryConfig>,
    /// Host worker threads for the fabric compute phase: `0` (default)
    /// auto-sizes to `min(devices, cores)`, `1` forces the sequential
    /// path. Results are byte-identical for every value — this knob only
    /// changes host wall-clock time. Ignored by
    /// [`build`](RunConfig::build) (single-device runs are always
    /// single-threaded).
    pub sim_threads: usize,
}

impl RunConfig {
    /// A run configuration with default DRAM timing, full caches,
    /// algorithm-default execution, and no iteration cap.
    pub fn new(moms: MomsSystemConfig, intervals: (u32, u32)) -> Self {
        RunConfig {
            moms,
            dram: DramConfig::default(),
            intervals,
            caches: CacheVariant::Full,
            execution: ExecutionMode::AlgorithmDefault,
            max_iterations: None,
            pe: PeConfig::default(),
            moms_trace_cap: 0,
            fault: FaultConfig::none(),
            watchdog_cycles: Some(DEFAULT_WATCHDOG_CYCLES),
            trace: TraceConfig::default(),
            idle_skip: true,
            devices: 1,
            link: LinkConfig::default(),
            recovery: None,
            sim_threads: 0,
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.moms.num_pes
    }

    /// Number of DRAM channels.
    pub fn num_channels(&self) -> usize {
        self.moms.num_channels
    }

    /// Lowers into the `(SystemConfig, Partitioner)` pair that
    /// [`System::new`](crate::System::new) consumes.
    ///
    /// Applies the [`CacheVariant`], sizes PE BRAM to the destination
    /// interval, and validates the result.
    ///
    /// # Panics
    ///
    /// Panics if any nested configuration is inconsistent or an interval
    /// size is zero.
    pub fn build(&self) -> (SystemConfig, Partitioner) {
        let (ns, nd) = self.intervals;
        assert!(ns > 0 && nd > 0, "interval sizes must be nonzero");
        let mut moms = self.moms.clone();
        match self.caches {
            CacheVariant::Full => {}
            CacheVariant::NoPrivate => moms.private = moms.private.without_cache(),
            CacheVariant::NoShared => moms.shared = moms.shared.without_cache(),
            CacheVariant::None => {
                moms.private = moms.private.without_cache();
                moms.shared = moms.shared.without_cache();
            }
        }
        let cfg = SystemConfig {
            dram: self.dram.clone(),
            moms,
            pe: PeConfig {
                bram_nodes: nd,
                ..self.pe.clone()
            },
            max_iterations: self.max_iterations,
            execution: self.execution,
            moms_trace_cap: self.moms_trace_cap,
            fault: self.fault,
            watchdog_cycles: self.watchdog_cycles,
            trace: self.trace,
            idle_skip: self.idle_skip,
        };
        cfg.validate();
        (cfg, Partitioner::new(ns, nd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moms::{MomsConfig, Topology};

    fn small_moms() -> MomsSystemConfig {
        MomsSystemConfig {
            topology: Topology::TwoLevel,
            num_pes: 2,
            num_channels: 2,
            shared_banks: 4,
            shared: MomsConfig::paper_shared_bank().scaled(1, 32),
            private: MomsConfig::paper_private_bank(true).scaled(1, 32),
            pe_slr: moms::system::default_pe_slrs(2),
            channel_slr: moms::system::default_channel_slrs(2),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        }
    }

    #[test]
    fn build_sizes_pe_bram_to_nd() {
        let rc = RunConfig::new(small_moms(), (512, 256));
        let (cfg, p) = rc.build();
        assert_eq!(cfg.pe.bram_nodes, 256);
        assert_eq!(p.ns(), 512);
        assert_eq!(p.nd(), 256);
    }

    #[test]
    fn cache_variants_strip_the_right_arrays() {
        let mut rc = RunConfig::new(small_moms(), (512, 256));
        rc.caches = CacheVariant::NoPrivate;
        let (cfg, _) = rc.build();
        assert!(cfg.moms.private.cache.is_none());
        assert!(cfg.moms.shared.cache.is_some());

        rc.caches = CacheVariant::NoShared;
        let (cfg, _) = rc.build();
        assert!(cfg.moms.private.cache.is_some());
        assert!(cfg.moms.shared.cache.is_none());

        rc.caches = CacheVariant::None;
        let (cfg, _) = rc.build();
        assert!(cfg.moms.private.cache.is_none());
        assert!(cfg.moms.shared.cache.is_none());
    }

    #[test]
    fn builder_settings_flow_through() {
        let mut rc = RunConfig::new(small_moms(), (512, 256));
        rc.max_iterations = Some(3);
        rc.execution = ExecutionMode::ForceSynchronous;
        rc.moms_trace_cap = 64;
        let (cfg, _) = rc.build();
        assert_eq!(cfg.max_iterations, Some(3));
        assert_eq!(cfg.execution, ExecutionMode::ForceSynchronous);
        assert_eq!(cfg.moms_trace_cap, 64);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_rejected() {
        RunConfig::new(small_moms(), (0, 256)).build();
    }
}
