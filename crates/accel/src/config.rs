//! PE and system configuration.

use dram::DramConfig;
use moms::{MomsConfig, MomsSystemConfig, Topology};
use simkit::{Cycle, FaultConfig, TraceConfig};

/// Default no-progress watchdog threshold in cycles: far above any real
/// quiet stretch (DRAM round trips are hundreds of cycles) yet cheap to
/// reach when something genuinely wedges.
pub const DEFAULT_WATCHDOG_CYCLES: Cycle = 2_000_000;

/// Microarchitectural parameters of one processing element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeConfig {
    /// Maximum destination nodes held in on-chip memory (the paper: 32,768
    /// per PE in URAM).
    pub bram_nodes: u32,
    /// Edge queue capacity in 32-bit words (the paper's DMA queue is
    /// 64 × 512 bits = 1,024 words).
    pub edge_queue_words: usize,
    /// Maximum outstanding edge bursts (tagged, may complete out of
    /// order).
    pub edge_tags: usize,
    /// Nodes initialised per cycle once data is available (§IV-C: "we
    /// write four node values per cycle").
    pub init_rate: u32,
    /// Nodes applied/written back per cycle.
    pub writeback_rate: u32,
    /// Free-ID queue / state-memory slots for the weighted-graph MOMS
    /// interface (the paper: 8,192 for SSSP).
    pub id_slots: usize,
    /// Maximum lines per DMA burst (32 beats of 64 B).
    pub max_burst_lines: u32,
}

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig {
            bram_nodes: 32768,
            edge_queue_words: 1024,
            edge_tags: 4,
            init_rate: 4,
            writeback_rate: 4,
            id_slots: 8192,
            max_burst_lines: 32,
        }
    }
}

impl PeConfig {
    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized resources.
    pub fn validate(&self) {
        assert!(self.bram_nodes > 0, "PE needs destination storage");
        assert!(self.edge_queue_words >= 64, "edge queue too small");
        assert!(self.edge_tags > 0, "at least one edge burst tag");
        assert!(self.init_rate > 0 && self.writeback_rate > 0);
        assert!(self.id_slots > 0, "weighted interface needs IDs");
        assert!(
            (1..=32).contains(&self.max_burst_lines),
            "bursts are 1..=32 beats"
        );
    }
}

/// How Template 1 iterations exchange node values (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Follow the algorithm's Table I setting (synchronous PageRank,
    /// asynchronous SCC/SSSP).
    #[default]
    AlgorithmDefault,
    /// Force double-buffered synchronous execution: reads see the previous
    /// iteration's values and `use_local_src` is disabled. For the
    /// monotone algorithms this reaches the same fixpoint in more
    /// iterations — the trade-off ForeGraph/FabGraph are locked into.
    ForceSynchronous,
}

impl ExecutionMode {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::AlgorithmDefault => "default",
            ExecutionMode::ForceSynchronous => "sync",
        }
    }
}

/// Configuration of the full accelerator.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM channel timing.
    pub dram: DramConfig,
    /// MOMS topology and bank parameters; its `num_pes`/`num_channels`
    /// define the system's PE and channel counts.
    pub moms: MomsSystemConfig,
    /// Per-PE microarchitecture.
    pub pe: PeConfig,
    /// Overrides the algorithm's iteration bound when set (useful in
    /// tests).
    pub max_iterations: Option<u32>,
    /// Synchronous/asynchronous iteration control.
    pub execution: ExecutionMode,
    /// When nonzero, record up to this many accepted MOMS requests as a
    /// `(pe, line)` trace, returned in [`crate::RunResult::moms_trace`]
    /// for replay via `moms::harness::TraceRun::execute_tagged`.
    pub moms_trace_cap: usize,
    /// Fault-injection profile applied to DRAM completions (default: no
    /// faults, injector fully bypassed).
    pub fault: FaultConfig,
    /// No-progress watchdog threshold; `None` disables the watchdog.
    pub watchdog_cycles: Option<Cycle>,
    /// Observability layer: event/counter tracing (default: off, every
    /// hook is a dead branch).
    pub trace: TraceConfig,
    /// Fast-forward over cycles in which no component can make progress
    /// (host-side optimisation only — simulated cycles, statistics, and
    /// traces are bit-identical either way; `tests/determinism.rs` holds
    /// that line). Disable to force one host loop iteration per cycle.
    pub idle_skip: bool,
}

impl SystemConfig {
    /// A small configuration for unit tests and examples: 2 PEs, 2
    /// channels, a two-level MOMS with scaled-down banks.
    pub fn small() -> Self {
        let shared = MomsConfig::paper_shared_bank().scaled(1, 32);
        let private = MomsConfig::paper_private_bank(false).scaled(1, 32);
        SystemConfig {
            dram: DramConfig::default(),
            moms: MomsSystemConfig {
                topology: Topology::TwoLevel,
                num_pes: 2,
                num_channels: 2,
                shared_banks: 4,
                shared,
                private,
                pe_slr: moms::system::default_pe_slrs(2),
                channel_slr: moms::system::default_channel_slrs(2),
                crossing_latency: 4,
                base_net_latency: 2,
                resp_link_cycles_per_line: 8,
            },
            pe: PeConfig {
                bram_nodes: 1024,
                ..PeConfig::default()
            },
            max_iterations: None,
            execution: ExecutionMode::AlgorithmDefault,
            moms_trace_cap: 0,
            fault: FaultConfig::none(),
            watchdog_cycles: Some(DEFAULT_WATCHDOG_CYCLES),
            trace: TraceConfig::default(),
            idle_skip: true,
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.moms.num_pes
    }

    /// Number of DRAM channels.
    pub fn num_channels(&self) -> usize {
        self.moms.num_channels
    }

    /// Validates all nested configurations.
    ///
    /// # Panics
    ///
    /// Panics when any sub-configuration is inconsistent.
    pub fn validate(&self) {
        self.pe.validate();
        self.moms.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PeConfig::default().validate();
        SystemConfig::small().validate();
    }

    #[test]
    fn small_config_is_two_by_two() {
        let c = SystemConfig::small();
        assert_eq!(c.num_pes(), 2);
        assert_eq!(c.num_channels(), 2);
    }

    #[test]
    #[should_panic(expected = "bursts")]
    fn oversized_burst_rejected() {
        let c = PeConfig {
            max_burst_lines: 64,
            ..PeConfig::default()
        };
        c.validate();
    }
}
