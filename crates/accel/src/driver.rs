//! High-level driver: a builder that hides partitioning and configuration
//! defaults for downstream users who just want to run an algorithm on a
//! graph and read results.
//!
//! # Example
//!
//! ```
//! use accel::driver::Driver;
//! use algos::{golden, Algorithm};
//! use graph::GraphSpec;
//!
//! let g = GraphSpec::rmat(8, 4).build(5);
//! let report = Driver::new()
//!     .pes(4)
//!     .channels(2)
//!     .run(&g, Algorithm::bfs(0));
//! assert_eq!(report.values, golden::run(&Algorithm::bfs(0), &g));
//! assert!(report.gteps_at(200.0) > 0.0);
//! ```

use algos::Algorithm;
use graph::CooGraph;
use moms::{MomsConfig, MomsSystemConfig, Topology};

use crate::checkpoint::RecoveryConfig;
use crate::config::ExecutionMode;
use crate::fabric::{Fabric, FabricRunResult, LinkConfig, LinkTopology};
use crate::run_config::{CacheVariant, RunConfig};
use crate::system::{RunResult, System};
use simkit::Cycle;

/// Builder for one-shot accelerator runs with sensible defaults.
///
/// Defaults: two-level MOMS, 4 PEs, 2 channels, automatically sized
/// intervals (destination intervals chosen so jobs outnumber PEs ~16×),
/// paper-ratio bank capacities, one device (no fabric).
#[derive(Debug, Clone)]
pub struct Driver {
    pes: usize,
    channels: usize,
    topology: Topology,
    execution: ExecutionMode,
    max_iterations: Option<u32>,
    nd_override: Option<u32>,
    cacheless: bool,
    devices: usize,
    link: LinkConfig,
    recovery: Option<RecoveryConfig>,
    sim_threads: usize,
}

impl Default for Driver {
    fn default() -> Self {
        Driver::new()
    }
}

impl Driver {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Driver {
            pes: 4,
            channels: 2,
            topology: Topology::TwoLevel,
            execution: ExecutionMode::AlgorithmDefault,
            max_iterations: None,
            nd_override: None,
            cacheless: false,
            devices: 1,
            link: LinkConfig::default(),
            recovery: None,
            sim_threads: 0,
        }
    }

    /// Number of processing elements.
    pub fn pes(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one PE");
        self.pes = n;
        self
    }

    /// Number of DRAM channels.
    pub fn channels(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one channel");
        self.channels = n;
        self
    }

    /// MOMS organisation (default: two-level).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Synchronous/asynchronous control (default: per algorithm).
    pub fn execution(mut self, e: ExecutionMode) -> Self {
        self.execution = e;
        self
    }

    /// Caps the iteration count.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Overrides the automatic destination-interval size.
    ///
    /// # Panics
    ///
    /// Panics if `nd` is zero or exceeds the 15-bit offset limit.
    pub fn destination_interval(mut self, nd: u32) -> Self {
        assert!(nd > 0 && nd <= graph::partition::MAX_ND, "Nd out of range");
        self.nd_override = Some(nd);
        self
    }

    /// Removes the cache arrays (MSHRs and subentries only).
    pub fn cacheless(mut self) -> Self {
        self.cacheless = true;
        self
    }

    /// Number of fabric devices (default 1: plain single-`System` run).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn devices(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one device");
        self.devices = n;
        self
    }

    /// Replaces the whole inter-accelerator link configuration.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Link wiring between devices (default: all-to-all).
    pub fn link_topology(mut self, t: LinkTopology) -> Self {
        self.link.topology = t;
        self
    }

    /// Per-link serialization bandwidth in words/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero.
    pub fn link_bandwidth(mut self, w: u32) -> Self {
        assert!(w > 0, "link bandwidth must be nonzero");
        self.link.bandwidth_words_per_cycle = w;
        self
    }

    /// Per-hop link flight latency in cycles.
    pub fn link_latency(mut self, c: u64) -> Self {
        self.link.latency = c;
        self
    }

    /// Initial retransmission timeout of the reliable link transport in
    /// cycles (floored internally at a few round-trips of the configured
    /// link to avoid spurious retransmits on slow-but-lossless links).
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero.
    pub fn link_retry(mut self, rto: Cycle) -> Self {
        assert!(rto > 0, "link rto must be nonzero");
        self.link.retry.rto = rto;
        self.link.retry.rto_cap = self.link.retry.rto_cap.max(rto);
        self
    }

    /// Replaces the whole checkpoint/rollback recovery policy.
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Enables checkpoint/rollback recovery with a snapshot every
    /// `barriers` barriers (0 disables recovery again).
    pub fn checkpoint_interval(mut self, barriers: u32) -> Self {
        if barriers == 0 {
            self.recovery = None;
        } else {
            let mut cfg = self.recovery.unwrap_or_default();
            cfg.checkpoint_interval = barriers;
            self.recovery = Some(cfg);
        }
        self
    }

    /// Host worker threads for the fabric compute phase (default 0 =
    /// auto: `min(devices, cores)`; 1 forces the sequential path).
    /// Results are byte-identical for every value — only host wall-clock
    /// time changes.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n;
        self
    }

    /// Destination interval size chosen for `n` nodes: jobs ≈ 16× PEs,
    /// clamped to a sane power-of-two range.
    fn auto_nd(&self, n: u32) -> u32 {
        if let Some(nd) = self.nd_override {
            return nd;
        }
        let target_jobs = (self.pes as u32).max(1) * 16;
        let raw = (n / target_jobs).max(64);
        // Round down to a power of two, cap at the paper's 32,768.
        let mut nd = 64;
        while nd * 2 <= raw && nd * 2 <= 32_768 {
            nd *= 2;
        }
        nd
    }

    /// Lowers this driver's settings for `g` into the shared
    /// [`RunConfig`] path.
    pub fn run_config(&self, g: &CooGraph) -> RunConfig {
        let nd = self.auto_nd(g.num_nodes());
        let ns = (nd * 2).min(graph::partition::MAX_NS);
        let mut rc = RunConfig::new(
            MomsSystemConfig {
                topology: self.topology,
                num_pes: self.pes,
                num_channels: self.channels,
                shared_banks: 4 * self.channels,
                shared: MomsConfig::paper_shared_bank().scaled(1, 16),
                private: MomsConfig::paper_private_bank(false).scaled(1, 16),
                pe_slr: moms::system::default_pe_slrs(self.pes),
                channel_slr: moms::system::default_channel_slrs(self.channels),
                crossing_latency: 4,
                base_net_latency: 2,
                resp_link_cycles_per_line: 8,
            },
            (ns, nd),
        );
        if self.cacheless {
            rc.caches = CacheVariant::None;
        }
        rc.execution = self.execution;
        rc.max_iterations = self.max_iterations;
        rc.devices = self.devices;
        rc.link = self.link;
        rc.recovery = self.recovery;
        rc.sim_threads = self.sim_threads;
        rc
    }

    /// Runs `algo` on `g` on one device and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if a weighted algorithm is run on an unweighted graph, the
    /// graph's intervals exceed hardware limits, or more than one device
    /// was configured (use [`run_fabric`](Self::run_fabric) for
    /// multi-device runs).
    pub fn run(&self, g: &CooGraph, algo: Algorithm) -> RunResult {
        assert_eq!(
            self.devices, 1,
            "Driver::run is the single-device path; use Driver::run_fabric \
             for a {}-device fabric",
            self.devices
        );
        let (cfg, partitioner) = self.run_config(g).build();
        System::new(g, partitioner, algo, cfg).run()
    }

    /// Runs `algo` on `g` across the configured fabric (any device count,
    /// including 1) and returns the fabric result.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run), or if a
    /// device or the link exchange stalls.
    pub fn run_fabric(&self, g: &CooGraph, algo: Algorithm) -> FabricRunResult {
        Fabric::new(g, algo, &self.run_config(g)).run()
    }
}

/// Convenience re-export so `RunResult::gteps` reads naturally from the
/// driver docs.
impl RunResult {
    /// Alias of [`RunResult::gteps`] for driver users.
    pub fn gteps_at(&self, freq_mhz: f64) -> f64 {
        self.gteps(freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algos::golden;
    use graph::GraphSpec;

    #[test]
    fn defaults_run_and_match_golden() {
        let g = GraphSpec::rmat(9, 4).build(91);
        let r = Driver::new().run(&g, Algorithm::Scc);
        assert_eq!(r.values, golden::run(&Algorithm::Scc, &g));
    }

    #[test]
    fn auto_nd_keeps_jobs_numerous() {
        let d = Driver::new().pes(4);
        let nd = d.auto_nd(100_000);
        let jobs = 100_000 / nd;
        assert!(jobs >= 32, "only {jobs} jobs for 4 PEs (nd = {nd})");
        assert!(nd.is_power_of_two());
    }

    #[test]
    fn nd_override_is_respected() {
        let g = GraphSpec::rmat(8, 4).build(93);
        let (cfg, p) = Driver::new()
            .destination_interval(128)
            .run_config(&g)
            .build();
        assert_eq!(p.nd(), 128);
        assert_eq!(cfg.pe.bram_nodes, 128);
    }

    #[test]
    fn cacheless_builder_strips_arrays() {
        let g = GraphSpec::rmat(8, 4).build(95);
        let (cfg, _) = Driver::new().cacheless().run_config(&g).build();
        assert!(cfg.moms.shared.cache.is_none());
        assert!(cfg.moms.private.cache.is_none());
    }

    #[test]
    fn topology_and_execution_flow_through() {
        let g = GraphSpec::rmat(8, 4).build(97);
        let r = Driver::new()
            .topology(Topology::Private)
            .execution(ExecutionMode::ForceSynchronous)
            .run(&g, Algorithm::bfs(0));
        assert_eq!(r.values, golden::run(&Algorithm::bfs(0), &g));
    }
}
