//! Top-level accelerator (Fig. 6): scheduler, PEs, MOMS, DRAM, and the
//! Template 1 iteration loop.

use std::collections::VecDeque;
use std::time::Instant;

use simkit::stats::TimeBuckets;
use simkit::trace::{
    merge_events, CounterSeries, EventKind, TraceEvent, TraceReport, Tracer, Track,
};
use simkit::watchdog::{DiagnosticSection, DiagnosticSnapshot};
use simkit::{Cycle, FaultInjector, Stats, Watchdog};

use algos::Algorithm;
use dram::{DramChannelSnapshot, DramRequest, DramResponse, MemImage, MemorySystem};
use graph::layout::{LayoutBuilder, LayoutInit};
use graph::{CooGraph, GraphImage, Partitioner};
use moms::{MomsSnapshot, MomsSystem};

use crate::config::{ExecutionMode, SystemConfig};
use crate::pe::{Job, Pe, PeCycleBreakdown};

/// Events shown in the watchdog snapshot's `trace-tail` section.
const TRACE_TAIL_EVENTS: usize = 32;

/// Periodic occupancy sampling into time-bucketed series (active at any
/// trace level above `Off`). Sampling only *reads* component state via
/// non-perturbing accessors, so it cannot change simulation outcomes.
#[derive(Debug)]
struct OccupancySampler {
    period: Cycle,
    mshr: TimeBuckets,
    subentries: TimeBuckets,
    dram_pending: TimeBuckets,
    jobs_queued: TimeBuckets,
}

impl OccupancySampler {
    fn new(period: Cycle) -> Self {
        OccupancySampler {
            period,
            mshr: TimeBuckets::new(period),
            subentries: TimeBuckets::new(period),
            dram_pending: TimeBuckets::new(period),
            jobs_queued: TimeBuckets::new(period),
        }
    }

    fn series(&self) -> Vec<CounterSeries> {
        let mk = |name: &str, b: &TimeBuckets| CounterSeries {
            name: name.to_owned(),
            bucket_cycles: b.bucket_cycles(),
            points: b.points(),
        };
        vec![
            mk("mshr_occupancy", &self.mshr),
            mk("subentry_slots_used", &self.subentries),
            mk("dram_pending", &self.dram_pending),
            mk("sched_jobs_queued", &self.jobs_queued),
        ]
    }
}

/// Dynamic job scheduler: exposes one job per destination interval and
/// lets idle PEs pull them (§IV-E), tracking `active_srcs` across
/// iterations.
#[derive(Debug)]
pub struct Scheduler {
    queue: VecDeque<usize>,
    jobs_outstanding: usize,
    /// Per-source-interval activity for the *next* iteration.
    active_srcs_next: Vec<bool>,
    /// Any destination updated this iteration (Template 1 `continue`).
    any_update: bool,
}

impl Scheduler {
    fn new(qs: usize) -> Self {
        Scheduler {
            queue: VecDeque::new(),
            jobs_outstanding: 0,
            active_srcs_next: vec![false; qs],
            any_update: false,
        }
    }

    fn begin_iteration(&mut self, jobs: impl IntoIterator<Item = usize>) {
        debug_assert_eq!(self.jobs_outstanding, 0);
        self.queue = jobs.into_iter().collect();
        for f in self.active_srcs_next.iter_mut() {
            *f = false;
        }
        self.any_update = false;
    }

    fn pull(&mut self) -> Option<usize> {
        let d = self.queue.pop_front()?;
        self.jobs_outstanding += 1;
        Some(d)
    }

    fn complete(&mut self, d: usize, updated: bool, nd: u32, ns: u32, num_nodes: u32) {
        self.jobs_outstanding -= 1;
        if updated {
            self.any_update = true;
            // Mark every source interval overlapping destination interval
            // `d` (its nodes will serve as sources next iteration).
            let lo = d as u32 * nd;
            let hi = (lo + nd).min(num_nodes);
            let s_lo = (lo / ns) as usize;
            let s_hi = ((hi - 1) / ns) as usize;
            for s in s_lo..=s_hi.min(self.active_srcs_next.len() - 1) {
                self.active_srcs_next[s] = true;
            }
        }
    }

    fn iteration_done(&self) -> bool {
        self.queue.is_empty() && self.jobs_outstanding == 0
    }
}

/// Stall and utilisation breakdown summed over every PE (§V-B's "what
/// throttles each algorithm" analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeStallBreakdown {
    /// Cycles with at least one gather retiring.
    pub busy_cycles: u64,
    /// Gather-pipeline stalls on read-after-write hazards (PageRank's
    /// floating-point accumulate).
    pub raw_stalls: u64,
    /// Cycles the weighted-graph interface starved for free IDs.
    pub id_starved: u64,
    /// Requests refused by a full MOMS input port.
    pub moms_backpressure: u64,
}

/// Structured metrics of one run: the MOMS, DRAM, and PE counters that
/// experiments export, gathered once at the end of [`System::run`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// MOMS occupancy peaks and cache counters across every bank.
    pub moms: MomsSnapshot,
    /// Per-channel DRAM counters, in channel order.
    pub dram: Vec<DramChannelSnapshot>,
    /// Stall breakdown summed over PEs.
    pub pe: PeStallBreakdown,
    /// Exhaustive per-cycle attribution summed over PEs; every PE-cycle
    /// of the run lands in exactly one class (`repro explain` renders
    /// this).
    pub pe_cycles: PeCycleBreakdown,
}

impl MetricsSnapshot {
    /// All-channel DRAM counters summed.
    pub fn dram_total(&self) -> DramChannelSnapshot {
        let mut total = DramChannelSnapshot::default();
        for ch in &self.dram {
            total.accumulate(ch);
        }
        total
    }

    /// Achieved DRAM bandwidth per channel in GB/s over `cycles` at
    /// `freq_mhz`.
    pub fn dram_bandwidth_gbs(&self, cycles: Cycle, freq_mhz: f64) -> Vec<f64> {
        self.dram
            .iter()
            .map(|ch| ch.bandwidth_gbs(cycles, freq_mhz))
            .collect()
    }
}

/// Result of a full run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total simulated clock cycles.
    pub cycles: Cycle,
    /// Host loop iterations actually executed. Equal to `cycles` minus
    /// the cycles fast-forwarded by idle skipping; the gap between the
    /// two is pure host-side work saved with zero simulated effect.
    pub host_ticks: u64,
    /// Iterations executed.
    pub iterations: u32,
    /// Edges processed (gathers retired), summed over iterations.
    pub edges_processed: u64,
    /// Final per-node values (after [`Algorithm::finalize`]).
    pub values: Vec<u32>,
    /// Merged statistics from PEs, MOMS, and DRAM.
    pub stats: Stats,
    /// Combined cache hit rate over both MOMS levels.
    pub cache_hit_rate: f64,
    /// Recorded `(pe, line)` MOMS requests (empty unless
    /// [`crate::SystemConfig::moms_trace_cap`] was set).
    pub moms_trace: Vec<(u16, u64)>,
    /// Structured MOMS/DRAM/PE metrics gathered at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Merged event stream and occupancy series (empty unless
    /// [`crate::SystemConfig::trace`] enabled a level above `Off`).
    pub trace: TraceReport,
}

impl RunResult {
    /// Throughput in edges per cycle.
    pub fn edges_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 / self.cycles as f64
        }
    }

    /// Throughput in GTEPS at the given clock frequency.
    pub fn gteps(&self, freq_mhz: f64) -> f64 {
        self.edges_per_cycle() * freq_mhz / 1000.0
    }
}

/// Why a run terminated without producing a [`RunResult`].
#[derive(Debug)]
pub enum RunError {
    /// The host wall-clock deadline expired mid-run. The partially
    /// simulated state is inconsistent; drop the `System`.
    TimedOut,
    /// The no-progress watchdog tripped: no request retired for the
    /// configured threshold. The snapshot captures every component's
    /// queue state at detection time.
    Stalled(Box<DiagnosticSnapshot>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::TimedOut => write!(f, "wall-clock deadline expired"),
            RunError::Stalled(snap) => write!(f, "{snap}"),
        }
    }
}

impl std::error::Error for RunError {}

/// PE-owned DRAM id namespace: bit 63 clear, PE index in bits 62..48.
fn encode_pe_id(pe: usize, tag: u64) -> u64 {
    debug_assert!(tag < 1 << 48);
    (pe as u64) << 48 | tag
}

fn decode_pe_id(id: u64) -> (usize, u64) {
    ((id >> 48) as usize, id & ((1 << 48) - 1))
}

/// The full accelerator, ready to [`run`](Self::run) one algorithm on one
/// graph.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    algo: Algorithm,
    graph_nodes: u32,
    gi: GraphImage,
    img: MemImage,
    mem: MemorySystem,
    moms: MomsSystem,
    pes: Vec<Pe>,
    sched: Scheduler,
    /// Source graph retained for `finalize()` (out-degrees).
    graph: CooGraph,
    /// Per-PE DRAM segments awaiting channel space.
    seg_q: Vec<VecDeque<DramRequest>>,
    /// Destination intervals scheduled by the last
    /// [`begin_iteration`](Self::begin_iteration), consumed by the
    /// synchronous inter-iteration host work.
    last_jobs: Vec<usize>,
    /// Remaining segments per outstanding `(tag, count)` logical burst,
    /// per PE. Only a handful of bursts are ever in flight per PE
    /// (bounded by `edge_tags` plus init/pointer/write bursts), so a
    /// linear scan beats hashing and the vectors never reallocate after
    /// warmup.
    burst_segments: Vec<Vec<(u64, u32)>>,
    /// Fault injector on the DRAM-completion path (bypassed entirely when
    /// the profile is `None`).
    fault: FaultInjector<DramResponse>,
    /// No-progress watchdog (`None` when disabled by configuration).
    watchdog: Option<Watchdog>,
    /// Scheduler-track event tracer (disabled unless events are on).
    tracer: Tracer,
    /// Occupancy sampler (`None` when tracing is off).
    sampler: Option<OccupancySampler>,
    /// Simulation loop iterations executed (cycles minus skipped gaps).
    host_ticks: u64,
    now: Cycle,
}

/// The fabric runs device shards on worker threads between barriers
/// (`simkit::epoch::run_epoch` over `&mut [System]`), which requires
/// `System: Send`. This guard fails to compile if a non-`Send` member
/// (an `Rc`, a raw pointer, a thread-local handle) ever sneaks in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<System>();
};

impl System {
    /// Partitions `g`, lays it out in memory, and builds the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the destination interval
    /// exceeds PE BRAM, or the weighted flags of graph and algorithm
    /// disagree in an unsupported way.
    pub fn new(g: &CooGraph, partitioner: Partitioner, algo: Algorithm, cfg: SystemConfig) -> Self {
        Self::new_sharded(g, g, partitioner, algo, cfg)
    }

    /// Builds one device of a multi-accelerator fabric: the edge shards
    /// come from `local` (the edges this device owns), while node-level
    /// metadata — initial values, constants, out-degrees for `finalize` —
    /// comes from `full`, so per-node arithmetic matches the single-device
    /// run bit for bit. `local` must span the same node-id space as
    /// `full`; [`new`](Self::new) is the `local == full` special case.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new), or if the
    /// node counts of `full` and `local` disagree.
    pub fn new_sharded(
        full: &CooGraph,
        local: &CooGraph,
        partitioner: Partitioner,
        algo: Algorithm,
        cfg: SystemConfig,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            full.num_nodes(),
            local.num_nodes(),
            "device subgraph must span the full node-id space"
        );
        assert!(
            partitioner.nd() <= cfg.pe.bram_nodes,
            "destination interval exceeds PE BRAM"
        );
        let g = full;
        if algo.is_weighted() {
            assert!(
                g.is_weighted(),
                "weighted algorithm requires a weighted graph"
            );
        }
        let parts = partitioner.partition(local);
        let force_sync = matches!(cfg.execution, ExecutionMode::ForceSynchronous);
        let init = LayoutInit {
            vin: algo.initial_vin(g),
            vconst: algo.vconst(g),
            synchronous: algo.synchronous() || force_sync,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        let mut mem = MemorySystem::new(cfg.dram.clone(), cfg.num_channels());
        let mut moms = MomsSystem::new(cfg.moms.clone());
        if cfg.moms_trace_cap > 0 {
            moms.enable_trace(cfg.moms_trace_cap);
        }
        let mut pes: Vec<Pe> = (0..cfg.num_pes())
            .map(|_| Pe::new(cfg.pe.clone()))
            .collect();
        let mut sampler = None;
        if cfg.trace.is_active() {
            moms.enable_event_tracing(&cfg.trace);
            mem.enable_event_tracing(&cfg.trace);
            for (i, pe) in pes.iter_mut().enumerate() {
                pe.set_tracer(Tracer::for_track(Track::pe(i), &cfg.trace));
            }
            sampler = Some(OccupancySampler::new(cfg.trace.sample_period.max(1)));
        }
        let tracer = Tracer::for_track(Track::scheduler(), &cfg.trace);
        let sched = Scheduler::new(gi.qs());
        System {
            seg_q: vec![VecDeque::new(); cfg.num_pes()],
            last_jobs: Vec::new(),
            burst_segments: (0..cfg.num_pes()).map(|_| Vec::with_capacity(8)).collect(),
            fault: FaultInjector::new(cfg.fault),
            watchdog: cfg.watchdog_cycles.map(Watchdog::new),
            graph_nodes: g.num_nodes(),
            algo,
            gi,
            img,
            mem,
            moms,
            pes,
            sched,
            graph: g.clone(),
            tracer,
            sampler,
            host_ticks: 0,
            now: 0,
            cfg,
        }
    }

    fn make_job(&self, d: usize) -> Job {
        let d_base = d as u32 * self.gi.nd();
        let d_len = self.gi.nd().min(self.graph_nodes - d_base);
        Job {
            d,
            d_base,
            d_len,
            vin_base: self.gi.node_in_addr(0),
            vconst_base: self.gi.has_const().then(|| self.gi.node_const_addr(0)),
            vout_base: self.gi.node_out_addr(0),
            ptr_base: self.gi.edge_ptr_addr(d, 0),
            qs: self.gi.qs(),
            ns: self.gi.ns(),
            weighted: self.gi.is_weighted(),
            use_local_src: self.algo.use_local_src() && !self.gi.is_synchronous(),
            algo: self.algo,
            num_nodes: self.graph_nodes,
        }
    }

    /// Destination intervals that have at least one active, nonempty
    /// incoming shard under the current active flags.
    fn active_jobs(&self, active_srcs: &[bool]) -> Vec<usize> {
        (0..self.gi.qd())
            .filter(|&d| {
                (0..self.gi.qs()).any(|s| {
                    active_srcs[s] && {
                        let p = self.gi.edge_ptr(&self.img, d, s);
                        p.edge_count() > 0
                    }
                })
            })
            .collect()
    }

    /// Runs Template 1 to completion and returns the result.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`DiagnosticSnapshot`] if the no-progress
    /// watchdog trips; use [`run_to_outcome`](Self::run_to_outcome) to
    /// handle a stall programmatically.
    pub fn run(&mut self) -> RunResult {
        match self.run_to_outcome(None) {
            Ok(r) => r,
            Err(RunError::TimedOut) => unreachable!("run without a deadline cannot time out"),
            Err(RunError::Stalled(snap)) => panic!("{snap}"),
        }
    }

    /// Runs Template 1 to completion, giving up when the host wall clock
    /// passes `deadline`.
    ///
    /// Returns `None` on timeout. The check is cooperative — the simulation
    /// loop polls the clock every few tens of thousands of cycles — so no
    /// watchdog threads are involved and a timed-out `System` is simply
    /// dropped. After a timeout the partially simulated state is
    /// inconsistent; do not call `run` again on the same instance.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`DiagnosticSnapshot`] if the no-progress
    /// watchdog trips.
    pub fn run_with_deadline(&mut self, deadline: Option<Instant>) -> Option<RunResult> {
        match self.run_to_outcome(deadline) {
            Ok(r) => Some(r),
            Err(RunError::TimedOut) => None,
            Err(RunError::Stalled(snap)) => panic!("{snap}"),
        }
    }

    /// Runs Template 1 to completion, reporting timeouts and watchdog
    /// stalls as structured [`RunError`]s instead of panicking.
    ///
    /// After any `Err` the partially simulated state is inconsistent; do
    /// not run the same instance again.
    ///
    /// # Errors
    ///
    /// [`RunError::TimedOut`] when the host wall clock passes `deadline`;
    /// [`RunError::Stalled`] when no request retires for the configured
    /// watchdog threshold.
    pub fn run_to_outcome(&mut self, deadline: Option<Instant>) -> Result<RunResult, RunError> {
        let max_iter = self.resolved_max_iterations();
        let mut active_srcs = vec![true; self.gi.qs()];
        let mut iterations = 0u32;
        let mut edges_total = 0u64;

        while iterations < max_iter {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(RunError::TimedOut);
                }
            }
            if self.begin_iteration(iterations, &active_srcs) == 0 {
                break;
            }
            edges_total += self.step_iteration(iterations, deadline)?;
            iterations += 1;

            if !self.continues() {
                break;
            }
            active_srcs = self.next_active_srcs();
            if self.gi.is_synchronous() && iterations < max_iter {
                self.advance_synchronous_frontier();
            }
        }

        Ok(self.finish(iterations, edges_total))
    }

    /// The iteration cap this run resolves to: the configured override, or
    /// the algorithm's bound for this graph.
    pub fn resolved_max_iterations(&self) -> u32 {
        self.cfg
            .max_iterations
            .unwrap_or_else(|| self.algo.max_iterations(self.graph_nodes))
    }

    /// Number of source intervals (the length `begin_iteration` expects of
    /// its active-flag slice).
    pub fn num_source_intervals(&self) -> usize {
        self.gi.qs()
    }

    /// `true` when the memory image keeps separate `V_in`/`V_out` arrays
    /// (synchronous execution).
    pub fn is_synchronous_image(&self) -> bool {
        self.gi.is_synchronous()
    }

    /// Current simulated cycle of this device.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Publishes `active_srcs` into the edge pointers, collects the
    /// destination-interval jobs they activate, and opens iteration `iter`
    /// on the scheduler. Returns the number of jobs scheduled; `0` means
    /// this device has nothing to do (the scheduler is left untouched, so
    /// do not call [`step_iteration`](Self::step_iteration)).
    ///
    /// # Panics
    ///
    /// Panics if `active_srcs` does not have one flag per source interval.
    pub fn begin_iteration(&mut self, iter: u32, active_srcs: &[bool]) -> usize {
        assert_eq!(
            active_srcs.len(),
            self.gi.qs(),
            "one active flag per source interval"
        );
        // Publish active flags into the edge pointers (host work).
        for d in 0..self.gi.qd() {
            for (s, &active) in active_srcs.iter().enumerate() {
                self.gi.set_active(&mut self.img, d, s, active);
            }
        }
        let jobs = self.active_jobs(active_srcs);
        if jobs.is_empty() {
            self.last_jobs.clear();
            return 0;
        }
        self.sched.begin_iteration(jobs.iter().copied());
        self.tracer
            .event(self.now, EventKind::IterStart, iter as u64);
        self.last_jobs = jobs;
        self.last_jobs.len()
    }

    /// Runs the iteration opened by [`begin_iteration`](Self::begin_iteration)
    /// to completion; returns the edges processed.
    ///
    /// This is the fabric's shard-local epoch entry point: it touches only
    /// this device's own state (`System` is `Send` and owns everything it
    /// simulates), so between barriers the fabric may run each shard's
    /// `step_iteration` on its own host worker thread and still collect
    /// byte-identical results in device order.
    ///
    /// # Errors
    ///
    /// [`RunError::TimedOut`] / [`RunError::Stalled`] exactly as
    /// [`run_to_outcome`](Self::run_to_outcome).
    pub fn step_iteration(
        &mut self,
        iter: u32,
        deadline: Option<Instant>,
    ) -> Result<u64, RunError> {
        let edges = self.run_iteration(deadline)?;
        self.tracer.event(self.now, EventKind::IterEnd, iter as u64);
        Ok(edges)
    }

    /// `true` when the iteration just stepped demands another one (any
    /// destination updated, or the algorithm never converges early).
    pub fn continues(&self) -> bool {
        self.sched.any_update || self.algo.always_active()
    }

    /// Source-interval active flags for the next iteration, as observed by
    /// this device's scheduler.
    pub fn next_active_srcs(&self) -> Vec<bool> {
        if self.algo.always_active() {
            vec![true; self.gi.qs()]
        } else {
            self.sched.active_srcs_next.clone()
        }
    }

    /// Synchronous inter-iteration host work: intervals skipped by the
    /// last iteration never wrote `V_out`, so carry their current values
    /// across the buffer swap; then swap `V_in`/`V_out`.
    pub fn advance_synchronous_frontier(&mut self) {
        let scheduled: std::collections::HashSet<usize> = self.last_jobs.iter().copied().collect();
        for d in 0..self.gi.qd() {
            if scheduled.contains(&d) {
                continue;
            }
            let base = d as u32 * self.gi.nd();
            let len = self.gi.nd().min(self.graph_nodes - base);
            for i in base..base + len {
                let v = self.img.read_u32(self.gi.node_in_addr(i));
                self.img.write_u32(self.gi.node_out_addr(i), v);
            }
        }
        self.gi.swap_io();
    }

    /// Raw `V_in` value of node `v` (after
    /// [`advance_synchronous_frontier`](Self::advance_synchronous_frontier)
    /// this is the node's current value).
    pub fn read_node_in(&self, v: u32) -> u32 {
        self.img.read_u32(self.gi.node_in_addr(v))
    }

    /// Overwrites the `V_in` value of node `v` — how a fabric applies a
    /// remote vertex update into this device's replica (host work, like
    /// the inter-iteration pointer maintenance).
    pub fn write_node_in(&mut self, v: u32, value: u32) {
        self.img.write_u32(self.gi.node_in_addr(v), value);
    }

    /// Fast-forwards this device's clock to the fabric barrier at `to`,
    /// booking the gap as link/barrier wait on every PE. No-op when the
    /// device already reached `to`.
    pub fn wait_at_barrier(&mut self, to: Cycle) {
        if to <= self.now {
            return;
        }
        let gap = to - self.now;
        self.now = to;
        for pe in &mut self.pes {
            pe.credit_link_wait(gap);
        }
    }

    /// Aligns this device's clock to `to` without attributing the gap to
    /// any stall class — for freshly built replacement devices joining a
    /// fabric mid-run after a rollback, whose PEs did not actually wait.
    pub fn align_clock(&mut self, to: Cycle) {
        self.now = self.now.max(to);
    }

    /// Gathers final values, merged statistics, and metrics into the
    /// [`RunResult`] for a run that executed `iterations` iterations and
    /// processed `edges_total` edges.
    pub fn finish(&mut self, iterations: u32, edges_total: u64) -> RunResult {
        let raw = self.gi.read_out_values(&self.img);
        let values = self.algo.finalize(&self.graph, &raw);
        let mut stats = Stats::new();
        for pe in &self.pes {
            stats.merge(&pe.stats());
        }
        stats.merge(&self.moms.stats());
        stats.merge(&self.mem.stats());
        let moms_snap = self.moms.snapshot();
        let mut pe_cycles = PeCycleBreakdown::default();
        for pe in &self.pes {
            pe_cycles.accumulate(&pe.cycle_breakdown());
        }
        let metrics = MetricsSnapshot {
            moms: moms_snap,
            dram: self.mem.snapshot(),
            pe: PeStallBreakdown {
                busy_cycles: stats.get("busy_cycles"),
                raw_stalls: stats.get("raw_stalls"),
                id_starved: stats.get("id_starved"),
                moms_backpressure: stats.get("moms_backpressure"),
            },
            pe_cycles,
        };
        RunResult {
            cycles: self.now,
            host_ticks: self.host_ticks,
            iterations,
            edges_processed: edges_total,
            values,
            cache_hit_rate: moms_snap.banks.cache_hit_rate(),
            moms_trace: self.moms.take_trace(),
            stats,
            metrics,
            trace: self.collect_trace(),
        }
    }

    /// Drains every component's event ring and the occupancy sampler into
    /// one report. Cheap no-op (empty report) when tracing is off.
    fn collect_trace(&mut self) -> TraceReport {
        if !self.cfg.trace.is_active() {
            return TraceReport::default();
        }
        // Drops must be summed before draining: `take` resets the rings.
        let dropped = self.tracer.dropped()
            + self.pes.iter().map(|p| p.trace_dropped()).sum::<u64>()
            + self.moms.trace_dropped()
            + self.mem.trace_dropped();
        let mut streams = vec![self.tracer.take()];
        for pe in &mut self.pes {
            streams.push(pe.take_trace_events());
        }
        streams.extend(self.moms.take_trace_events());
        streams.extend(self.mem.take_trace_events());
        TraceReport {
            events: merge_events(streams),
            counters: self
                .sampler
                .as_ref()
                .map(OccupancySampler::series)
                .unwrap_or_default(),
            dropped,
            cycles: self.now,
        }
    }

    /// The last `n` events across every component, merged in time order.
    fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut streams = vec![self.tracer.tail(n)];
        streams.extend(self.pes.iter().map(|p| p.trace_tail(n)));
        streams.push(self.moms.trace_tail(n));
        streams.push(self.mem.trace_tail(n));
        let merged = merge_events(streams);
        let skip = merged.len().saturating_sub(n);
        merged.into_iter().skip(skip).collect()
    }

    /// Runs one iteration to completion; returns edges processed, or an
    /// error if the wall-clock deadline expired or the watchdog tripped
    /// mid-iteration.
    fn run_iteration(&mut self, deadline: Option<Instant>) -> Result<u64, RunError> {
        /// Cycles between wall-clock polls (the simulator runs on the
        /// order of a million cycles per host second, so this checks a
        /// few dozen times per second without measurable overhead).
        const DEADLINE_POLL_MASK: u64 = (1 << 15) - 1;
        /// Cycles between watchdog checks: cheap relative to the
        /// threshold, frequent enough that detection latency is bounded
        /// by `threshold + 1024`.
        const WATCHDOG_POLL_MASK: u64 = (1 << 10) - 1;
        let mut edges = 0u64;
        let safety_limit = self.now + 2_000_000_000;
        if let Some(w) = &mut self.watchdog {
            // The inter-iteration host work (pointer maintenance, value
            // carry) is not simulated progress; restart the quiet-period
            // clock at the iteration boundary.
            w.note_progress(self.now);
        }
        loop {
            self.now += 1;
            self.host_ticks += 1;
            let now = self.now;
            let mut progressed = false;
            // Polls key off executed host ticks, not simulated cycles:
            // idle skipping can jump the cycle counter over any fixed
            // cycle mask, but every poll interval of *work* still gets a
            // wall-clock and watchdog check. With skipping off the two
            // counters advance in lockstep, so the cadence is unchanged.
            if let Some(d) = deadline {
                if self.host_ticks & DEADLINE_POLL_MASK == 0 && Instant::now() >= d {
                    return Err(RunError::TimedOut);
                }
            }

            // 1. Idle PEs pull jobs.
            for i in 0..self.pes.len() {
                if self.pes[i].is_idle() {
                    if let Some(d) = self.sched.pull() {
                        let job = self.make_job(d);
                        self.pes[i].start_job(job);
                        self.tracer.event(
                            now,
                            EventKind::SchedDispatch,
                            (i as u64) << 32 | d as u64,
                        );
                        self.pes[i].trace_event(now, EventKind::PeJobStart, d as u64);
                    }
                }
            }

            // 2. Tick PEs (they talk to the MOMS and the image).
            for i in 0..self.pes.len() {
                self.pes[i].tick(now, &mut self.img, &mut self.moms, i);
                // Collect results.
                if let Some(r) = self.pes[i].take_result() {
                    edges += r.edges;
                    progressed = true;
                    self.sched.complete(
                        r.d,
                        r.updated,
                        self.gi.nd(),
                        self.gi.ns(),
                        self.graph_nodes,
                    );
                }
            }

            // 3. Move PE bursts into per-channel queues (split at the
            //    interleave boundary) and issue what fits.
            for i in 0..self.pes.len() {
                while let Some(req) = self.pes[i].pop_dram_request() {
                    let segs = self.mem.split_burst(req.addr, req.lines);
                    self.burst_segments[i].push((req.tag, segs.len() as u32));
                    for (_, _, lines, gaddr) in segs {
                        self.seg_q[i].push_back(DramRequest {
                            id: encode_pe_id(i, req.tag),
                            addr: gaddr,
                            lines,
                            write: req.write,
                        });
                    }
                }
                while let Some(&seg) = self.seg_q[i].front() {
                    let (ch, _) = self.mem.route(seg.addr);
                    if self.mem.can_accept(ch) {
                        self.mem
                            .push_request(now, seg)
                            .unwrap_or_else(|_| unreachable!("checked can_accept"));
                        self.seg_q[i].pop_front();
                        progressed = true;
                    } else {
                        break;
                    }
                }
            }

            // 4. Tick MOMS (it pushes its own line fetches) and DRAM.
            self.moms.tick(now, &mut self.mem);
            self.mem.tick(now);

            // Occupancy sampling (reads only; active at counters level+).
            if let Some(s) = &mut self.sampler {
                if now.is_multiple_of(s.period) {
                    s.mshr.record(now, self.moms.mshr_occupancy() as u64);
                    s.subentries.record(now, self.moms.subentry_used() as u64);
                    s.dram_pending.record(now, self.mem.pending() as u64);
                    s.jobs_queued.record(
                        now,
                        (self.sched.queue.len() + self.sched.jobs_outstanding) as u64,
                    );
                }
            }

            // 5. Route DRAM completions, optionally through the fault
            //    injector (delay/reorder/drop on the completion path).
            let fault_on = self.fault.is_active();
            for ch in 0..self.mem.num_channels() {
                while let Some(resp) = self.mem.pop_response(now, ch) {
                    if fault_on {
                        let resp_id = resp.id;
                        let dropped_before = self.fault.dropped();
                        self.fault.offer(now, resp);
                        if self.fault.dropped() > dropped_before {
                            // The injector swallowed this completion; name
                            // it in the trace so a later stall snapshot
                            // points straight at the black-holed request.
                            self.tracer.event(now, EventKind::FaultDrop, resp_id);
                        }
                    } else {
                        self.route_response(resp);
                        progressed = true;
                    }
                }
            }
            if fault_on {
                while let Some(resp) = self.fault.pop_ready(now) {
                    self.route_response(resp);
                    progressed = true;
                }
            }

            // 6. Watchdog: any retirement above restarts the quiet-period
            //    clock; a long enough silence trips the stall report.
            if progressed {
                if let Some(w) = &mut self.watchdog {
                    w.note_progress(now);
                }
            } else if self.host_ticks & WATCHDOG_POLL_MASK == 0 {
                if let Some(w) = &self.watchdog {
                    if w.is_stalled(now) {
                        return Err(RunError::Stalled(Box::new(self.diagnostic_snapshot())));
                    }
                }
            }

            // 7. Iteration barrier.
            if self.sched.iteration_done()
                && self.pes.iter().all(|p| p.is_idle())
                && self.moms.is_idle()
                && self.mem.is_idle()
                && self.seg_q.iter().all(|q| q.is_empty())
                && self.fault.pending() == 0
            {
                break;
            }
            assert!(
                self.now < safety_limit,
                "iteration did not converge within the cycle safety limit"
            );

            // 8. Idle skipping: when every component is provably inert
            //    until some future cycle, fast-forward the clock to just
            //    before it and book the skipped cycles into the same
            //    statistics the unskipped loop would have produced.
            if self.cfg.idle_skip {
                if let Some(gap) = self.idle_gap(now, safety_limit) {
                    self.now += gap;
                    for pe in &mut self.pes {
                        pe.credit_inert_cycles(gap);
                    }
                }
            }
        }
        Ok(edges)
    }

    /// Cycles that may be fast-forwarded because no component can change
    /// observable state before then; the loop then executes the first
    /// potentially eventful cycle normally. `None` means tick normally.
    ///
    /// The predicate is conservative: every component either names its
    /// earliest possible self-driven event or answers "next cycle" when
    /// it cannot prove inertness. Skipped cycles are exactly the ticks
    /// that would have been no-ops, which is what keeps skip-on and
    /// skip-off runs bit-identical (`tests/determinism.rs`).
    fn idle_gap(&self, now: Cycle, safety_limit: Cycle) -> Option<u64> {
        // Host-side work at the top of the loop: job dispatch and segment
        // issue both act on the very next tick.
        if !self.sched.queue.is_empty() && self.pes.iter().any(|p| p.is_idle()) {
            return None;
        }
        if self.seg_q.iter().any(|q| !q.is_empty()) {
            return None;
        }
        if self.fault.is_active() && self.fault.pending() > 0 {
            return None;
        }
        // Probe components cheapest-first and bail as soon as one reports
        // an event at `now + 1`: no gap is possible then, so the pricier
        // probes (the MOMS iterates every bank) never run on a busy
        // cycle. A source at `now + 1` caps the min at `now + 1` whatever
        // the others say, so bailing early merges to the same answer.
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
            c <= now + 1
        };
        for pe in &self.pes {
            if let Some(c) = pe.next_event(now) {
                if merge(c) {
                    return None;
                }
            }
        }
        if let Some(c) = self.mem.next_event(now) {
            if merge(c) {
                return None;
            }
        }
        if let Some(c) = self.moms.next_event(now) {
            if merge(c) {
                return None;
            }
        }
        let mut target = match next {
            Some(t) => t,
            // No component can ever act again on its own: a genuine
            // deadlock. Jump straight to where the watchdog can trip so
            // detection stays prompt; without a watchdog, tick normally
            // and let the deadline or safety limit catch it.
            None => match &self.watchdog {
                Some(w) => w.last_progress() + w.threshold() + 1,
                None => return None,
            },
        };
        // Never skip over a sampling boundary (the occupancy series must
        // record every period point), the watchdog trip point, or the
        // convergence safety limit.
        if let Some(s) = &self.sampler {
            target = target.min((now / s.period + 1) * s.period);
        }
        if let Some(w) = &self.watchdog {
            target = target.min(w.last_progress() + w.threshold() + 1);
        }
        target = target.min(safety_limit);
        (target > now + 1).then(|| target - 1 - now)
    }

    /// Delivers one DRAM completion to its owner (MOMS line fetch or PE
    /// burst segment).
    fn route_response(&mut self, resp: DramResponse) {
        if MomsSystem::owns_dram_id(resp.id) {
            self.moms.dram_response(resp.id, resp.lines);
        } else {
            let (pe, tag) = decode_pe_id(resp.id);
            let bursts = &mut self.burst_segments[pe];
            let idx = bursts
                .iter()
                .position(|&(t, _)| t == tag)
                .expect("segment bookkeeping");
            bursts[idx].1 -= 1;
            if bursts[idx].1 == 0 {
                bursts.swap_remove(idx);
                self.pes[pe].burst_complete(tag, &self.img);
            }
        }
    }

    /// Assembles the per-component state dump reported when the watchdog
    /// trips: scheduler, PE phases and queues, MOMS banks, DRAM channels,
    /// and the fault injector when active.
    fn diagnostic_snapshot(&self) -> DiagnosticSnapshot {
        let (last_progress, threshold) = self
            .watchdog
            .as_ref()
            .map(|w| (w.last_progress(), w.threshold()))
            .unwrap_or((0, 0));
        let mut sections = Vec::new();

        let mut s = DiagnosticSection::new("scheduler");
        s.push("jobs_queued", self.sched.queue.len());
        s.push("jobs_outstanding", self.sched.jobs_outstanding);
        sections.push(s);

        let mut s = DiagnosticSection::new("pes");
        for (i, pe) in self.pes.iter().enumerate() {
            s.push(format!("pe[{i}]"), pe.diagnostic());
        }
        for (i, q) in self.seg_q.iter().enumerate() {
            if !q.is_empty() {
                s.push(format!("seg_q[{i}]"), q.len());
            }
        }
        s.push(
            "bursts_awaiting_segments",
            self.burst_segments.iter().map(Vec::len).sum::<usize>(),
        );
        sections.push(s);

        sections.push(self.moms.diagnostic());
        sections.push(self.mem.diagnostic());
        if self.fault.is_active() {
            sections.push(self.fault.diagnostic());
        }
        // When event tracing is on, embed the tail of the merged event
        // stream: the last thing each component did before going quiet.
        let tail = self.trace_tail(TRACE_TAIL_EVENTS);
        if !tail.is_empty() {
            let mut s = DiagnosticSection::new("trace-tail");
            for (i, ev) in tail.iter().enumerate() {
                s.push(format!("[{i:02}]"), ev);
            }
            sections.push(s);
        }

        DiagnosticSnapshot {
            cycle: self.now,
            last_progress,
            threshold,
            sections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algos::golden;
    use graph::GraphSpec;

    fn small_system(g: &CooGraph, algo: Algorithm) -> System {
        System::new(g, Partitioner::new(256, 256), algo, SystemConfig::small())
    }

    #[test]
    fn bfs_matches_golden_exactly() {
        let g = GraphSpec::rmat(8, 4).build(11);
        let algo = Algorithm::bfs(0);
        let result = small_system(&g, algo).run();
        assert_eq!(result.values, golden::run(&algo, &g));
        assert!(result.cycles > 0);
        assert!(result.edges_processed > 0);
    }

    #[test]
    fn scc_matches_golden_exactly() {
        let g = GraphSpec::rmat(8, 6).build(13);
        let algo = Algorithm::Scc;
        let result = small_system(&g, algo).run();
        assert_eq!(result.values, golden::run(&algo, &g));
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = GraphSpec::rmat(8, 6)
            .build(17)
            .with_random_weights(0, 255, 3);
        let algo = Algorithm::sssp(0);
        let result = small_system(&g, algo).run();
        assert_eq!(result.values, golden::dijkstra(&g, 0));
    }

    #[test]
    fn pagerank_matches_golden_within_fp_tolerance() {
        let g = GraphSpec::rmat(8, 4).build(19);
        let algo = Algorithm::pagerank();
        let result = small_system(&g, algo).run();
        let want = golden::run(&algo, &g);
        assert_eq!(
            golden::pagerank_mismatch(&result.values, &want, 1e-3),
            None,
            "pagerank diverged from reference"
        );
        assert_eq!(result.iterations, 10);
    }

    #[test]
    fn async_converges_in_fewer_iterations_than_bound() {
        let g = GraphSpec::rmat(8, 8).build(23);
        let algo = Algorithm::Scc;
        let result = small_system(&g, algo).run();
        assert!(
            result.iterations < g.num_nodes(),
            "convergence detection failed: {} iterations",
            result.iterations
        );
    }

    #[test]
    fn pagerank_with_multi_chunk_intervals() {
        // Destination intervals larger than one 32-beat init burst force
        // the chunked vin/vconst sequence (regression: the const-burst
        // bookkeeping must consume its pending chunk exactly once).
        let g = GraphSpec::rmat(12, 4).build(97);
        let algo = Algorithm::pagerank();
        let mut cfg = SystemConfig::small();
        cfg.pe.bram_nodes = 2048;
        let result = System::new(&g, Partitioner::new(2048, 2048), algo, cfg).run();
        let want = golden::run(&algo, &g);
        assert_eq!(golden::pagerank_mismatch(&result.values, &want, 1e-3), None);
    }

    #[test]
    fn forced_sync_matches_golden_and_takes_more_iterations() {
        let g = GraphSpec::rmat(9, 6)
            .build(83)
            .with_random_weights(0, 255, 7);
        let algo = Algorithm::sssp(0);

        let async_result = small_system(&g, algo).run();

        let mut cfg = SystemConfig::small();
        cfg.execution = crate::config::ExecutionMode::ForceSynchronous;
        let mut sys = System::new(&g, Partitioner::new(256, 256), algo, cfg);
        let sync_result = sys.run();

        let (want, golden_iters) = golden::run_forced_sync(&algo, &g);
        assert_eq!(sync_result.values, want);
        assert_eq!(sync_result.values, async_result.values, "same fixpoint");
        assert!(
            sync_result.iterations >= async_result.iterations,
            "sync {} < async {} iterations",
            sync_result.iterations,
            async_result.iterations
        );
        // The accelerator's interval-level convergence detection may take
        // a couple of extra confirmation sweeps vs the golden's global
        // check, but not wildly more.
        assert!(sync_result.iterations <= golden_iters + 3);
    }

    #[test]
    fn pagerank_incurs_raw_stalls_on_hot_destinations() {
        // A star graph funnels every edge into one destination: the
        // 4-cycle floating-point gather pipeline must stall on RAW hazards
        // (§V-B: "PageRank is throttled by RAW stalls").
        let n = 512u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, 0)).collect();
        let g = CooGraph::from_edges(n, edges);
        let mut cfg = SystemConfig::small();
        cfg.max_iterations = Some(1);
        let mut sys = System::new(&g, Partitioner::new(512, 512), Algorithm::pagerank(), cfg);
        let r = sys.run();
        assert!(
            r.stats.get("raw_stalls") > 100,
            "expected heavy RAW stalling, got {}",
            r.stats.get("raw_stalls")
        );
        // SCC's combinational gather never stalls on the same graph.
        let mut sys = System::new(
            &g,
            Partitioner::new(512, 512),
            Algorithm::Scc,
            SystemConfig::small(),
        );
        let r2 = sys.run();
        assert_eq!(r2.stats.get("raw_stalls"), 0);
    }

    #[test]
    fn recorded_trace_replays_on_other_configs() {
        let g = GraphSpec::rmat(9, 8).build(101);
        let mut cfg = SystemConfig::small();
        cfg.moms_trace_cap = 100_000;
        let mut sys = System::new(&g, Partitioner::new(256, 256), Algorithm::Scc, cfg);
        let result = sys.run();
        assert!(!result.moms_trace.is_empty(), "trace recorded");
        assert_eq!(
            result.moms_trace.len() as u64,
            result.stats.get("moms_reads"),
            "one trace entry per accepted irregular read"
        );
        // Replay the recorded stream against a private-only MOMS.
        let replay_cfg = moms::MomsSystemConfig {
            topology: moms::Topology::Private,
            ..SystemConfig::small().moms
        };
        let replay = moms::harness::TraceRun::new(replay_cfg).execute_tagged(&result.moms_trace);
        assert_eq!(replay.responses, result.moms_trace.len());
        assert!(replay.lines_per_request() > 0.0);
    }

    #[test]
    fn gteps_accounting_is_consistent() {
        let g = GraphSpec::rmat(8, 4).build(29);
        let result = small_system(&g, Algorithm::bfs(0)).run();
        let epc = result.edges_per_cycle();
        assert!(epc > 0.0);
        assert!((result.gteps(200.0) - epc * 0.2).abs() < 1e-12);
    }
}
