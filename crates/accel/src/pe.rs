//! The processing element (Fig. 9).
//!
//! A PE executes one job (destination interval) at a time through the
//! phases: node initialisation (single outstanding 32-beat burst), edge
//! pointer fetch, edge streaming (multiple outstanding tagged bursts, out
//! of order across channels), the per-edge source fetch through the MOMS
//! (or local BRAM when `use_local_src` applies), the `gather()` pipeline
//! with RAW stall handling, and finally `apply()` + write-back.
//!
//! Each in-flight edge is a suspended hardware thread (§IV-D): its state
//! lives in the free-ID/state-memory interface (weighted graphs,
//! Fig. 10a) or directly in the MOMS using the destination offset as the
//! ID (unweighted graphs, Fig. 10b).

use std::collections::{HashMap, VecDeque};

use simkit::trace::{EventKind, TraceEvent, Tracer};
use simkit::{Cycle, Stats};

use algos::Algorithm;
use dram::MemImage;
use graph::layout::EdgePointer;
use moms::{MomsReq, MomsSystem};

use crate::config::PeConfig;

/// Work descriptor pulled from the scheduler: one destination interval
/// plus every base address the PE needs (§IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Destination interval index.
    pub d: usize,
    /// First node of the interval.
    pub d_base: u32,
    /// Number of nodes in the interval.
    pub d_len: u32,
    /// Base address of `V_DRAM,in`.
    pub vin_base: u64,
    /// Base address of `V_const`, when the algorithm uses it.
    pub vconst_base: Option<u64>,
    /// Base address of `V_DRAM,out`.
    pub vout_base: u64,
    /// Address of this interval's edge-pointer row (Qs pointers).
    pub ptr_base: u64,
    /// Number of source intervals.
    pub qs: usize,
    /// Source interval size in nodes.
    pub ns: u32,
    /// `true` when each edge carries a 32-bit weight.
    pub weighted: bool,
    /// Whether sources inside the destination interval read from local
    /// BRAM (Template 1 `use_local_src`; forced off in synchronous mode).
    pub use_local_src: bool,
    /// The algorithm parameterisation.
    pub algo: Algorithm,
    /// Total node count (needed by `apply()`).
    pub num_nodes: u32,
}

/// A burst DMA request the PE asks the system to place on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeDramReq {
    /// PE-local burst tag, echoed by [`Pe::burst_complete`].
    pub tag: u64,
    /// Global byte address.
    pub addr: u64,
    /// Lines (64 B beats) to transfer.
    pub lines: u32,
    /// `true` for write-back bursts.
    pub write: bool,
}

/// Completion report for a finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// Destination interval processed.
    pub d: usize,
    /// Whether any destination value changed (Template 1, line 16).
    pub updated: bool,
    /// Edges processed by this job.
    pub edges: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Init,
    FetchPtrs,
    Stream,
    Apply,
    Writeback,
}

/// Exhaustive per-cycle attribution for one PE: every simulated cycle the
/// PE existed lands in exactly one field, so the fields always sum to the
/// cycles the PE was ticked. This is what `repro explain` renders — unlike
/// the event counters in [`Pe::stats`], it cannot under- or over-count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeCycleBreakdown {
    /// No job assigned.
    pub idle: u64,
    /// Node-initialisation phase (vin/vconst bursts + BRAM fill).
    pub init: u64,
    /// Waiting on the edge-pointer burst.
    pub fetch_ptrs: u64,
    /// `apply()` sweep over the destination interval.
    pub apply: u64,
    /// Write-back bursts draining.
    pub writeback: u64,
    /// Stream cycles that made forward progress (retired, issued,
    /// accepted a MOMS response, or consumed an edge).
    pub stream_productive: u64,
    /// Stream cycles blocked only by a read-after-write hazard in the
    /// gather pipeline.
    pub stream_raw_hazard: u64,
    /// Stream cycles refused by a full MOMS input port.
    pub stream_backpressure: u64,
    /// Stream cycles starved for a free ID slot (weighted graphs).
    pub stream_id_starved: u64,
    /// Stream cycles waiting only on outstanding MOMS responses.
    pub stream_moms_wait: u64,
    /// Stream cycles waiting only on edge-burst DRAM data.
    pub stream_dram_wait: u64,
    /// Residual stream cycles (gather-pipeline latency drain).
    pub stream_drain: u64,
    /// Parked at a fabric iteration barrier, waiting on slower devices or
    /// the inter-accelerator link exchange. Always zero outside a fabric
    /// run.
    pub link_wait: u64,
}

impl PeCycleBreakdown {
    /// Sum of every class — equals the cycles this PE was ticked.
    pub fn total(&self) -> u64 {
        self.idle
            + self.init
            + self.fetch_ptrs
            + self.apply
            + self.writeback
            + self.stream_total()
            + self.link_wait
    }

    /// Cycles spent in the edge-streaming phase, all classes.
    pub fn stream_total(&self) -> u64 {
        self.stream_productive
            + self.stream_raw_hazard
            + self.stream_backpressure
            + self.stream_id_starved
            + self.stream_moms_wait
            + self.stream_dram_wait
            + self.stream_drain
    }

    /// Adds `other` into `self`, field by field (for summing over PEs).
    pub fn accumulate(&mut self, other: &PeCycleBreakdown) {
        self.idle += other.idle;
        self.init += other.init;
        self.fetch_ptrs += other.fetch_ptrs;
        self.apply += other.apply;
        self.writeback += other.writeback;
        self.stream_productive += other.stream_productive;
        self.stream_raw_hazard += other.stream_raw_hazard;
        self.stream_backpressure += other.stream_backpressure;
        self.stream_id_starved += other.stream_id_starved;
        self.stream_moms_wait += other.stream_moms_wait;
        self.stream_dram_wait += other.stream_dram_wait;
        self.stream_drain += other.stream_drain;
        self.link_wait += other.link_wait;
    }

    /// `(label, cycles)` rows in display order, for attribution tables.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("idle", self.idle),
            ("init", self.init),
            ("fetch-ptrs", self.fetch_ptrs),
            ("apply", self.apply),
            ("writeback", self.writeback),
            ("stream/productive", self.stream_productive),
            ("stream/raw-hazard", self.stream_raw_hazard),
            ("stream/moms-backpressure", self.stream_backpressure),
            ("stream/id-starved", self.stream_id_starved),
            ("stream/moms-wait", self.stream_moms_wait),
            ("stream/dram-wait", self.stream_dram_wait),
            ("stream/drain", self.stream_drain),
            ("link/barrier-wait", self.link_wait),
        ]
    }
}

#[derive(Debug, Clone, Copy)]
enum Burst {
    InitVin { start: u32, len: u32 },
    InitConst { len: u32 },
    Ptrs,
    Edges { shard: usize, addr: u64, lines: u32 },
    Write,
}

#[derive(Debug, Clone, Copy)]
struct ShardInfo {
    s: usize,
    base_addr: u64,
    edges: u64,
}

#[derive(Debug, Clone, Copy)]
struct EdgeItem {
    /// Global source node id.
    src: u32,
    /// Offset within the destination interval.
    dst_off: u16,
    /// Edge weight (1 when unweighted).
    w: u32,
}

#[derive(Debug, Clone, Copy)]
struct GatherIn {
    dst_off: u16,
    src_val: u32,
    w: u32,
}

/// One processing element. Drive with [`tick`](Self::tick); exchange DMA
/// bursts via [`pop_dram_request`](Self::pop_dram_request) /
/// [`burst_complete`](Self::burst_complete); collect results with
/// [`take_result`](Self::take_result).
#[derive(Debug)]
pub struct Pe {
    cfg: PeConfig,
    phase: Phase,
    job: Option<Job>,
    bram: Vec<[u32; 2]>,

    // DMA
    dram_out: VecDeque<PeDramReq>,
    outstanding: HashMap<u64, Burst>,
    next_tag: u64,
    ordered_burst_outstanding: bool,
    edge_bursts_outstanding: usize,

    // Init
    init_req_cursor: u32,
    init_done_cursor: u32,
    init_avail: u32,
    init_vin_pending: Option<(u32, u32)>,

    // Shards / streaming
    shards: Vec<ShardInfo>,
    shard_cursor: usize,
    shard_addr_cursor: u64,
    edge_q: VecDeque<EdgeItem>,
    edge_q_words: usize,
    edge_q_reserved: usize,

    // MOMS interface
    free_ids: VecDeque<u16>,
    state_mem: Vec<(u16, u32)>,
    inflight_moms: usize,
    moms_gather_q: VecDeque<GatherIn>,
    local_q: VecDeque<GatherIn>,

    // Gather pipeline
    pipe: VecDeque<(Cycle, GatherIn)>,
    inflight_dst: Vec<u16>,

    // Apply / writeback
    apply_cursor: u32,
    wb_cursor: u32,

    updated: bool,
    edges_done: u64,
    result: Option<JobResult>,
    stats: Stats,
    counters: PeCounters,
    breakdown: PeCycleBreakdown,
    tracer: Tracer,
}

/// Hot-path event counters kept as plain fields: these are bumped every
/// cycle or every edge, where a name-keyed [`Stats`] lookup would
/// dominate the simulation loop. [`Pe::stats`] folds them into the
/// exported registry under their usual names.
#[derive(Debug, Clone, Copy, Default)]
struct PeCounters {
    busy_cycles: u64,
    raw_stalls: u64,
    local_reads: u64,
    moms_reads: u64,
    moms_backpressure: u64,
    id_starved: u64,
    edges_processed: u64,
}

impl Pe {
    /// Creates an idle PE.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: PeConfig) -> Self {
        cfg.validate();
        Pe {
            bram: vec![[0, 0]; cfg.bram_nodes as usize],
            inflight_dst: vec![0; cfg.bram_nodes as usize],
            free_ids: (0..cfg.id_slots as u16).collect(),
            state_mem: vec![(0, 0); cfg.id_slots],
            dram_out: VecDeque::new(),
            outstanding: HashMap::new(),
            next_tag: 0,
            ordered_burst_outstanding: false,
            edge_bursts_outstanding: 0,
            init_req_cursor: 0,
            init_done_cursor: 0,
            init_avail: 0,
            init_vin_pending: None,
            shards: Vec::new(),
            shard_cursor: 0,
            shard_addr_cursor: 0,
            edge_q: VecDeque::new(),
            edge_q_words: 0,
            edge_q_reserved: 0,
            inflight_moms: 0,
            moms_gather_q: VecDeque::new(),
            local_q: VecDeque::new(),
            pipe: VecDeque::new(),
            apply_cursor: 0,
            wb_cursor: 0,
            updated: false,
            edges_done: 0,
            result: None,
            phase: Phase::Idle,
            job: None,
            stats: Stats::new(),
            counters: PeCounters::default(),
            breakdown: PeCycleBreakdown::default(),
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// `true` when the PE can pull a new job.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle) && self.result.is_none()
    }

    /// Accepts a job.
    ///
    /// # Panics
    ///
    /// Panics if the PE is busy or the interval exceeds its BRAM.
    pub fn start_job(&mut self, job: Job) {
        assert!(self.is_idle(), "PE is busy");
        assert!(
            job.d_len <= self.cfg.bram_nodes,
            "interval of {} nodes exceeds BRAM of {}",
            job.d_len,
            self.cfg.bram_nodes
        );
        self.phase = Phase::Init;
        self.init_req_cursor = 0;
        self.init_done_cursor = 0;
        self.init_avail = 0;
        self.init_vin_pending = None;
        self.shards.clear();
        self.shard_cursor = 0;
        self.shard_addr_cursor = 0;
        self.apply_cursor = 0;
        self.wb_cursor = 0;
        self.updated = false;
        self.edges_done = 0;
        for c in self.inflight_dst.iter_mut() {
            *c = 0;
        }
        self.job = Some(job);
        self.stats.inc("jobs");
    }

    /// Takes the completion report of the last finished job, if any.
    pub fn take_result(&mut self) -> Option<JobResult> {
        self.result.take()
    }

    /// Next DMA burst to place on the memory system, if any.
    pub fn pop_dram_request(&mut self) -> Option<PeDramReq> {
        self.dram_out.pop_front()
    }

    /// Counters: `edges_processed`, `raw_stalls`, `moms_backpressure`,
    /// `id_starved`, `local_reads`, `moms_reads`, `jobs`, `busy_cycles`.
    ///
    /// Built on demand: the hot counters live in plain fields
    /// ([`PeCounters`]) and are folded in here, keeping the per-tick path
    /// free of name lookups. As with direct `Stats` use, a counter that
    /// never fired has no entry.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        let c = &self.counters;
        for (name, v) in [
            ("busy_cycles", c.busy_cycles),
            ("edges_processed", c.edges_processed),
            ("id_starved", c.id_starved),
            ("local_reads", c.local_reads),
            ("moms_backpressure", c.moms_backpressure),
            ("moms_reads", c.moms_reads),
            ("raw_stalls", c.raw_stalls),
        ] {
            if v > 0 {
                s.add(name, v);
            }
        }
        s
    }

    /// Exhaustive per-cycle attribution accumulated since construction.
    pub fn cycle_breakdown(&self) -> PeCycleBreakdown {
        self.breakdown
    }

    /// Installs an event tracer (observing only — never alters timing).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Records an event on this PE's trace track; used by the system for
    /// job-boundary events that happen outside [`tick`](Self::tick).
    pub fn trace_event(&mut self, now: Cycle, kind: EventKind, arg: u64) {
        self.tracer.event(now, kind, arg);
    }

    /// Drains this PE's recorded event stream in time order.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// The last `n` recorded events without draining the ring.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        self.tracer.tail(n)
    }

    /// Events lost to ring wraparound.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// One-line phase and queue-occupancy summary for watchdog
    /// diagnostics.
    pub fn diagnostic(&self) -> String {
        let phase = match self.phase {
            Phase::Idle => "idle",
            Phase::Init => "init",
            Phase::FetchPtrs => "fetch-ptrs",
            Phase::Stream => "stream",
            Phase::Apply => "apply",
            Phase::Writeback => "writeback",
        };
        format!(
            "phase={} dram_out={} bursts_out={} edge_q={} inflight_moms={} \
             gather_q={} local_q={} pipe={} free_ids={}/{}",
            phase,
            self.dram_out.len(),
            self.outstanding.len(),
            self.edge_q.len(),
            self.inflight_moms,
            self.moms_gather_q.len(),
            self.local_q.len(),
            self.pipe.len(),
            self.free_ids.len(),
            self.cfg.id_slots,
        )
    }

    /// Earliest future cycle at which this PE can make progress *on its
    /// own* — without a MOMS response, DRAM burst completion, or new job
    /// arriving. `None` means the PE is inert: ticking it any number of
    /// times changes nothing observable (no state, no stats, no trace
    /// events) until some external completion lands. `Some(now + 1)` is
    /// the conservative "cannot prove inert" answer.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.dram_out.is_empty() {
            // The system moves these into channel queues every cycle.
            return Some(now + 1);
        }
        match self.phase {
            // An idle PE only acts when the scheduler hands it a job; the
            // system accounts for pullable jobs separately.
            Phase::Idle => None,
            Phase::Init => {
                if self.ordered_burst_outstanding && self.init_done_cursor == self.init_avail {
                    None // waiting purely on the vin/vconst burst
                } else {
                    Some(now + 1) // would issue a burst or fill BRAM
                }
            }
            Phase::FetchPtrs => {
                if self.ordered_burst_outstanding {
                    None // waiting purely on the pointer burst
                } else {
                    Some(now + 1)
                }
            }
            Phase::Stream => {
                // Any queued gather input or edge means the next tick
                // issues, consumes, or records a stall — all observable.
                if !self.moms_gather_q.is_empty()
                    || !self.local_q.is_empty()
                    || !self.edge_q.is_empty()
                {
                    return Some(now + 1);
                }
                // issue_dma may start another edge burst.
                if self.shard_cursor < self.shards.len()
                    && self.edge_bursts_outstanding < self.cfg.edge_tags
                {
                    return Some(now + 1);
                }
                // Only the gather pipeline can act by itself, at its
                // front's maturity; otherwise we wait on MOMS/DRAM.
                self.pipe.front().map(|&(ready, _)| ready.max(now + 1))
            }
            Phase::Apply => Some(now + 1), // makes progress every cycle
            Phase::Writeback => {
                if self.ordered_burst_outstanding {
                    None // waiting purely on the write acknowledgement
                } else {
                    Some(now + 1)
                }
            }
        }
    }

    /// Books `gap` skipped cycles into the statistics and attribution
    /// classes the next `gap` ticks would have charged. Only valid while
    /// the PE is inert (see [`next_event`](Self::next_event)): the charged
    /// class is a pure function of the frozen state, exactly as in
    /// [`tick`](Self::tick).
    pub fn credit_inert_cycles(&mut self, gap: u64) {
        if gap == 0 {
            return;
        }
        if !matches!(self.phase, Phase::Idle) {
            self.counters.busy_cycles += gap;
        }
        match self.phase {
            Phase::Idle => self.breakdown.idle += gap,
            Phase::Init => self.breakdown.init += gap,
            Phase::FetchPtrs => self.breakdown.fetch_ptrs += gap,
            Phase::Apply => self.breakdown.apply += gap,
            Phase::Writeback => self.breakdown.writeback += gap,
            Phase::Stream => {
                // Mirrors the no-progress arm of `tick_stream`'s
                // attribution: an inert stream cycle has empty queues, so
                // the raw/backpressure/starved observations cannot fire.
                if self.inflight_moms > 0 {
                    self.breakdown.stream_moms_wait += gap;
                } else if self.edge_bursts_outstanding > 0 || !self.edge_q.is_empty() {
                    self.breakdown.stream_dram_wait += gap;
                } else {
                    self.breakdown.stream_drain += gap;
                }
            }
        }
    }

    /// Books `gap` cycles spent parked at a fabric iteration barrier
    /// (waiting on slower devices or the link exchange). Unlike
    /// [`credit_inert_cycles`](Self::credit_inert_cycles) this is not an
    /// attribution of the PE's own state — the device clock is being
    /// advanced from outside — so the whole gap lands in the dedicated
    /// `link_wait` class.
    pub fn credit_link_wait(&mut self, gap: u64) {
        self.breakdown.link_wait += gap;
    }

    fn alloc_tag(&mut self, kind: Burst) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.outstanding.insert(tag, kind);
        tag
    }

    /// Notifies the PE that every segment of burst `tag` completed; the PE
    /// reads/decodes the relevant data from `img` functionally.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag.
    pub fn burst_complete(&mut self, tag: u64, img: &MemImage) {
        let kind = self.outstanding.remove(&tag).expect("unknown burst tag");
        match kind {
            Burst::InitVin { start, len } => {
                self.ordered_burst_outstanding = false;
                let job = self.job.as_ref().expect("job in flight");
                if job.vconst_base.is_some() {
                    // Constants travel in a second burst before the chunk
                    // becomes available.
                    self.init_vin_pending = Some((start, len));
                } else {
                    self.init_avail += len;
                }
            }
            Burst::InitConst { len } => {
                self.ordered_burst_outstanding = false;
                let vin_chunk = self.init_vin_pending.take();
                debug_assert!(vin_chunk.is_some(), "const burst without vin chunk");
                self.init_avail += len;
            }
            Burst::Ptrs => {
                self.ordered_burst_outstanding = false;
                self.parse_pointers(img);
            }
            Burst::Edges { shard, addr, lines } => {
                self.edge_bursts_outstanding -= 1;
                self.edge_q_reserved -= lines as usize * 16;
                self.decode_edges(shard, addr, lines, img);
            }
            Burst::Write => {
                self.ordered_burst_outstanding = false;
            }
        }
    }

    fn parse_pointers(&mut self, img: &MemImage) {
        let job = self.job.as_ref().expect("job in flight");
        for s in 0..job.qs {
            let p = EdgePointer(img.read_u64(job.ptr_base + s as u64 * 8));
            if p.active() && p.edge_count() > 0 {
                self.shards.push(ShardInfo {
                    s,
                    base_addr: p.byte_addr(),
                    edges: p.edge_count(),
                });
            }
        }
        if self.shards.is_empty() {
            self.phase = Phase::Apply;
        } else {
            self.phase = Phase::Stream;
            self.shard_cursor = 0;
            self.shard_addr_cursor = self.shards[0].base_addr;
        }
    }

    fn words_per_edge(&self) -> u64 {
        if self.job.as_ref().is_some_and(|j| j.weighted) {
            2
        } else {
            1
        }
    }

    fn decode_edges(&mut self, shard: usize, addr: u64, lines: u32, img: &MemImage) {
        let wpe = self.words_per_edge();
        let info = self.shards[shard];
        let job = self.job.as_ref().expect("job in flight");
        let s_base = info.s as u32 * job.ns;
        let first_word = (addr - info.base_addr) / 4;
        let last_word = first_word + lines as u64 * 16;
        let first_edge = first_word / wpe;
        let last_edge = (last_word / wpe).min(info.edges);
        for e in first_edge..last_edge {
            let word_addr = info.base_addr + e * wpe * 4;
            let bits = img.read_u32(word_addr);
            let edge = graph::partition::CompressedEdge::from_bits(bits);
            debug_assert!(!edge.is_terminating(), "terminator before edge count");
            let w = if wpe == 2 {
                img.read_u32(word_addr + 4)
            } else {
                1
            };
            self.edge_q.push_back(EdgeItem {
                src: s_base + edge.src_offset(),
                dst_off: edge.dst_offset() as u16,
                w,
            });
            self.edge_q_words += wpe as usize;
        }
    }

    /// Issues phase-appropriate DMA bursts.
    fn issue_dma(&mut self, now: Cycle) {
        let Some(job) = self.job.clone() else { return };
        match self.phase {
            Phase::Init => {
                if self.ordered_burst_outstanding {
                    return;
                }
                if let Some((start, len)) = self.init_vin_pending {
                    // Matching V_const burst for the chunk in flight.
                    let base = job.vconst_base.expect("pending implies const");
                    let (addr, lines) = span_lines(base, job.d_base + start, len);
                    let tag = self.alloc_tag(Burst::InitConst { len });
                    self.dram_out.push_back(PeDramReq {
                        tag,
                        addr,
                        lines,
                        write: false,
                    });
                    self.ordered_burst_outstanding = true;
                    return;
                }
                if self.init_req_cursor < job.d_len {
                    // Keep one line of slack so misaligned spans stay ≤32.
                    let chunk_nodes =
                        (self.cfg.max_burst_lines * 16 - 16).min(job.d_len - self.init_req_cursor);
                    let start = self.init_req_cursor;
                    let (addr, lines) = span_lines(job.vin_base, job.d_base + start, chunk_nodes);
                    let tag = self.alloc_tag(Burst::InitVin {
                        start,
                        len: chunk_nodes,
                    });
                    self.dram_out.push_back(PeDramReq {
                        tag,
                        addr,
                        lines,
                        write: false,
                    });
                    self.ordered_burst_outstanding = true;
                    self.init_req_cursor += chunk_nodes;
                }
            }
            Phase::FetchPtrs => {
                // The pointer burst is in flight until parse_pointers
                // switches the phase, so the guard below fires only once.
                if self.ordered_burst_outstanding {
                    return;
                }
                let bytes = job.qs as u64 * 8;
                let start = job.ptr_base / 64 * 64;
                let end = (job.ptr_base + bytes).div_ceil(64) * 64;
                let total_lines = ((end - start) / 64) as u32;
                assert!(
                    total_lines <= self.cfg.max_burst_lines,
                    "Qs = {} exceeds one pointer burst; use larger Ns",
                    job.qs
                );
                let tag = self.alloc_tag(Burst::Ptrs);
                self.dram_out.push_back(PeDramReq {
                    tag,
                    addr: start,
                    lines: total_lines,
                    write: false,
                });
                self.ordered_burst_outstanding = true;
            }
            Phase::Stream => {
                while self.edge_bursts_outstanding < self.cfg.edge_tags
                    && self.shard_cursor < self.shards.len()
                {
                    let info = self.shards[self.shard_cursor];
                    let wpe = self.words_per_edge();
                    let shard_bytes = (info.edges + 1) * wpe * 4;
                    let shard_end = info.base_addr + shard_bytes;
                    if self.shard_addr_cursor >= shard_end {
                        self.shard_cursor += 1;
                        if self.shard_cursor < self.shards.len() {
                            self.shard_addr_cursor = self.shards[self.shard_cursor].base_addr;
                        }
                        continue;
                    }
                    let remaining_lines = (shard_end - self.shard_addr_cursor).div_ceil(64) as u32;
                    let lines = remaining_lines.min(self.cfg.max_burst_lines);
                    // Edge-queue credit (in words) for the whole burst.
                    let need = lines as usize * 16;
                    let used = self.edge_q_words + self.edge_q_reserved;
                    if used + need > self.cfg.edge_queue_words {
                        break;
                    }
                    self.edge_q_reserved += need;
                    let tag = self.alloc_tag(Burst::Edges {
                        shard: self.shard_cursor,
                        addr: self.shard_addr_cursor,
                        lines,
                    });
                    self.dram_out.push_back(PeDramReq {
                        tag,
                        addr: self.shard_addr_cursor,
                        lines,
                        write: false,
                    });
                    self.shard_addr_cursor += lines as u64 * 64;
                    self.edge_bursts_outstanding += 1;
                }
            }
            Phase::Writeback => {
                if self.ordered_burst_outstanding {
                    return;
                }
                if self.wb_cursor < job.d_len {
                    let chunk =
                        (self.cfg.max_burst_lines * 16 - 16).min(job.d_len - self.wb_cursor);
                    let (addr, lines) =
                        span_lines(job.vout_base, job.d_base + self.wb_cursor, chunk);
                    let tag = self.alloc_tag(Burst::Write);
                    self.dram_out.push_back(PeDramReq {
                        tag,
                        addr,
                        lines,
                        write: true,
                    });
                    self.ordered_burst_outstanding = true;
                    self.wb_cursor += chunk;
                } else if self.outstanding.is_empty() {
                    // All write bursts acknowledged: job done.
                    let job = self.job.take().expect("job in flight");
                    self.tracer.event(now, EventKind::PeJobDone, job.d as u64);
                    self.result = Some(JobResult {
                        d: job.d,
                        updated: self.updated,
                        edges: self.edges_done,
                    });
                    self.phase = Phase::Idle;
                }
            }
            Phase::Idle | Phase::Apply => {}
        }
    }

    /// Advances one cycle; exchanges irregular reads with the MOMS and
    /// reads/writes the functional image.
    pub fn tick(&mut self, now: Cycle, img: &mut MemImage, moms: &mut MomsSystem, pe_idx: usize) {
        if !matches!(self.phase, Phase::Idle) {
            self.counters.busy_cycles += 1;
        }
        // Attribute this cycle to the phase it started in; stream cycles
        // are sub-classified inside `tick_stream`.
        match self.phase {
            Phase::Idle => self.breakdown.idle += 1,
            Phase::Init => self.breakdown.init += 1,
            Phase::FetchPtrs => self.breakdown.fetch_ptrs += 1,
            Phase::Apply => self.breakdown.apply += 1,
            Phase::Writeback => self.breakdown.writeback += 1,
            Phase::Stream => {}
        }
        self.issue_dma(now);

        match self.phase {
            Phase::Init => self.tick_init(img),
            Phase::Stream => self.tick_stream(now, img, moms, pe_idx),
            Phase::Apply => self.tick_apply(img),
            _ => {}
        }
    }

    fn tick_init(&mut self, img: &MemImage) {
        let Some(job) = self.job.clone() else { return };
        let mut budget = self.cfg.init_rate;
        while budget > 0 && self.init_done_cursor < self.init_avail {
            let i = self.init_done_cursor;
            let node = job.d_base + i;
            let vin = img.read_u32(job.vin_base + node as u64 * 4);
            let vc = job
                .vconst_base
                .map_or(0, |b| img.read_u32(b + node as u64 * 4));
            self.bram[i as usize] = job.algo.init(vc, vin);
            self.init_done_cursor += 1;
            budget -= 1;
        }
        if self.init_done_cursor == job.d_len {
            self.phase = Phase::FetchPtrs;
        }
    }

    fn tick_stream(
        &mut self,
        now: Cycle,
        img: &mut MemImage,
        moms: &mut MomsSystem,
        pe_idx: usize,
    ) {
        let job = self.job.clone().expect("job in flight");
        let latency = job.algo.gather_latency();
        // Cycle-attribution observations (read at the bottom; exactly one
        // breakdown class is charged per stream cycle).
        let mut progressed = false;
        let mut raw_blocked = false;
        let mut backpressured = false;
        let mut starved = false;

        // 1. Retire one gather per cycle.
        if let Some(&(ready, g)) = self.pipe.front() {
            if ready <= now {
                self.pipe.pop_front();
                // Release the RAW hazard slot taken at issue.
                self.inflight_dst[g.dst_off as usize] -= 1;
                self.apply_gather_direct(&job, g);
                self.tracer
                    .event(now, EventKind::PeRetire, g.dst_off as u64);
                progressed = true;
            }
        }

        // 2. Issue one gather per cycle: MOMS responses first (draining
        //    the MOMS frees subentries), then local-BRAM edges.
        let issued_from = if self
            .moms_gather_q
            .front()
            .is_some_and(|g| self.can_issue(g, latency))
        {
            Some(true)
        } else if self
            .local_q
            .front()
            .is_some_and(|g| self.can_issue(g, latency))
        {
            Some(false)
        } else {
            if !self.moms_gather_q.is_empty() || !self.local_q.is_empty() {
                self.counters.raw_stalls += 1;
                raw_blocked = true;
                let waiting = (self.moms_gather_q.len() + self.local_q.len()) as u64;
                self.tracer.event(now, EventKind::PeStallRaw, waiting);
            }
            None
        };
        if let Some(from_moms) = issued_from {
            let g = if from_moms {
                self.moms_gather_q.pop_front().expect("checked nonempty")
            } else {
                self.local_q.pop_front().expect("checked nonempty")
            };
            self.tracer.event(now, EventKind::PeIssue, g.dst_off as u64);
            progressed = true;
            if latency == 0 {
                self.apply_gather_direct(&job, g);
            } else {
                self.inflight_dst[g.dst_off as usize] += 1;
                self.pipe.push_back((now + latency, g));
            }
        }

        // 3. Accept one MOMS response.
        if let Some(resp) = moms.pop_response(pe_idx) {
            progressed = true;
            let src_val = img.read_u32(resp.line * 64 + resp.word as u64 * 4);
            let (dst_off, w) = if job.weighted {
                let (d, w) = self.state_mem[resp.id as usize];
                self.free_ids.push_back(resp.id as u16);
                (d, w)
            } else {
                (resp.id as u16, 1)
            };
            self.inflight_moms -= 1;
            self.moms_gather_q.push_back(GatherIn {
                dst_off,
                src_val,
                w,
            });
        }

        // 4. Consume one edge from the edge queue.
        if let Some(&e) = self.edge_q.front() {
            let local = job.use_local_src && e.src >= job.d_base && e.src < job.d_base + job.d_len;
            let wpe = self.words_per_edge() as usize;
            if local {
                if self.local_q.len() < 16 {
                    let src_val = job
                        .algo
                        .local_src_value(self.bram[(e.src - job.d_base) as usize]);
                    self.local_q.push_back(GatherIn {
                        dst_off: e.dst_off,
                        src_val,
                        w: e.w,
                    });
                    self.edge_q.pop_front();
                    self.edge_q_words -= wpe;
                    self.counters.local_reads += 1;
                    progressed = true;
                }
            } else {
                let id = if job.weighted {
                    match self.free_ids.front() {
                        Some(&id) => Some(id),
                        None => {
                            self.counters.id_starved += 1;
                            starved = true;
                            self.tracer
                                .event(now, EventKind::PeStallIdStarved, e.src as u64);
                            None
                        }
                    }
                } else {
                    Some(e.dst_off)
                };
                if let Some(id) = id {
                    let addr = job.vin_base + e.src as u64 * 4;
                    let req = MomsReq {
                        line: addr / 64,
                        word: ((addr % 64) / 4) as u8,
                        id: id as u32,
                    };
                    if moms.try_request(pe_idx, req) {
                        if job.weighted {
                            self.free_ids.pop_front();
                            self.state_mem[id as usize] = (e.dst_off, e.w);
                        }
                        self.inflight_moms += 1;
                        self.edge_q.pop_front();
                        self.edge_q_words -= wpe;
                        self.counters.moms_reads += 1;
                        progressed = true;
                    } else {
                        self.counters.moms_backpressure += 1;
                        backpressured = true;
                        self.tracer
                            .event(now, EventKind::PeStallBackpressure, req.line);
                    }
                }
            }
        }

        // Charge exactly one attribution class for this stream cycle.
        // Priority: any forward progress wins; otherwise the most specific
        // observed blocker; otherwise whatever the PE is waiting on.
        if progressed {
            self.breakdown.stream_productive += 1;
        } else if raw_blocked {
            self.breakdown.stream_raw_hazard += 1;
        } else if backpressured {
            self.breakdown.stream_backpressure += 1;
        } else if starved {
            self.breakdown.stream_id_starved += 1;
        } else if self.inflight_moms > 0 {
            self.breakdown.stream_moms_wait += 1;
        } else if self.edge_bursts_outstanding > 0 || !self.edge_q.is_empty() {
            self.breakdown.stream_dram_wait += 1;
        } else {
            self.breakdown.stream_drain += 1;
        }

        // 5. Transition out when everything drained.
        let streaming_done = self.shard_cursor >= self.shards.len()
            && self.edge_bursts_outstanding == 0
            && self.edge_q.is_empty()
            && self.local_q.is_empty()
            && self.moms_gather_q.is_empty()
            && self.inflight_moms == 0
            && self.pipe.is_empty();
        if streaming_done {
            self.phase = Phase::Apply;
        }
    }

    fn can_issue(&self, g: &GatherIn, latency: u64) -> bool {
        latency == 0 || self.inflight_dst[g.dst_off as usize] == 0
    }

    fn apply_gather_direct(&mut self, job: &Job, g: GatherIn) {
        let dst = g.dst_off as usize;
        let out = job.algo.gather(g.src_val, self.bram[dst], g.w);
        self.bram[dst] = out.state;
        if out.updated {
            self.updated = true;
        }
        self.edges_done += 1;
        self.counters.edges_processed += 1;
    }

    fn tick_apply(&mut self, img: &mut MemImage) {
        let Some(job) = self.job.clone() else { return };
        let mut budget = self.cfg.writeback_rate;
        while budget > 0 && self.apply_cursor < job.d_len {
            let i = self.apply_cursor;
            let v = job.algo.apply(job.num_nodes, self.bram[i as usize]);
            img.write_u32(job.vout_base + (job.d_base + i) as u64 * 4, v);
            self.apply_cursor += 1;
            budget -= 1;
        }
        if self.apply_cursor == job.d_len {
            self.phase = Phase::Writeback;
            self.wb_cursor = 0;
        }
    }
}

/// Byte address and line count covering `len` 32-bit values starting at
/// element `first` of an array at `base` (line-aligned rounding).
fn span_lines(base: u64, first: u32, len: u32) -> (u64, u32) {
    let start = base + first as u64 * 4;
    let end = start + len as u64 * 4;
    let astart = start / 64 * 64;
    let aend = end.div_ceil(64) * 64;
    (astart, ((aend - astart) / 64) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lines_aligned() {
        let (addr, lines) = span_lines(0, 0, 16);
        assert_eq!(addr, 0);
        assert_eq!(lines, 1);
    }

    #[test]
    fn span_lines_misaligned_rounds_out() {
        // Elements 15..31 straddle two lines.
        let (addr, lines) = span_lines(0, 15, 16);
        assert_eq!(addr, 0);
        assert_eq!(lines, 2);
    }

    #[test]
    fn span_lines_with_base_offset() {
        let (addr, lines) = span_lines(128, 0, 16);
        assert_eq!(addr, 128);
        assert_eq!(lines, 1);
    }

    #[test]
    fn pe_starts_idle_and_rejects_oversized_jobs() {
        let mut pe = Pe::new(PeConfig {
            bram_nodes: 8,
            ..PeConfig::default()
        });
        assert!(pe.is_idle());
        let job = Job {
            d: 0,
            d_base: 0,
            d_len: 16,
            vin_base: 0,
            vconst_base: None,
            vout_base: 0,
            ptr_base: 0,
            qs: 1,
            ns: 16,
            weighted: false,
            use_local_src: true,
            algo: Algorithm::Scc,
            num_nodes: 16,
        };
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pe.start_job(job);
        }));
        assert!(res.is_err(), "oversized interval must be rejected");
    }

    #[test]
    fn burst_tags_are_unique() {
        let mut pe = Pe::new(PeConfig::default());
        let a = pe.alloc_tag(Burst::Ptrs);
        let b = pe.alloc_tag(Burst::Write);
        assert_ne!(a, b);
    }
}
