//! Multi-accelerator fabric: sharded scale-out simulation with an
//! inter-accelerator network model.
//!
//! A [`Fabric`] instantiates N independent [`System`] devices, each owning
//! a contiguous, interval-aligned slice of the node-id space (see
//! [`DeviceMap`]): a device holds *all* in-edges of its owned
//! destinations, so every vertex's reduction runs on exactly one device.
//! The monotone algorithms (BFS, SSSP, SCC) therefore reach exactly the
//! single-device fixpoint on any device count; PageRank stays within an
//! ulp of the golden executor, because a PE gathers its f32 contributions
//! in MOMS response-arrival order, which shifts with timing just as it
//! does under the DRAM fault profiles.
//!
//! Execution is globally synchronous (the paper's synchronous mode,
//! Template 1): every iteration, all devices run their local shards
//! unmodified, meet at a barrier, and exchange the vertex values that
//! changed over a cycle-level link network — ring or all-to-all topology,
//! configurable per-link bandwidth in words/cycle and per-hop latency,
//! built on [`simkit::Fifo`] two-phase queues. Devices that finish their
//! compute phase early (or had no local work) park at the barrier; the gap
//! is attributed to the `link_wait` class of
//! [`PeCycleBreakdown`](crate::PeCycleBreakdown), which `repro explain`
//! renders as the Link section.
//!
//! A [`FaultInjector`] sits on the delivery path of the link network and a
//! fabric-level [`Watchdog`] covers the exchange, so black-hole and delay
//! profiles exercise the network exactly like the DRAM-side machinery: a
//! lossy link starves the barrier of expected messages and trips the
//! watchdog with per-link [`DiagnosticSection`]s.
//!
//! # Example
//!
//! ```
//! use accel::fabric::Fabric;
//! use accel::Driver;
//! use algos::{golden, Algorithm};
//! use graph::GraphSpec;
//!
//! let g = GraphSpec::rmat(8, 4).build(11);
//! let rc = Driver::new().devices(2).run_config(&g);
//! let r = Fabric::new(&g, Algorithm::bfs(0), &rc).run();
//! assert_eq!(r.values, golden::run(&Algorithm::bfs(0), &g));
//! ```

use std::collections::VecDeque;
use std::str::FromStr;
use std::time::Instant;

use algos::Algorithm;
use graph::partition::DeviceMap;
use graph::CooGraph;
use simkit::trace::{merge_events, EventKind, TraceConfig, TraceReport, Tracer, Track};
use simkit::watchdog::{DiagnosticSection, DiagnosticSnapshot};
use simkit::{Cycle, FaultConfig, FaultInjector, Fifo, Stats, Watchdog};

use crate::config::{ExecutionMode, DEFAULT_WATCHDOG_CYCLES};
use crate::pe::PeCycleBreakdown;
use crate::run_config::RunConfig;
use crate::system::{RunError, System};

/// How the devices are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkTopology {
    /// Every ordered device pair has a dedicated direct link.
    #[default]
    AllToAll,
    /// A unidirectional ring: device `i` links only to `(i + 1) % n`;
    /// messages store-and-forward through intermediate devices.
    Ring,
}

impl LinkTopology {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            LinkTopology::AllToAll => "all-to-all",
            LinkTopology::Ring => "ring",
        }
    }
}

impl FromStr for LinkTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "all-to-all" => Ok(LinkTopology::AllToAll),
            "ring" => Ok(LinkTopology::Ring),
            other => Err(format!(
                "unknown link topology {other:?} (expected all-to-all|ring)"
            )),
        }
    }
}

/// Configuration of the inter-accelerator link network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// How devices are wired.
    pub topology: LinkTopology,
    /// Per-link serialization bandwidth in 32-bit words per cycle.
    pub bandwidth_words_per_cycle: u32,
    /// Per-hop flight latency in cycles, paid after serialization.
    pub latency: Cycle,
    /// Fixed header words charged per message on every traversed link.
    pub header_words: u32,
    /// Per-link input queue depth in messages (backpressure threshold).
    pub queue_capacity: usize,
    /// Fault schedule applied on the delivery path of every message.
    pub fault: FaultConfig,
    /// No-progress threshold for the exchange phase; `None` disables the
    /// fabric watchdog.
    pub watchdog_cycles: Option<Cycle>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            topology: LinkTopology::AllToAll,
            bandwidth_words_per_cycle: 4,
            latency: 32,
            header_words: 2,
            queue_capacity: 64,
            fault: FaultConfig::none(),
            watchdog_cycles: Some(DEFAULT_WATCHDOG_CYCLES),
        }
    }
}

impl LinkConfig {
    /// Panics unless the configuration is usable.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_words_per_cycle > 0,
            "link bandwidth must be nonzero"
        );
        assert!(
            self.queue_capacity > 0,
            "link queue capacity must be nonzero"
        );
    }
}

/// One batched vertex-update message between two devices.
#[derive(Debug, Clone)]
pub struct LinkMessage {
    /// Originating device.
    pub src: usize,
    /// Owning consumer device the updates are destined for.
    pub dst: usize,
    /// `(vertex, raw value)` updates carried by this message.
    pub updates: Vec<(u32, u32)>,
    /// Last link index this message traversed (for trace attribution).
    last_link: usize,
}

impl LinkMessage {
    /// Message size in 32-bit words on the wire: header plus two words
    /// per update.
    pub fn words(&self, header_words: u32) -> u64 {
        header_words as u64 + 2 * self.updates.len() as u64
    }
}

/// One directed physical link of the network.
#[derive(Debug)]
struct LinkState {
    from: usize,
    to: usize,
    /// Input queue at the transmitting side (two-phase, bounded).
    q: Fifo<LinkMessage>,
    /// Cycle at which the in-progress serialization completes.
    busy_until: Cycle,
    /// Serialized messages in flight, `(arrival cycle, message)`;
    /// arrival times are monotone because serialization is serial.
    inflight: VecDeque<(Cycle, LinkMessage)>,
    busy_cycles: u64,
    words: u64,
    messages: u64,
    tracer: Tracer,
}

impl LinkState {
    fn idle(&self) -> bool {
        self.q.is_empty() && self.inflight.is_empty()
    }

    fn diagnostic(&self, i: usize) -> DiagnosticSection {
        let mut s = DiagnosticSection::new(format!("link[{i}]"));
        s.push("route", format!("{} -> {}", self.from, self.to));
        s.push("queued", self.q.len());
        s.push("inflight", self.inflight.len());
        s.push("messages", self.messages);
        s.push("words", self.words);
        s.push("busy_cycles", self.busy_cycles);
        s
    }
}

/// Cumulative statistics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Transmitting device.
    pub from: usize,
    /// Receiving device.
    pub to: usize,
    /// Cycles the link spent serializing.
    pub busy_cycles: u64,
    /// Words transferred.
    pub words: u64,
    /// Messages transferred.
    pub messages: u64,
}

/// Aggregated link-network statistics of one fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkNetworkStats {
    /// Wiring in effect.
    pub topology: LinkTopology,
    /// Total cycles spent in exchange phases (the barrier-to-barrier link
    /// time added on top of compute).
    pub exchange_cycles: Cycle,
    /// Messages injected by owner devices (before store-and-forward).
    pub messages_sent: u64,
    /// Messages delivered to their final consumer.
    pub messages_delivered: u64,
    /// Messages dropped by the link fault injector.
    pub messages_dropped: u64,
    /// Vertex updates carried (each is two payload words).
    pub updates: u64,
    /// Per-directed-link cumulative statistics.
    pub per_link: Vec<LinkStats>,
}

impl LinkNetworkStats {
    /// Mean busy fraction over all links, relative to `total_cycles` of
    /// the run. Zero for a single-device fabric (no links).
    pub fn mean_occupancy(&self, total_cycles: Cycle) -> f64 {
        if self.per_link.is_empty() || total_cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_link.iter().map(|l| l.busy_cycles).sum();
        busy as f64 / (self.per_link.len() as u64 * total_cycles) as f64
    }

    /// Busiest single link's busy fraction relative to `total_cycles`.
    pub fn peak_occupancy(&self, total_cycles: Cycle) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.per_link
            .iter()
            .map(|l| l.busy_cycles as f64 / total_cycles as f64)
            .fold(0.0, f64::max)
    }
}

/// Result of a completed fabric run.
#[derive(Debug)]
pub struct FabricRunResult {
    /// Total simulated cycles (all device clocks agree at the end).
    pub cycles: Cycle,
    /// Globally synchronous iterations executed.
    pub iterations: u32,
    /// Edges processed, summed over devices.
    pub edges_processed: u64,
    /// Final per-node values, assembled from each owner device.
    pub values: Vec<u32>,
    /// Number of devices in the fabric.
    pub devices: usize,
    /// Merged statistics from every device.
    pub stats: Stats,
    /// PE cycle attribution summed over every device's PEs, including the
    /// fabric-only `link_wait` class.
    pub pe_cycles: PeCycleBreakdown,
    /// Link-network statistics.
    pub link: LinkNetworkStats,
    /// Link-track event stream (device-internal traces are not merged:
    /// track ids would collide across devices).
    pub trace: TraceReport,
}

impl FabricRunResult {
    /// Throughput in edges per cycle.
    pub fn edges_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 / self.cycles as f64
        }
    }

    /// Throughput in GTEPS at the given clock frequency.
    pub fn gteps(&self, freq_mhz: f64) -> f64 {
        self.edges_per_cycle() * freq_mhz / 1000.0
    }
}

/// Why a fabric run terminated without a result.
#[derive(Debug)]
pub enum FabricError {
    /// The host wall-clock deadline expired mid-run.
    TimedOut,
    /// A device's own no-progress watchdog tripped during its compute
    /// phase.
    DeviceStalled {
        /// Which device stalled.
        device: usize,
        /// The device's diagnostic dump.
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The link exchange made no progress for the fabric watchdog
    /// threshold (e.g. a black-hole link fault starving the barrier).
    LinkStalled(Box<DiagnosticSnapshot>),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::TimedOut => write!(f, "wall-clock deadline expired"),
            FabricError::DeviceStalled { device, snapshot } => {
                write!(f, "device {device} stalled: {snapshot}")
            }
            FabricError::LinkStalled(snapshot) => {
                write!(f, "link exchange stalled: {snapshot}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// N sharded [`System`] devices joined by a cycle-level link network.
#[derive(Debug)]
pub struct Fabric {
    devices: Vec<System>,
    map: DeviceMap,
    algo: Algorithm,
    link_cfg: LinkConfig,
    links: Vec<LinkState>,
    /// Host-side mirror of the globally consistent `V_in` values; the
    /// per-iteration diff against it yields the remote updates.
    mirror: Vec<u32>,
    qs: usize,
    max_iter: u32,
    fault: FaultInjector<LinkMessage>,
    /// Cumulative exchange-phase cycles.
    exchange_cycles: Cycle,
    messages_sent: u64,
    messages_delivered: u64,
    updates_total: u64,
    trace_cfg: TraceConfig,
}

impl Fabric {
    /// Builds a fabric of `rc.devices` devices for `g`, forcing the
    /// paper's synchronous execution mode globally (the barrier protocol
    /// requires it; a synchronous single-device run is the `devices = 1`
    /// special case and stays cycle-identical).
    ///
    /// # Panics
    ///
    /// Panics if the run or link configuration is invalid.
    pub fn new(g: &CooGraph, algo: Algorithm, rc: &RunConfig) -> Self {
        let n = rc.devices.max(1);
        rc.link.validate();
        let mut dev_rc = rc.clone();
        dev_rc.execution = ExecutionMode::ForceSynchronous;
        let (cfg, partitioner) = dev_rc.build();
        let map = DeviceMap::new(partitioner, g.num_nodes(), n);
        let devices: Vec<System> = (0..n)
            .map(|dev| {
                let local = map.extract_local(g, dev);
                System::new_sharded(g, &local, partitioner, algo, cfg.clone())
            })
            .collect();
        let mirror: Vec<u32> = (0..g.num_nodes())
            .map(|v| devices[0].read_node_in(v))
            .collect();
        let qs = devices[0].num_source_intervals();
        let max_iter = devices[0].resolved_max_iterations();
        let links = Self::build_links(n, &rc.link, &rc.trace);
        Fabric {
            qs,
            max_iter,
            devices,
            map,
            algo,
            link_cfg: rc.link,
            links,
            mirror,
            fault: FaultInjector::new(rc.link.fault),
            exchange_cycles: 0,
            messages_sent: 0,
            messages_delivered: 0,
            updates_total: 0,
            trace_cfg: rc.trace,
        }
    }

    fn build_links(n: usize, cfg: &LinkConfig, trace: &TraceConfig) -> Vec<LinkState> {
        let mut links = Vec::new();
        if n < 2 {
            return links;
        }
        let mut mk = |from: usize, to: usize| {
            let i = links.len();
            links.push(LinkState {
                from,
                to,
                q: Fifo::new(cfg.queue_capacity),
                busy_until: 0,
                inflight: VecDeque::new(),
                busy_cycles: 0,
                words: 0,
                messages: 0,
                tracer: Tracer::for_track(Track::link(i), trace),
            });
        };
        match cfg.topology {
            LinkTopology::AllToAll => {
                for from in 0..n {
                    for to in 0..n {
                        if from != to {
                            mk(from, to);
                        }
                    }
                }
            }
            LinkTopology::Ring => {
                for from in 0..n {
                    mk(from, (from + 1) % n);
                }
            }
        }
        links
    }

    /// Index of the link a message waiting at `at` takes toward `dst`.
    fn route(&self, at: usize, dst: usize) -> usize {
        let n = self.devices.len();
        debug_assert!(at != dst);
        match self.link_cfg.topology {
            // Links were built from-major with the self-link skipped.
            LinkTopology::AllToAll => at * (n - 1) + if dst > at { dst - 1 } else { dst },
            LinkTopology::Ring => at,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device-ownership map in effect.
    pub fn device_map(&self) -> &DeviceMap {
        &self.map
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics with the rendered diagnostics if a device or the link
    /// exchange stalls; use [`run_to_outcome`](Self::run_to_outcome) to
    /// handle stalls programmatically.
    pub fn run(&mut self) -> FabricRunResult {
        match self.run_to_outcome(None) {
            Ok(r) => r,
            Err(FabricError::TimedOut) => {
                unreachable!("run without a deadline cannot time out")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, reporting timeouts and stalls as structured
    /// [`FabricError`]s.
    ///
    /// After any `Err` the partially simulated state is inconsistent; do
    /// not run the same instance again.
    ///
    /// # Errors
    ///
    /// [`FabricError::TimedOut`] when the host wall clock passes
    /// `deadline`; [`FabricError::DeviceStalled`] /
    /// [`FabricError::LinkStalled`] when a watchdog trips.
    pub fn run_to_outcome(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<FabricRunResult, FabricError> {
        let n = self.devices.len();
        let mut active = vec![true; self.qs];
        let mut iterations = 0u32;
        let mut edges_per_device = vec![0u64; n];
        let mut stepped = vec![false; n];

        while iterations < self.max_iter {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(FabricError::TimedOut);
                }
            }
            // Compute phase: every device publishes the same global active
            // flags, schedules its local jobs, and runs its iteration
            // unmodified.
            let mut total_jobs = 0usize;
            for (i, dev) in self.devices.iter_mut().enumerate() {
                let jobs = dev.begin_iteration(iterations, &active);
                stepped[i] = jobs > 0;
                total_jobs += jobs;
            }
            if total_jobs == 0 {
                break;
            }
            for (i, dev) in self.devices.iter_mut().enumerate() {
                if !stepped[i] {
                    continue;
                }
                edges_per_device[i] +=
                    dev.step_iteration(iterations, deadline)
                        .map_err(|e| match e {
                            RunError::TimedOut => FabricError::TimedOut,
                            RunError::Stalled(snapshot) => FabricError::DeviceStalled {
                                device: i,
                                snapshot,
                            },
                        })?;
            }
            iterations += 1;

            // Global Template-1 control: OR over the devices that ran.
            let cont = self.algo.always_active()
                || (0..n).any(|i| stepped[i] && self.devices[i].continues());
            if !cont || iterations >= self.max_iter {
                break;
            }
            let mut next = vec![self.algo.always_active(); self.qs];
            if !self.algo.always_active() {
                for (dev, &ran) in self.devices.iter().zip(&stepped) {
                    if !ran {
                        continue;
                    }
                    for (f, d) in next.iter_mut().zip(dev.next_active_srcs()) {
                        *f |= d;
                    }
                }
            }

            // Every device performs the synchronous inter-iteration host
            // work on its own replica (carry + buffer swap), exactly as
            // the single-device loop does.
            for dev in &mut self.devices {
                dev.advance_synchronous_frontier();
            }

            // Diff each owner's slice against the global mirror to find
            // the remote updates this iteration produced.
            let updates = self.collect_updates();

            // Barrier + link exchange: devices park at the barrier while
            // the network carries the updates to every consumer replica.
            let barrier = self.devices.iter().map(System::now).max().unwrap_or(0);
            let exchange = self.exchange(barrier, updates, deadline)?;
            self.exchange_cycles += exchange;
            let resume = barrier + exchange;
            for dev in &mut self.devices {
                dev.wait_at_barrier(resume);
            }

            active = next;
        }

        // Final barrier: align every device clock so `cycles` is the
        // global completion time.
        let end = self.devices.iter().map(System::now).max().unwrap_or(0);
        for dev in &mut self.devices {
            dev.wait_at_barrier(end);
        }
        Ok(self.finish(iterations, &edges_per_device))
    }

    /// Per-owner changed `(vertex, value)` lists, updating the mirror.
    fn collect_updates(&mut self) -> Vec<Vec<(u32, u32)>> {
        let n = self.devices.len();
        let mut updates = vec![Vec::new(); n];
        for (dev, list) in updates.iter_mut().enumerate() {
            for v in self.map.device_nodes(dev) {
                let cur = self.devices[dev].read_node_in(v);
                if cur != self.mirror[v as usize] {
                    self.mirror[v as usize] = cur;
                    list.push((v, cur));
                }
            }
        }
        updates
    }

    /// Simulates one barrier exchange starting at absolute cycle `start`;
    /// returns its length in cycles. Updates are applied to every
    /// consumer replica as their messages are delivered.
    fn exchange(
        &mut self,
        start: Cycle,
        updates: Vec<Vec<(u32, u32)>>,
        deadline: Option<Instant>,
    ) -> Result<Cycle, FabricError> {
        let n = self.devices.len();
        if n < 2 {
            return Ok(0);
        }
        // Owner broadcasts: one unicast message per (owner, consumer)
        // pair; the topology decides the path and cost.
        let mut outbox: Vec<VecDeque<LinkMessage>> = vec![VecDeque::new(); n];
        let mut expected = 0u64;
        for (src, list) in updates.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            self.updates_total += (n as u64 - 1) * list.len() as u64;
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                outbox[src].push_back(LinkMessage {
                    src,
                    dst,
                    updates: list.clone(),
                    last_link: usize::MAX,
                });
                expected += 1;
            }
        }
        self.messages_sent += expected;
        if expected == 0 {
            return Ok(0);
        }

        let mut watchdog = self.link_cfg.watchdog_cycles.map(Watchdog::new);
        if let Some(w) = &mut watchdog {
            w.note_progress(start);
        }
        let header = self.link_cfg.header_words;
        let bw = self.link_cfg.bandwidth_words_per_cycle as u64;
        let latency = self.link_cfg.latency;
        let mut delivered = 0u64;
        let mut t: Cycle = 0;
        loop {
            let now = start + t;

            // 1. Arrivals: messages whose flight latency elapsed reach the
            //    link's receiving device — final consumers go through the
            //    fault injector, intermediates re-enter the router.
            for li in 0..self.links.len() {
                while let Some(&(arrive, _)) = self.links[li].inflight.front() {
                    if arrive > now {
                        break;
                    }
                    let (_, mut msg) = self.links[li].inflight.pop_front().unwrap();
                    msg.last_link = li;
                    let at = self.links[li].to;
                    if msg.dst == at {
                        let before = self.fault.dropped();
                        self.fault.offer(now, msg);
                        if self.fault.dropped() > before {
                            self.links[li]
                                .tracer
                                .event(now, EventKind::LinkDrop, at as u64);
                        }
                    } else {
                        outbox[at].push_back(msg);
                    }
                }
            }

            // 2. Deliveries: apply every update of each released message
            //    to the consumer's replica.
            while let Some(msg) = self.fault.pop_ready(now) {
                let li = msg.last_link;
                self.links[li]
                    .tracer
                    .event(now, EventKind::LinkRx, msg.src as u64);
                for &(v, val) in &msg.updates {
                    self.devices[msg.dst].write_node_in(v, val);
                }
                delivered += 1;
                if let Some(w) = &mut watchdog {
                    w.note_progress(now);
                }
            }
            if delivered == expected {
                self.messages_delivered += delivered;
                // The exchange ends one cycle after the last delivery.
                return Ok(t + 1);
            }

            // 3. Serialization: an idle link starts transmitting the
            //    oldest queued message.
            for link in &mut self.links {
                if now < link.busy_until || link.q.visible_len() == 0 {
                    continue;
                }
                let msg = link.q.pop().unwrap();
                let words = msg.words(header);
                let ser = words.div_ceil(bw).max(1);
                link.busy_until = now + ser;
                link.busy_cycles += ser;
                link.words += words;
                link.messages += 1;
                link.tracer.event(now, EventKind::LinkTx, msg.dst as u64);
                link.inflight.push_back((now + ser + latency, msg));
            }

            // 4. Routing: devices inject waiting messages into their
            //    outgoing link queues while there is room (bounded queues
            //    exert backpressure).
            for (at, waiting) in outbox.iter_mut().enumerate() {
                while let Some(front) = waiting.front() {
                    let li = self.route(at, front.dst);
                    if !self.links[li].q.can_push() {
                        break;
                    }
                    let msg = waiting.pop_front().unwrap();
                    self.links[li].q.push(msg).expect("checked can_push");
                }
            }

            // 5. Clock edge: staged queue entries become visible.
            for link in &mut self.links {
                link.q.tick();
            }

            if let Some(w) = &watchdog {
                if w.is_stalled(now) {
                    return Err(FabricError::LinkStalled(Box::new(
                        self.link_diagnostics(now, w, expected, delivered),
                    )));
                }
            }
            if t.is_multiple_of(4096) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(FabricError::TimedOut);
                    }
                }
            }
            t += 1;
        }
    }

    fn link_diagnostics(
        &self,
        now: Cycle,
        watchdog: &Watchdog,
        expected: u64,
        delivered: u64,
    ) -> DiagnosticSnapshot {
        let mut sections = Vec::new();
        let mut fabric = DiagnosticSection::new("fabric");
        fabric.push("devices", self.devices.len());
        fabric.push("topology", self.link_cfg.topology.name());
        fabric.push("expected_messages", expected);
        fabric.push("delivered_messages", delivered);
        sections.push(fabric);
        for (i, link) in self.links.iter().enumerate() {
            if !link.idle() || link.messages > 0 {
                sections.push(link.diagnostic(i));
            }
        }
        sections.push(self.fault.diagnostic());
        DiagnosticSnapshot {
            cycle: now,
            last_progress: watchdog.last_progress(),
            threshold: watchdog.threshold(),
            sections,
        }
    }

    /// Assembles the fabric result from every device's finished state.
    fn finish(&mut self, iterations: u32, edges_per_device: &[u64]) -> FabricRunResult {
        let n = self.devices.len();
        let cycles = self.devices.iter().map(System::now).max().unwrap_or(0);
        let mut values = vec![0u32; self.mirror.len()];
        let mut stats = Stats::new();
        let mut pe_cycles = PeCycleBreakdown::default();
        for (i, dev) in self.devices.iter_mut().enumerate() {
            let r = dev.finish(iterations, edges_per_device[i]);
            let nodes = self.map.device_nodes(i);
            let range = nodes.start as usize..nodes.end as usize;
            values[range.clone()].copy_from_slice(&r.values[range]);
            stats.merge(&r.stats);
            pe_cycles.accumulate(&r.metrics.pe_cycles);
        }
        let per_link: Vec<LinkStats> = self
            .links
            .iter()
            .map(|l| LinkStats {
                from: l.from,
                to: l.to,
                busy_cycles: l.busy_cycles,
                words: l.words,
                messages: l.messages,
            })
            .collect();
        let dropped_events: u64 = self.links.iter().map(|l| l.tracer.dropped()).sum();
        let link_events = merge_events(
            self.links
                .iter_mut()
                .map(|l| l.tracer.take())
                .collect::<Vec<_>>(),
        );
        let trace = if self.trace_cfg.records_events() {
            TraceReport {
                events: link_events,
                counters: Vec::new(),
                dropped: dropped_events,
                cycles,
            }
        } else {
            TraceReport::default()
        };
        FabricRunResult {
            cycles,
            iterations,
            edges_processed: edges_per_device.iter().sum(),
            values,
            devices: n,
            stats,
            pe_cycles,
            link: LinkNetworkStats {
                topology: self.link_cfg.topology,
                exchange_cycles: self.exchange_cycles,
                messages_sent: self.messages_sent,
                messages_delivered: self.messages_delivered,
                messages_dropped: self.fault.dropped(),
                updates: self.updates_total,
                per_link,
            },
            trace,
        }
    }
}
