//! Multi-accelerator fabric: sharded scale-out simulation with an
//! inter-accelerator network model and a reliable transport on top.
//!
//! A [`Fabric`] instantiates N independent [`System`] devices, each owning
//! a contiguous, interval-aligned slice of the node-id space (see
//! [`DeviceMap`]): a device holds *all* in-edges of its owned
//! destinations, so every vertex's reduction runs on exactly one device.
//! The monotone algorithms (BFS, SSSP, SCC) therefore reach exactly the
//! single-device fixpoint on any device count; PageRank stays within an
//! ulp of the golden executor, because a PE gathers its f32 contributions
//! in MOMS response-arrival order, which shifts with timing just as it
//! does under the DRAM fault profiles.
//!
//! Execution is globally synchronous (the paper's synchronous mode,
//! Template 1): every iteration, all devices run their local shards
//! unmodified, meet at a barrier, and exchange the vertex values that
//! changed over a cycle-level link network — ring or all-to-all topology,
//! configurable per-link bandwidth in words/cycle and per-hop latency,
//! built on [`simkit::Fifo`] two-phase queues. Devices that finish their
//! compute phase early (or had no local work) park at the barrier; the gap
//! is attributed to the `link_wait` class of
//! [`PeCycleBreakdown`](crate::PeCycleBreakdown), which `repro explain`
//! renders as the Link section.
//!
//! # Host threading
//!
//! Between barriers the device shards share no mutable state, so the
//! compute phase of each global iteration runs them on up to
//! [`RunConfig::sim_threads`](crate::RunConfig) host worker threads
//! ([`simkit::epoch::run_epoch`]): inputs are fixed at the epoch
//! boundary, every stepped device runs its iteration to completion, and
//! outcomes are collected into per-device slots and handled in ascending
//! device order. Everything that couples devices — the link exchange,
//! fault injection, retransmission, checkpoint/rollback, and stats/trace
//! merging — stays single-threaded in fixed device order. Every
//! observable (values, cycles, link stats, trace streams, diagnostics)
//! is therefore byte-identical for every thread count; `sim_threads = 1`
//! takes the exact sequential code path.
//!
//! # Reliable transport
//!
//! The network is treated as unreliable end to end. Every (owner,
//! consumer) device pair is a *flow*: update batches are chunked into
//! sequenced payload messages ([`LinkRetryConfig::max_updates_per_message`]),
//! admitted under a sliding window, and acknowledged by cumulative acks
//! flowing back over the same links. Receivers hold out-of-order payloads
//! in a bounded reorder window, discard duplicates by sequence number, and
//! re-ack; transmitters retransmit on an ack timeout with exponential
//! backoff. A [`FaultInjector`] sits on the delivery path of every final
//! hop — payloads *and* acks — so every GRACEFUL profile plus sustained
//! [`Lossy`](simkit::FaultProfile::Lossy)/[`Duplicate`](simkit::FaultProfile::Duplicate)
//! delivery still converges to the fault-free values, with loss showing up
//! as extra `link_wait` cycles rather than a dead run. The barrier
//! releases only when the exchange fully quiesces: every payload applied
//! in order, every flow acked, every queue drained.
//!
//! # Checkpointing and rollback
//!
//! A fault the transport cannot mask (a black-holed link, a stalled
//! device) trips a watchdog. With [`RecoveryConfig`] enabled the fabric
//! snapshots vertex state into a [`CheckpointStore`] at barrier
//! boundaries, and answers a watchdog trip by rolling every shard back to
//! the newest checkpoint, resetting the link protocol (which also clears
//! the fault — a link reset re-arms [`simkit::FaultProfile::BlackHole`]'s grace
//! window), and replaying. Attempts are bounded; what happened is
//! recorded in the [`RecoveryReport`] of the result instead of a
//! [`FabricError`].
//!
//! # Example
//!
//! ```
//! use accel::fabric::Fabric;
//! use accel::Driver;
//! use algos::{golden, Algorithm};
//! use graph::GraphSpec;
//!
//! let g = GraphSpec::rmat(8, 4).build(11);
//! let rc = Driver::new().devices(2).run_config(&g);
//! let r = Fabric::new(&g, Algorithm::bfs(0), &rc).run();
//! assert_eq!(r.values, golden::run(&Algorithm::bfs(0), &g));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::str::FromStr;
use std::time::Instant;

use algos::Algorithm;
use graph::partition::DeviceMap;
use graph::{CooGraph, Partitioner};
use simkit::trace::{merge_events, EventKind, TraceConfig, TraceReport, Tracer, Track};
use simkit::watchdog::{DiagnosticSection, DiagnosticSnapshot};
use simkit::{Cycle, FaultConfig, FaultInjector, Fifo, Stats, Watchdog};

use crate::checkpoint::{
    Checkpoint, CheckpointStore, RecoveryAttempt, RecoveryCause, RecoveryConfig, RecoveryReport,
};
use crate::config::{ExecutionMode, SystemConfig, DEFAULT_WATCHDOG_CYCLES};
use crate::pe::PeCycleBreakdown;
use crate::run_config::RunConfig;
use crate::system::{RunError, System};

/// How the devices are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkTopology {
    /// Every ordered device pair has a dedicated direct link.
    #[default]
    AllToAll,
    /// A unidirectional ring: device `i` links only to `(i + 1) % n`;
    /// messages store-and-forward through intermediate devices.
    Ring,
}

impl LinkTopology {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            LinkTopology::AllToAll => "all-to-all",
            LinkTopology::Ring => "ring",
        }
    }
}

impl FromStr for LinkTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "all-to-all" => Ok(LinkTopology::AllToAll),
            "ring" => Ok(LinkTopology::Ring),
            other => Err(format!(
                "unknown link topology {other:?} (expected all-to-all|ring)"
            )),
        }
    }
}

/// Parameters of the per-flow ack/retransmit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRetryConfig {
    /// Initial retransmission timeout in cycles, measured from injection.
    /// The fabric floors this at a few network round-trips so congested
    /// (not lossy) links don't retransmit spuriously.
    pub rto: Cycle,
    /// Ceiling of the exponential backoff.
    pub rto_cap: Cycle,
    /// Retransmissions of a single payload before the flow is declared
    /// dead ([`FabricError::LinkStalled`]).
    pub max_attempts: u32,
    /// Sliding-window size: unacked payloads a flow keeps in flight (and
    /// buffers for retransmission) at once.
    pub window: usize,
    /// Out-of-order payloads a receiver holds per flow; anything beyond
    /// is dropped and covered by retransmission.
    pub reorder_window: usize,
    /// Updates per payload message — update batches are chunked so a
    /// single lost message costs one chunk, not the whole batch.
    pub max_updates_per_message: usize,
}

impl Default for LinkRetryConfig {
    fn default() -> Self {
        LinkRetryConfig {
            rto: 512,
            rto_cap: 8192,
            max_attempts: 16,
            window: 32,
            reorder_window: 64,
            max_updates_per_message: 64,
        }
    }
}

impl LinkRetryConfig {
    /// Panics unless the protocol parameters are usable.
    pub fn validate(&self) {
        assert!(self.rto > 0, "link rto must be nonzero");
        assert!(self.rto_cap >= self.rto, "rto cap below rto");
        assert!(self.max_attempts > 0, "at least one transmission attempt");
        assert!(self.window > 0, "link window must be nonzero");
        assert!(self.reorder_window > 0, "reorder window must be nonzero");
        assert!(
            self.max_updates_per_message > 0,
            "payload chunk size must be nonzero"
        );
    }

    /// The retransmission timeout that follows `current`: exponential
    /// backoff (doubling) saturated at [`rto_cap`](Self::rto_cap). The
    /// multiply saturates before the cap is applied, so even a cap of
    /// `u64::MAX` with a huge current timeout cannot overflow.
    pub fn next_rto(&self, current: Cycle) -> Cycle {
        current.saturating_mul(2).min(self.rto_cap)
    }

    /// The full backoff schedule from `initial`: the timeout charged for
    /// each of the up-to-`max_attempts` retransmissions of one payload.
    /// Deterministic for a fixed config — this *is* the arithmetic the
    /// transport's retransmission scan applies, exposed for tests.
    pub fn backoff_schedule(&self, initial: Cycle) -> Vec<Cycle> {
        let mut delays = Vec::with_capacity(self.max_attempts as usize);
        let mut rto = initial;
        for _ in 0..self.max_attempts {
            rto = self.next_rto(rto);
            delays.push(rto);
        }
        delays
    }
}

/// Configuration of the inter-accelerator link network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// How devices are wired.
    pub topology: LinkTopology,
    /// Per-link serialization bandwidth in 32-bit words per cycle.
    pub bandwidth_words_per_cycle: u32,
    /// Per-hop flight latency in cycles, paid after serialization.
    pub latency: Cycle,
    /// Fixed header words charged per message on every traversed link.
    pub header_words: u32,
    /// Per-link input queue depth in messages (backpressure threshold).
    pub queue_capacity: usize,
    /// Fault schedule applied on the delivery path of every message.
    pub fault: FaultConfig,
    /// No-progress threshold for the exchange phase; `None` disables the
    /// fabric watchdog.
    pub watchdog_cycles: Option<Cycle>,
    /// Ack/retransmit protocol parameters.
    pub retry: LinkRetryConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            topology: LinkTopology::AllToAll,
            bandwidth_words_per_cycle: 4,
            latency: 32,
            header_words: 2,
            queue_capacity: 64,
            fault: FaultConfig::none(),
            watchdog_cycles: Some(DEFAULT_WATCHDOG_CYCLES),
            retry: LinkRetryConfig::default(),
        }
    }
}

impl LinkConfig {
    /// Panics unless the configuration is usable.
    pub fn validate(&self) {
        assert!(
            self.bandwidth_words_per_cycle > 0,
            "link bandwidth must be nonzero"
        );
        assert!(
            self.queue_capacity > 0,
            "link queue capacity must be nonzero"
        );
        self.retry.validate();
    }
}

/// Payload of one link message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkBody {
    /// A sequenced chunk of vertex updates on the flow `src -> dst`.
    Updates {
        /// Per-flow sequence number, starting at 1.
        seq: u64,
        /// `(vertex, raw value)` updates carried by this chunk.
        updates: Vec<(u32, u32)>,
    },
    /// Cumulative acknowledgement for the reverse flow `dst -> src`:
    /// every payload with `seq <= cum` was received.
    Ack {
        /// Highest in-order sequence number received.
        cum: u64,
    },
}

/// One message between two devices (a payload chunk or an ack).
#[derive(Debug, Clone)]
pub struct LinkMessage {
    /// Originating device.
    pub src: usize,
    /// Device the message is destined for.
    pub dst: usize,
    /// Payload or acknowledgement.
    pub body: LinkBody,
    /// Last link index this message traversed (for trace attribution).
    last_link: usize,
}

impl LinkMessage {
    /// Message size in 32-bit words on the wire: header plus two words
    /// per update, or header plus one word for an ack.
    pub fn words(&self, header_words: u32) -> u64 {
        match &self.body {
            LinkBody::Updates { updates, .. } => header_words as u64 + 2 * updates.len() as u64,
            LinkBody::Ack { .. } => header_words as u64 + 1,
        }
    }
}

/// Transmit side of one flow: sliding window plus retransmit buffer.
#[derive(Debug, Default)]
struct FlowTx {
    /// Next sequence number to assign (sequences start at 1).
    next_seq: u64,
    /// Highest cumulatively acked sequence number.
    cum_acked: u64,
    /// Sent-but-unacked payloads, in sequence order (the bounded
    /// retransmit buffer — its length never exceeds the window).
    unacked: VecDeque<TxEntry>,
    /// Chunks waiting for window space.
    backlog: VecDeque<Vec<(u32, u32)>>,
}

#[derive(Debug)]
struct TxEntry {
    seq: u64,
    updates: Vec<(u32, u32)>,
    /// Cycle at which the pending ack times out.
    deadline: Cycle,
    /// Current timeout (doubles per retransmission up to the cap).
    rto: Cycle,
    /// Transmissions so far (1 = original only).
    attempts: u32,
}

impl FlowTx {
    fn quiesced(&self) -> bool {
        self.unacked.is_empty() && self.backlog.is_empty()
    }
}

/// Receive side of one flow: in-order cursor plus reorder window.
#[derive(Debug)]
struct FlowRx {
    /// Sequence number the next in-order payload must carry.
    next_expected: u64,
    /// Out-of-order payloads held for reassembly.
    reorder: BTreeMap<u64, Vec<(u32, u32)>>,
}

impl Default for FlowRx {
    fn default() -> Self {
        FlowRx {
            next_expected: 1,
            reorder: BTreeMap::new(),
        }
    }
}

/// One directed physical link of the network.
#[derive(Debug)]
struct LinkState {
    from: usize,
    to: usize,
    /// Input queue at the transmitting side (two-phase, bounded).
    q: Fifo<LinkMessage>,
    /// Cycle at which the in-progress serialization completes.
    busy_until: Cycle,
    /// Serialized messages in flight, `(arrival cycle, message)`;
    /// arrival times are monotone because serialization is serial.
    inflight: VecDeque<(Cycle, LinkMessage)>,
    busy_cycles: u64,
    words: u64,
    messages: u64,
    retransmits: u64,
    acks: u64,
    dup_drops: u64,
    tracer: Tracer,
}

impl LinkState {
    fn idle(&self) -> bool {
        self.q.is_empty() && self.inflight.is_empty()
    }

    fn reset_traffic(&mut self) {
        self.q.clear();
        self.inflight.clear();
        self.busy_until = 0;
    }

    fn diagnostic(&self, i: usize) -> DiagnosticSection {
        let mut s = DiagnosticSection::new(format!("link[{i}]"));
        s.push("route", format!("{} -> {}", self.from, self.to));
        s.push("queued", self.q.len());
        s.push("inflight", self.inflight.len());
        s.push("messages", self.messages);
        s.push("words", self.words);
        s.push("busy_cycles", self.busy_cycles);
        s.push("retransmits", self.retransmits);
        s.push("acks", self.acks);
        s.push("dup_drops", self.dup_drops);
        s
    }
}

/// Cumulative statistics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Transmitting device.
    pub from: usize,
    /// Receiving device.
    pub to: usize,
    /// Cycles the link spent serializing.
    pub busy_cycles: u64,
    /// Words transferred.
    pub words: u64,
    /// Messages transferred.
    pub messages: u64,
    /// Payloads retransmitted over this link (first hop of the flow).
    pub retransmits: u64,
    /// Acks delivered over this link (final hop of the reverse flow).
    pub acks: u64,
    /// Duplicate payloads discarded at this link's receiving device.
    pub dup_drops: u64,
}

/// Aggregated link-network statistics of one fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkNetworkStats {
    /// Wiring in effect.
    pub topology: LinkTopology,
    /// Total cycles spent in exchange phases (the barrier-to-barrier link
    /// time added on top of compute).
    pub exchange_cycles: Cycle,
    /// Payload chunks injected by owner devices (first transmissions
    /// only; retransmissions and acks are counted separately).
    pub messages_sent: u64,
    /// Payload chunks applied in order at their final consumer.
    pub messages_delivered: u64,
    /// Messages (payloads and acks) dropped by the link fault injector.
    pub messages_dropped: u64,
    /// Vertex updates carried (each is two payload words).
    pub updates: u64,
    /// Payload retransmissions triggered by ack timeouts.
    pub retransmissions: u64,
    /// Cumulative acks delivered.
    pub acks: u64,
    /// Duplicate payloads discarded by receivers.
    pub dup_drops: u64,
    /// Per-directed-link cumulative statistics.
    pub per_link: Vec<LinkStats>,
}

impl LinkNetworkStats {
    /// Mean busy fraction over all links, relative to `total_cycles` of
    /// the run. Zero for a single-device fabric (no links).
    pub fn mean_occupancy(&self, total_cycles: Cycle) -> f64 {
        if self.per_link.is_empty() || total_cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_link.iter().map(|l| l.busy_cycles).sum();
        busy as f64 / (self.per_link.len() as u64 * total_cycles) as f64
    }

    /// Busiest single link's busy fraction relative to `total_cycles`.
    pub fn peak_occupancy(&self, total_cycles: Cycle) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.per_link
            .iter()
            .map(|l| l.busy_cycles as f64 / total_cycles as f64)
            .fold(0.0, f64::max)
    }
}

/// Result of a completed fabric run.
#[derive(Debug)]
pub struct FabricRunResult {
    /// Total simulated cycles (all device clocks agree at the end).
    pub cycles: Cycle,
    /// Globally synchronous iterations executed.
    pub iterations: u32,
    /// Edges processed, summed over devices.
    pub edges_processed: u64,
    /// Final per-node values, assembled from each owner device.
    pub values: Vec<u32>,
    /// Number of devices in the fabric.
    pub devices: usize,
    /// Merged statistics from every device.
    pub stats: Stats,
    /// PE cycle attribution summed over every device's PEs, including the
    /// fabric-only `link_wait` class.
    pub pe_cycles: PeCycleBreakdown,
    /// Link-network statistics.
    pub link: LinkNetworkStats,
    /// Checkpoint/rollback account (empty attempts when nothing tripped).
    pub recovery: RecoveryReport,
    /// Link-track event stream (device-internal traces are not merged:
    /// track ids would collide across devices).
    pub trace: TraceReport,
}

impl FabricRunResult {
    /// Throughput in edges per cycle.
    pub fn edges_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.edges_processed as f64 / self.cycles as f64
        }
    }

    /// Throughput in GTEPS at the given clock frequency.
    pub fn gteps(&self, freq_mhz: f64) -> f64 {
        self.edges_per_cycle() * freq_mhz / 1000.0
    }
}

/// Why a fabric run terminated without a result.
#[derive(Debug)]
pub enum FabricError {
    /// The host wall-clock deadline expired mid-run.
    TimedOut,
    /// A device's own no-progress watchdog tripped during its compute
    /// phase.
    DeviceStalled {
        /// Which device stalled.
        device: usize,
        /// The device's diagnostic dump.
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The link exchange made no progress for the fabric watchdog
    /// threshold, or a payload exhausted its retransmission budget
    /// (e.g. a black-hole link fault starving the barrier).
    LinkStalled(Box<DiagnosticSnapshot>),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::TimedOut => write!(f, "wall-clock deadline expired"),
            FabricError::DeviceStalled { device, snapshot } => {
                write!(f, "device {device} stalled: {snapshot}")
            }
            FabricError::LinkStalled(snapshot) => {
                write!(f, "link exchange stalled: {snapshot}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Index of the link a message waiting at `at` takes toward `dst`.
fn route_idx(topology: LinkTopology, n: usize, at: usize, dst: usize) -> usize {
    debug_assert!(at != dst);
    match topology {
        // Links were built from-major with the self-link skipped.
        LinkTopology::AllToAll => at * (n - 1) + if dst > at { dst - 1 } else { dst },
        LinkTopology::Ring => at,
    }
}

/// N sharded [`System`] devices joined by a cycle-level link network.
#[derive(Debug)]
pub struct Fabric {
    devices: Vec<System>,
    map: DeviceMap,
    algo: Algorithm,
    link_cfg: LinkConfig,
    links: Vec<LinkState>,
    /// Host-side mirror of the globally consistent `V_in` values; the
    /// per-iteration diff against it yields the remote updates.
    mirror: Vec<u32>,
    qs: usize,
    max_iter: u32,
    fault: FaultInjector<LinkMessage>,
    /// Drops accumulated by fault injectors replaced on rollback.
    dropped_carried: u64,
    /// Effective initial retransmission timeout (configured rto floored
    /// at a few worst-case round-trips).
    rto_base: Cycle,
    /// Per-flow transmit state, indexed `src * n + dst`.
    flows_tx: Vec<FlowTx>,
    /// Per-flow receive state, indexed `src * n + dst`.
    flows_rx: Vec<FlowRx>,
    /// Cumulative exchange-phase cycles.
    exchange_cycles: Cycle,
    messages_sent: u64,
    messages_delivered: u64,
    updates_total: u64,
    retransmits_total: u64,
    acks_total: u64,
    dup_drops_total: u64,
    /// Rollback machinery: policy, checkpoint ring, and the materials to
    /// rebuild devices from scratch (graph kept only when recovery is on).
    recovery: Option<RecoveryConfig>,
    store: CheckpointStore,
    report: RecoveryReport,
    graph: Option<CooGraph>,
    partitioner: Partitioner,
    sys_cfg: SystemConfig,
    /// Stats harvested from devices torn down during recovery.
    carried_stats: Stats,
    carried_pe: PeCycleBreakdown,
    tracer: Tracer,
    trace_cfg: TraceConfig,
    /// Resolved host worker threads for the compute phase (1 = the plain
    /// sequential loop).
    sim_threads: usize,
}

impl Fabric {
    /// Builds a fabric of `rc.devices` devices for `g`, forcing the
    /// paper's synchronous execution mode globally (the barrier protocol
    /// requires it; a synchronous single-device run is the `devices = 1`
    /// special case and stays cycle-identical).
    ///
    /// # Panics
    ///
    /// Panics if the run or link configuration is invalid.
    pub fn new(g: &CooGraph, algo: Algorithm, rc: &RunConfig) -> Self {
        let n = rc.devices.max(1);
        rc.link.validate();
        let mut dev_rc = rc.clone();
        dev_rc.execution = ExecutionMode::ForceSynchronous;
        let (cfg, partitioner) = dev_rc.build();
        let map = DeviceMap::new(partitioner, g.num_nodes(), n);
        let devices: Vec<System> = (0..n)
            .map(|dev| {
                let local = map.extract_local(g, dev);
                System::new_sharded(g, &local, partitioner, algo, cfg.clone())
            })
            .collect();
        let mirror: Vec<u32> = (0..g.num_nodes())
            .map(|v| devices[0].read_node_in(v))
            .collect();
        let qs = devices[0].num_source_intervals();
        let max_iter = devices[0].resolved_max_iterations();
        let links = Self::build_links(n, &rc.link, &rc.trace);
        // Floor the rto at two worst-case round-trips so congested (not
        // lossy) links don't retransmit spuriously: a full chunk
        // serialized at the configured bandwidth plus flight latency, per
        // hop of the longest route.
        let retry = rc.link.retry;
        let hops = match rc.link.topology {
            LinkTopology::AllToAll => 1,
            LinkTopology::Ring => n.saturating_sub(1).max(1),
        } as u64;
        let chunk_words = rc.link.header_words as u64 + 2 * retry.max_updates_per_message as u64;
        let ser = chunk_words
            .div_ceil(rc.link.bandwidth_words_per_cycle as u64)
            .max(1);
        let rto_base = retry.rto.max(2 * hops * (ser + rc.link.latency) + 64);
        Fabric {
            qs,
            max_iter,
            devices,
            map,
            algo,
            link_cfg: rc.link,
            links,
            mirror,
            fault: FaultInjector::new(rc.link.fault),
            dropped_carried: 0,
            rto_base,
            flows_tx: (0..n * n).map(|_| FlowTx::default()).collect(),
            flows_rx: (0..n * n).map(|_| FlowRx::default()).collect(),
            exchange_cycles: 0,
            messages_sent: 0,
            messages_delivered: 0,
            updates_total: 0,
            retransmits_total: 0,
            acks_total: 0,
            dup_drops_total: 0,
            recovery: rc.recovery,
            store: CheckpointStore::new(rc.recovery.map(|r| r.retention).unwrap_or(1)),
            report: RecoveryReport::default(),
            graph: rc.recovery.map(|_| g.clone()),
            partitioner,
            sys_cfg: cfg,
            carried_stats: Stats::new(),
            carried_pe: PeCycleBreakdown::default(),
            tracer: Tracer::for_track(Track::fabric(), &rc.trace),
            trace_cfg: rc.trace,
            sim_threads: simkit::epoch::resolve_threads(rc.sim_threads, n),
        }
    }

    fn build_links(n: usize, cfg: &LinkConfig, trace: &TraceConfig) -> Vec<LinkState> {
        let mut links = Vec::new();
        if n < 2 {
            return links;
        }
        let mut mk = |from: usize, to: usize| {
            let i = links.len();
            links.push(LinkState {
                from,
                to,
                q: Fifo::new(cfg.queue_capacity),
                busy_until: 0,
                inflight: VecDeque::new(),
                busy_cycles: 0,
                words: 0,
                messages: 0,
                retransmits: 0,
                acks: 0,
                dup_drops: 0,
                tracer: Tracer::for_track(Track::link(i), trace),
            });
        };
        match cfg.topology {
            LinkTopology::AllToAll => {
                for from in 0..n {
                    for to in 0..n {
                        if from != to {
                            mk(from, to);
                        }
                    }
                }
            }
            LinkTopology::Ring => {
                for from in 0..n {
                    mk(from, (from + 1) % n);
                }
            }
        }
        links
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Resolved host worker threads for the compute phase.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// The device-ownership map in effect.
    pub fn device_map(&self) -> &DeviceMap {
        &self.map
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics with the rendered diagnostics if a device or the link
    /// exchange stalls; use [`run_to_outcome`](Self::run_to_outcome) to
    /// handle stalls programmatically.
    pub fn run(&mut self) -> FabricRunResult {
        match self.run_to_outcome(None) {
            Ok(r) => r,
            Err(FabricError::TimedOut) => {
                unreachable!("run without a deadline cannot time out")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs to completion, reporting timeouts and stalls as structured
    /// [`FabricError`]s. When [`RecoveryConfig`] is set, watchdog trips
    /// roll back to the newest checkpoint and replay instead (bounded by
    /// `max_attempts`); the result's [`RecoveryReport`] records every
    /// rollback.
    ///
    /// After any `Err` the partially simulated state is inconsistent; do
    /// not run the same instance again.
    ///
    /// # Errors
    ///
    /// [`FabricError::TimedOut`] when the host wall clock passes
    /// `deadline`; [`FabricError::DeviceStalled`] /
    /// [`FabricError::LinkStalled`] when a watchdog trips and recovery is
    /// off or exhausted.
    pub fn run_to_outcome(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<FabricRunResult, FabricError> {
        let n = self.devices.len();
        let mut active = vec![true; self.qs];
        let mut iterations = 0u32;
        let mut edges_per_device = vec![0u64; n];
        let mut stepped = vec![false; n];

        // Implicit initial checkpoint: a failure in the very first
        // iterations still has somewhere to roll back to.
        if self.recovery.is_some() {
            self.save_checkpoint(0, 0, &active, &edges_per_device);
        }

        'iterations: while iterations < self.max_iter {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(FabricError::TimedOut);
                }
            }
            // Compute phase: every device publishes the same global active
            // flags, schedules its local jobs, and runs its iteration
            // unmodified. Devices share no state between barriers, so the
            // epoch runs them on `sim_threads` workers; outcomes land in
            // per-device slots and are handled below in ascending device
            // order, which keeps every observable byte-identical to
            // `sim_threads = 1` (the plain in-order loop). Every stepped
            // device finishes its iteration before any stall is answered —
            // rollback discards their state anyway, and processing the
            // lowest-index stall first makes the recovery order
            // independent of worker scheduling.
            let mut total_jobs = 0usize;
            for (i, dev) in self.devices.iter_mut().enumerate() {
                let jobs = dev.begin_iteration(iterations, &active);
                stepped[i] = jobs > 0;
                total_jobs += jobs;
            }
            if total_jobs == 0 {
                break;
            }
            let outcomes = {
                let stepped = &stepped;
                simkit::epoch::run_epoch(&mut self.devices, self.sim_threads, |i, dev| {
                    stepped[i].then(|| dev.step_iteration(iterations, deadline))
                })
            };
            let mut stall: Option<(usize, Box<DiagnosticSnapshot>)> = None;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    None => {}
                    Some(Ok(edges)) => edges_per_device[i] += edges,
                    Some(Err(RunError::TimedOut)) => return Err(FabricError::TimedOut),
                    // The lowest device index wins, matching the order the
                    // sequential loop would have surfaced the stall in.
                    Some(Err(RunError::Stalled(snapshot))) if stall.is_none() => {
                        stall = Some((i, snapshot));
                    }
                    Some(Err(RunError::Stalled(_))) => {}
                }
            }
            if let Some((device, snapshot)) = stall {
                let err = FabricError::DeviceStalled { device, snapshot };
                self.recover(err, &mut active, &mut iterations, &mut edges_per_device)?;
                continue 'iterations;
            }
            iterations += 1;

            // Global Template-1 control: OR over the devices that ran.
            let cont = self.algo.always_active()
                || (0..n).any(|i| stepped[i] && self.devices[i].continues());
            if !cont || iterations >= self.max_iter {
                break;
            }
            let mut next = vec![self.algo.always_active(); self.qs];
            if !self.algo.always_active() {
                for (dev, &ran) in self.devices.iter().zip(&stepped) {
                    if !ran {
                        continue;
                    }
                    for (f, d) in next.iter_mut().zip(dev.next_active_srcs()) {
                        *f |= d;
                    }
                }
            }

            // Every device performs the synchronous inter-iteration host
            // work on its own replica (carry + buffer swap), exactly as
            // the single-device loop does.
            for dev in &mut self.devices {
                dev.advance_synchronous_frontier();
            }

            // Diff each owner's slice against the global mirror to find
            // the remote updates this iteration produced.
            let updates = self.collect_updates();

            // Barrier + link exchange: devices park at the barrier while
            // the network carries the updates to every consumer replica.
            let barrier = self.devices.iter().map(System::now).max().unwrap_or(0);
            let exchange = match self.exchange(barrier, updates, deadline) {
                Ok(exchange) => exchange,
                Err(FabricError::TimedOut) => return Err(FabricError::TimedOut),
                Err(err) => {
                    self.recover(err, &mut active, &mut iterations, &mut edges_per_device)?;
                    continue 'iterations;
                }
            };
            self.exchange_cycles += exchange;
            let resume = barrier + exchange;
            for dev in &mut self.devices {
                dev.wait_at_barrier(resume);
            }

            active = next;

            // Barrier checkpoint: mirror and replicas are globally
            // consistent here, so this is a complete recovery point.
            if let Some(rec) = self.recovery {
                if iterations.is_multiple_of(rec.checkpoint_interval.max(1)) {
                    self.save_checkpoint(iterations, resume, &active, &edges_per_device);
                }
            }
        }

        // Final barrier: align every device clock so `cycles` is the
        // global completion time.
        let end = self.devices.iter().map(System::now).max().unwrap_or(0);
        for dev in &mut self.devices {
            dev.wait_at_barrier(end);
        }
        Ok(self.finish(iterations, &edges_per_device))
    }

    /// Snapshots the globally consistent barrier state.
    fn save_checkpoint(&mut self, iteration: u32, cycle: Cycle, active: &[bool], edges: &[u64]) {
        self.store.save(Checkpoint {
            iteration,
            cycle,
            values: self.mirror.clone(),
            active: active.to_vec(),
            edges: edges.to_vec(),
        });
        self.report.checkpoints_taken += 1;
        self.tracer
            .event(cycle, EventKind::CheckpointSave, iteration as u64);
    }

    /// Answers a watchdog trip: rolls every shard back to the newest
    /// checkpoint, resets the link protocol (queues, flows, and the fault
    /// injector — a link reset also re-arms a black-holed link's grace
    /// window), and charges `reset_cycles` of downtime. Returns the
    /// original error when recovery is off, exhausted, or impossible.
    fn recover(
        &mut self,
        err: FabricError,
        active: &mut Vec<bool>,
        iterations: &mut u32,
        edges: &mut [u64],
    ) -> Result<(), FabricError> {
        let Some(rec) = self.recovery else {
            return Err(err);
        };
        if self.report.attempts.len() as u32 >= rec.max_attempts {
            return Err(err);
        }
        let Some(ckpt) = self.store.latest().cloned() else {
            return Err(err);
        };
        let cause = match &err {
            FabricError::DeviceStalled { device, .. } => {
                RecoveryCause::DeviceStalled { device: *device }
            }
            FabricError::LinkStalled(_) => RecoveryCause::LinkStalled,
            FabricError::TimedOut => return Err(err),
        };
        let crash = self.devices.iter().map(System::now).max().unwrap_or(0);
        let resume = crash + rec.reset_cycles;

        match cause {
            RecoveryCause::DeviceStalled { .. } => {
                // The stalled device is wedged mid-iteration and its peers
                // hold partially advanced state: rebuild every shard from
                // the graph and reload the checkpointed values.
                self.rebuild_devices(&ckpt, resume);
            }
            RecoveryCause::LinkStalled => {
                // Devices are parked at the barrier with clean pipelines;
                // reloading `V_in` is sufficient (the MOMS caches are a
                // timing model — data is read from the image at response
                // time, so no invalidation is needed).
                for dev in &mut self.devices {
                    for (v, &val) in ckpt.values.iter().enumerate() {
                        dev.write_node_in(v as u32, val);
                    }
                    dev.wait_at_barrier(resume);
                }
            }
        }

        self.mirror.copy_from_slice(&ckpt.values);
        *active = ckpt.active.clone();
        *iterations = ckpt.iteration;
        edges.copy_from_slice(&ckpt.edges);
        self.reset_network();
        self.tracer
            .event(resume, EventKind::Rollback, ckpt.iteration as u64);
        let cycles_lost = resume.saturating_sub(ckpt.cycle);
        self.report.attempts.push(RecoveryAttempt {
            cause,
            at_cycle: crash,
            resumed_iteration: ckpt.iteration,
            cycles_lost,
        });
        self.report.total_cycles_lost += cycles_lost;
        Ok(())
    }

    /// Replaces every device with a freshly built shard loaded from
    /// `ckpt`, harvesting the torn-down devices' statistics first.
    fn rebuild_devices(&mut self, ckpt: &Checkpoint, resume: Cycle) {
        for dev in &mut self.devices {
            let r = dev.finish(0, 0);
            self.carried_stats.merge(&r.stats);
            self.carried_pe.accumulate(&r.metrics.pe_cycles);
        }
        let g = self
            .graph
            .as_ref()
            .expect("recovery keeps the source graph");
        let n = self.devices.len();
        let partitioner = self.partitioner;
        let algo = self.algo;
        let cfg = self.sys_cfg.clone();
        self.devices = (0..n)
            .map(|dev| {
                let local = self.map.extract_local(g, dev);
                System::new_sharded(g, &local, partitioner, algo, cfg.clone())
            })
            .collect();
        for dev in &mut self.devices {
            for (v, &val) in ckpt.values.iter().enumerate() {
                dev.write_node_in(v as u32, val);
            }
            dev.align_clock(resume);
        }
    }

    /// Clears every link queue, resets all flow protocol state, and
    /// replaces the fault injector (same config and seed: the schedule is
    /// deterministic per reset epoch).
    fn reset_network(&mut self) {
        for link in &mut self.links {
            link.reset_traffic();
        }
        for tx in &mut self.flows_tx {
            *tx = FlowTx::default();
        }
        for rx in &mut self.flows_rx {
            *rx = FlowRx::default();
        }
        self.dropped_carried += self.fault.dropped();
        self.fault = FaultInjector::new(self.link_cfg.fault);
    }

    /// Per-owner changed `(vertex, value)` lists, updating the mirror.
    fn collect_updates(&mut self) -> Vec<Vec<(u32, u32)>> {
        let n = self.devices.len();
        let mut updates = vec![Vec::new(); n];
        for (dev, list) in updates.iter_mut().enumerate() {
            for v in self.map.device_nodes(dev) {
                let cur = self.devices[dev].read_node_in(v);
                if cur != self.mirror[v as usize] {
                    self.mirror[v as usize] = cur;
                    list.push((v, cur));
                }
            }
        }
        updates
    }

    /// Admits backlogged chunks of `flow` (from device `src` to `dst`)
    /// into the sliding window, handing the messages to `outbox`.
    fn pump_flow(
        flow: &mut FlowTx,
        src: usize,
        dst: usize,
        now: Cycle,
        rto_base: Cycle,
        window: usize,
        outbox: &mut [VecDeque<LinkMessage>],
    ) {
        while flow.unacked.len() < window {
            let Some(updates) = flow.backlog.pop_front() else {
                break;
            };
            flow.next_seq += 1;
            let seq = flow.next_seq;
            outbox[src].push_back(LinkMessage {
                src,
                dst,
                body: LinkBody::Updates {
                    seq,
                    updates: updates.clone(),
                },
                last_link: usize::MAX,
            });
            flow.unacked.push_back(TxEntry {
                seq,
                updates,
                deadline: now + rto_base,
                rto: rto_base,
                attempts: 1,
            });
        }
    }

    /// Simulates one barrier exchange starting at absolute cycle `start`;
    /// returns its length in cycles. Updates are applied to every
    /// consumer replica as their payloads are delivered in order; the
    /// exchange ends when the network fully quiesces (every payload
    /// applied, every flow acked, every queue drained).
    fn exchange(
        &mut self,
        start: Cycle,
        updates: Vec<Vec<(u32, u32)>>,
        deadline: Option<Instant>,
    ) -> Result<Cycle, FabricError> {
        let n = self.devices.len();
        if n < 2 {
            return Ok(0);
        }
        let retry = self.link_cfg.retry;
        let topology = self.link_cfg.topology;
        // Owner broadcasts: sequenced payload chunks per (owner, consumer)
        // flow; the topology decides the path and cost.
        let mut outbox: Vec<VecDeque<LinkMessage>> = vec![VecDeque::new(); n];
        let mut expected = 0u64;
        for (src, list) in updates.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            self.updates_total += (n as u64 - 1) * list.len() as u64;
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let flow = &mut self.flows_tx[src * n + dst];
                for chunk in list.chunks(retry.max_updates_per_message) {
                    flow.backlog.push_back(chunk.to_vec());
                    expected += 1;
                }
                Self::pump_flow(
                    flow,
                    src,
                    dst,
                    start,
                    self.rto_base,
                    retry.window,
                    &mut outbox,
                );
            }
        }
        self.messages_sent += expected;
        if expected == 0 {
            return Ok(0);
        }

        let mut watchdog = self.link_cfg.watchdog_cycles.map(Watchdog::new);
        if let Some(w) = &mut watchdog {
            w.note_progress(start);
        }
        let header = self.link_cfg.header_words;
        let bw = self.link_cfg.bandwidth_words_per_cycle as u64;
        let latency = self.link_cfg.latency;
        let mut delivered = 0u64;
        let mut t: Cycle = 0;
        loop {
            let now = start + t;

            // 1. Arrivals: messages whose flight latency elapsed reach the
            //    link's receiving device — final consumers go through the
            //    fault injector, intermediates re-enter the router.
            for li in 0..self.links.len() {
                while let Some(&(arrive, _)) = self.links[li].inflight.front() {
                    if arrive > now {
                        break;
                    }
                    let (_, mut msg) = self.links[li].inflight.pop_front().unwrap();
                    msg.last_link = li;
                    let at = self.links[li].to;
                    if msg.dst == at {
                        let before = self.fault.dropped();
                        self.fault.offer(now, msg);
                        if self.fault.dropped() > before {
                            self.links[li]
                                .tracer
                                .event(now, EventKind::LinkDrop, at as u64);
                        }
                    } else {
                        outbox[at].push_back(msg);
                    }
                }
            }

            // 2. Deliveries: released payloads are deduped/reassembled per
            //    flow and applied in order; every payload arrival is
            //    answered with a cumulative ack; released acks advance the
            //    transmit window.
            while let Some(msg) = self.fault.pop_ready(now) {
                let li = msg.last_link;
                match msg.body {
                    LinkBody::Updates { seq, updates } => {
                        let flow = &mut self.flows_rx[msg.src * n + msg.dst];
                        if seq < flow.next_expected || flow.reorder.contains_key(&seq) {
                            // Already applied or already held: discard,
                            // but re-ack (the original ack may be lost).
                            self.links[li].dup_drops += 1;
                            self.dup_drops_total += 1;
                            self.links[li]
                                .tracer
                                .event(now, EventKind::LinkDupDrop, seq);
                        } else if seq == flow.next_expected {
                            self.links[li]
                                .tracer
                                .event(now, EventKind::LinkRx, msg.src as u64);
                            for &(v, val) in &updates {
                                self.devices[msg.dst].write_node_in(v, val);
                            }
                            flow.next_expected += 1;
                            delivered += 1;
                            // Reassemble any consecutive held payloads.
                            while let Some(held) = flow.reorder.remove(&flow.next_expected) {
                                for &(v, val) in &held {
                                    self.devices[msg.dst].write_node_in(v, val);
                                }
                                flow.next_expected += 1;
                                delivered += 1;
                            }
                            if let Some(w) = &mut watchdog {
                                w.note_progress(now);
                            }
                        } else if flow.reorder.len() < retry.reorder_window {
                            self.links[li]
                                .tracer
                                .event(now, EventKind::LinkRx, msg.src as u64);
                            flow.reorder.insert(seq, updates);
                        }
                        // Beyond the reorder window the payload is
                        // silently discarded; retransmission covers it.
                        let cum = flow.next_expected - 1;
                        outbox[msg.dst].push_back(LinkMessage {
                            src: msg.dst,
                            dst: msg.src,
                            body: LinkBody::Ack { cum },
                            last_link: usize::MAX,
                        });
                    }
                    LinkBody::Ack { cum } => {
                        self.links[li].acks += 1;
                        self.acks_total += 1;
                        self.links[li].tracer.event(now, EventKind::LinkAck, cum);
                        let flow = &mut self.flows_tx[msg.dst * n + msg.src];
                        if cum > flow.cum_acked {
                            flow.cum_acked = cum;
                            while flow.unacked.front().is_some_and(|e| e.seq <= cum) {
                                flow.unacked.pop_front();
                            }
                            Self::pump_flow(
                                flow,
                                msg.dst,
                                msg.src,
                                now,
                                self.rto_base,
                                retry.window,
                                &mut outbox,
                            );
                            if let Some(w) = &mut watchdog {
                                w.note_progress(now);
                            }
                        }
                    }
                }
            }

            // 3. Quiesce check: every payload applied in order, every
            //    flow's window empty, nothing queued, staged, in flight,
            //    or held by the injector.
            if delivered == expected
                && self.flows_tx.iter().all(FlowTx::quiesced)
                && self.links.iter().all(LinkState::idle)
                && self.fault.pending() == 0
                && outbox.iter().all(VecDeque::is_empty)
            {
                self.messages_delivered += delivered;
                // The exchange ends one cycle after the last delivery.
                return Ok(t + 1);
            }

            // 4. Retransmissions: unacked payloads whose timeout elapsed
            //    re-enter the network with doubled timeouts; a payload
            //    that exhausts its attempts declares the flow dead.
            let mut exhausted = false;
            #[allow(clippy::needless_range_loop)] // outbox is pushed to while flows are iterated
            'scan: for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let li = route_idx(topology, n, src, dst);
                    let flow = &mut self.flows_tx[src * n + dst];
                    for entry in &mut flow.unacked {
                        if now < entry.deadline {
                            continue;
                        }
                        if entry.attempts >= retry.max_attempts {
                            exhausted = true;
                            break 'scan;
                        }
                        entry.attempts += 1;
                        entry.rto = retry.next_rto(entry.rto);
                        entry.deadline = now + entry.rto;
                        self.links[li].retransmits += 1;
                        self.retransmits_total += 1;
                        self.links[li]
                            .tracer
                            .event(now, EventKind::LinkRetransmit, entry.seq);
                        outbox[src].push_back(LinkMessage {
                            src,
                            dst,
                            body: LinkBody::Updates {
                                seq: entry.seq,
                                updates: entry.updates.clone(),
                            },
                            last_link: usize::MAX,
                        });
                    }
                }
            }
            if exhausted {
                self.exchange_cycles += t;
                self.messages_delivered += delivered;
                return Err(FabricError::LinkStalled(Box::new(self.link_diagnostics(
                    now,
                    watchdog.as_ref(),
                    expected,
                    delivered,
                ))));
            }

            // 5. Serialization: an idle link starts transmitting the
            //    oldest queued message.
            for link in &mut self.links {
                if now < link.busy_until || link.q.visible_len() == 0 {
                    continue;
                }
                let msg = link.q.pop().unwrap();
                let words = msg.words(header);
                let ser = words.div_ceil(bw).max(1);
                link.busy_until = now + ser;
                link.busy_cycles += ser;
                link.words += words;
                link.messages += 1;
                link.tracer.event(now, EventKind::LinkTx, msg.dst as u64);
                link.inflight.push_back((now + ser + latency, msg));
            }

            // 6. Routing: devices inject waiting messages into their
            //    outgoing link queues while there is room (bounded queues
            //    exert backpressure).
            for (at, waiting) in outbox.iter_mut().enumerate() {
                while let Some(front) = waiting.front() {
                    let li = route_idx(topology, n, at, front.dst);
                    if !self.links[li].q.can_push() {
                        break;
                    }
                    let msg = waiting.pop_front().unwrap();
                    self.links[li].q.push(msg).expect("checked can_push");
                }
            }

            // 7. Clock edge: staged queue entries become visible.
            for link in &mut self.links {
                link.q.tick();
            }

            if let Some(w) = &watchdog {
                if w.is_stalled(now) {
                    self.exchange_cycles += t;
                    self.messages_delivered += delivered;
                    return Err(FabricError::LinkStalled(Box::new(self.link_diagnostics(
                        now,
                        Some(w),
                        expected,
                        delivered,
                    ))));
                }
            }
            if t.is_multiple_of(4096) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(FabricError::TimedOut);
                    }
                }
            }
            t += 1;
        }
    }

    fn link_diagnostics(
        &self,
        now: Cycle,
        watchdog: Option<&Watchdog>,
        expected: u64,
        delivered: u64,
    ) -> DiagnosticSnapshot {
        let n = self.devices.len();
        let mut sections = Vec::new();
        let mut fabric = DiagnosticSection::new("fabric");
        fabric.push("devices", n);
        fabric.push("topology", self.link_cfg.topology.name());
        fabric.push("expected_messages", expected);
        fabric.push("delivered_messages", delivered);
        fabric.push("retransmissions", self.retransmits_total);
        fabric.push("acks", self.acks_total);
        fabric.push("dup_drops", self.dup_drops_total);
        fabric.push("recovery_attempts", self.report.attempts.len());
        sections.push(fabric);
        // Transport state of every flow that still has protocol work in
        // flight — the first thing to read on a stall.
        let mut transport = DiagnosticSection::new("transport");
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let tx = &self.flows_tx[src * n + dst];
                let rx = &self.flows_rx[src * n + dst];
                if tx.quiesced() && rx.reorder.is_empty() {
                    continue;
                }
                transport.push(
                    format!("flow[{src}->{dst}]"),
                    format!(
                        "next_seq={} cum_acked={} unacked={} backlog={} \
                         rx_expected={} reorder_held={}",
                        tx.next_seq,
                        tx.cum_acked,
                        tx.unacked.len(),
                        tx.backlog.len(),
                        rx.next_expected,
                        rx.reorder.len()
                    ),
                );
            }
        }
        if !transport.entries.is_empty() {
            sections.push(transport);
        }
        for (i, link) in self.links.iter().enumerate() {
            if !link.idle() || link.messages > 0 {
                sections.push(link.diagnostic(i));
            }
        }
        sections.push(self.fault.diagnostic());
        DiagnosticSnapshot {
            cycle: now,
            last_progress: watchdog.map_or(now, Watchdog::last_progress),
            threshold: watchdog.map_or(0, Watchdog::threshold),
            sections,
        }
    }

    /// Assembles the fabric result from every device's finished state.
    fn finish(&mut self, iterations: u32, edges_per_device: &[u64]) -> FabricRunResult {
        let n = self.devices.len();
        let cycles = self.devices.iter().map(System::now).max().unwrap_or(0);
        let mut values = vec![0u32; self.mirror.len()];
        let mut stats = Stats::new();
        let mut pe_cycles = PeCycleBreakdown::default();
        stats.merge(&self.carried_stats);
        pe_cycles.accumulate(&self.carried_pe);
        for (i, dev) in self.devices.iter_mut().enumerate() {
            let r = dev.finish(iterations, edges_per_device[i]);
            let nodes = self.map.device_nodes(i);
            let range = nodes.start as usize..nodes.end as usize;
            values[range.clone()].copy_from_slice(&r.values[range]);
            stats.merge(&r.stats);
            pe_cycles.accumulate(&r.metrics.pe_cycles);
        }
        let per_link: Vec<LinkStats> = self
            .links
            .iter()
            .map(|l| LinkStats {
                from: l.from,
                to: l.to,
                busy_cycles: l.busy_cycles,
                words: l.words,
                messages: l.messages,
                retransmits: l.retransmits,
                acks: l.acks,
                dup_drops: l.dup_drops,
            })
            .collect();
        let dropped_events: u64 =
            self.links.iter().map(|l| l.tracer.dropped()).sum::<u64>() + self.tracer.dropped();
        let mut streams: Vec<_> = self
            .links
            .iter_mut()
            .map(|l| l.tracer.take())
            .collect::<Vec<_>>();
        streams.push(self.tracer.take());
        let link_events = merge_events(streams);
        let trace = if self.trace_cfg.records_events() {
            TraceReport {
                events: link_events,
                counters: Vec::new(),
                dropped: dropped_events,
                cycles,
            }
        } else {
            TraceReport::default()
        };
        FabricRunResult {
            cycles,
            iterations,
            edges_processed: edges_per_device.iter().sum(),
            values,
            devices: n,
            stats,
            pe_cycles,
            link: LinkNetworkStats {
                topology: self.link_cfg.topology,
                exchange_cycles: self.exchange_cycles,
                messages_sent: self.messages_sent,
                messages_delivered: self.messages_delivered,
                messages_dropped: self.dropped_carried + self.fault.dropped(),
                updates: self.updates_total,
                retransmissions: self.retransmits_total,
                acks: self.acks_total,
                dup_drops: self.dup_drops_total,
                per_link,
            },
            recovery: std::mem::take(&mut self.report),
            trace,
        }
    }
}
