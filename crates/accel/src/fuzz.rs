//! Bridge from the conformance fuzzer's case grammar to the accelerator
//! configuration: one value type holding every architecture and fabric
//! knob a `FuzzCase` samples, lowered to a [`Driver`]/[`RunConfig`].
//!
//! The fuzzer itself (case sampling, oracle stack, shrinking, corpus
//! I/O) lives in the bench crate; this module owns the part that needs
//! accel internals — knob application and the stable short names each
//! knob serializes under in the corpus format.

use graph::CooGraph;
use moms::Topology;

use crate::config::ExecutionMode;
use crate::driver::Driver;
use crate::fabric::LinkTopology;
use crate::run_config::{CacheVariant, RunConfig};
use simkit::Cycle;

/// Every architecture + fabric knob a fuzz case can vary, with defaults
/// matching [`Driver::new`].
///
/// The graph, algorithm, and fault schedule are *not* here — they belong
/// to the fuzzer's case grammar above this crate. A `FuzzTarget` is the
/// part a case lowers onto the accelerator via [`driver`](Self::driver)
/// or [`run_config`](Self::run_config).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzTarget {
    /// Processing elements per device.
    pub pes: usize,
    /// DRAM channels per device.
    pub channels: usize,
    /// MOMS cache topology.
    pub topology: Topology,
    /// Which cache arrays are enabled.
    pub caches: CacheVariant,
    /// Execution mode (algorithm default or forced synchronous).
    pub execution: ExecutionMode,
    /// Destination-interval override (`None` = driver auto-sizing).
    pub nd: Option<u32>,
    /// Device count (1 = single `System`, >1 = fabric).
    pub devices: usize,
    /// Inter-device link topology.
    pub link_topology: LinkTopology,
    /// Link serialization bandwidth in words per cycle.
    pub link_bandwidth: u32,
    /// Per-hop link latency in cycles.
    pub link_latency: Cycle,
    /// Initial retransmission timeout override (`None` = default).
    pub link_rto: Option<Cycle>,
    /// Checkpoint every N barriers (0 = recovery off).
    pub checkpoint_interval: u32,
    /// Host worker threads for the fabric compute phase.
    pub sim_threads: usize,
}

impl Default for FuzzTarget {
    fn default() -> Self {
        let link = crate::fabric::LinkConfig::default();
        FuzzTarget {
            pes: 4,
            channels: 2,
            topology: Topology::TwoLevel,
            caches: CacheVariant::Full,
            execution: ExecutionMode::AlgorithmDefault,
            nd: None,
            devices: 1,
            link_topology: link.topology,
            link_bandwidth: link.bandwidth_words_per_cycle,
            link_latency: link.latency,
            link_rto: None,
            checkpoint_interval: 0,
            sim_threads: 1,
        }
    }
}

impl FuzzTarget {
    /// Lowers every knob onto a [`Driver`].
    pub fn driver(&self) -> Driver {
        let mut d = Driver::new()
            .pes(self.pes)
            .channels(self.channels)
            .topology(self.topology)
            .execution(self.execution)
            .devices(self.devices)
            .link_topology(self.link_topology)
            .link_bandwidth(self.link_bandwidth)
            .link_latency(self.link_latency)
            .checkpoint_interval(self.checkpoint_interval)
            .sim_threads(self.sim_threads);
        if let Some(nd) = self.nd {
            d = d.destination_interval(nd);
        }
        if let Some(rto) = self.link_rto {
            d = d.link_retry(rto);
        }
        d
    }

    /// Lowers onto a [`RunConfig`] for `g`, including the cache-variant
    /// knob the driver builder does not expose directly.
    pub fn run_config(&self, g: &CooGraph) -> RunConfig {
        let mut rc = self.driver().run_config(g);
        rc.caches = self.caches;
        rc
    }
}

/// Stable short name for a MOMS topology in the corpus format.
pub fn topology_tag(t: Topology) -> &'static str {
    t.name() // "shared" | "private" | "two-level": already corpus-safe
}

/// Parses a [`topology_tag`] back.
pub fn parse_topology(s: &str) -> Result<Topology, String> {
    match s {
        "shared" => Ok(Topology::Shared),
        "private" => Ok(Topology::Private),
        "two-level" => Ok(Topology::TwoLevel),
        other => Err(format!("unknown MOMS topology {other:?}")),
    }
}

/// Stable short name for a cache variant in the corpus format (the
/// display names in [`CacheVariant::name`] contain spaces).
pub fn cache_tag(c: CacheVariant) -> &'static str {
    match c {
        CacheVariant::Full => "full",
        CacheVariant::NoPrivate => "no-private",
        CacheVariant::NoShared => "no-shared",
        CacheVariant::None => "none",
    }
}

/// Parses a [`cache_tag`] back.
pub fn parse_cache(s: &str) -> Result<CacheVariant, String> {
    match s {
        "full" => Ok(CacheVariant::Full),
        "no-private" => Ok(CacheVariant::NoPrivate),
        "no-shared" => Ok(CacheVariant::NoShared),
        "none" => Ok(CacheVariant::None),
        other => Err(format!("unknown cache variant {other:?}")),
    }
}

/// Stable short name for an execution mode in the corpus format.
pub fn execution_tag(e: ExecutionMode) -> &'static str {
    e.name() // "default" | "sync": already corpus-safe
}

/// Parses an [`execution_tag`] back.
pub fn parse_execution(s: &str) -> Result<ExecutionMode, String> {
    match s {
        "default" => Ok(ExecutionMode::AlgorithmDefault),
        "sync" => Ok(ExecutionMode::ForceSynchronous),
        other => Err(format!("unknown execution mode {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algos::{golden, Algorithm};
    use graph::GraphSpec;

    #[test]
    fn default_target_matches_default_driver() {
        let g = GraphSpec::rmat(6, 4).build(3);
        let a = FuzzTarget::default().run_config(&g);
        let b = Driver::new().sim_threads(1).run_config(&g);
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.caches, b.caches);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.link, b.link);
        assert_eq!(a.sim_threads, b.sim_threads);
    }

    #[test]
    fn knobs_flow_through_to_the_run_config() {
        let g = GraphSpec::rmat(6, 4).build(3);
        let t = FuzzTarget {
            pes: 2,
            channels: 1,
            topology: Topology::Shared,
            caches: CacheVariant::NoShared,
            execution: ExecutionMode::ForceSynchronous,
            nd: Some(128),
            devices: 4,
            link_topology: LinkTopology::Ring,
            link_bandwidth: 1,
            link_latency: 96,
            link_rto: Some(777),
            checkpoint_interval: 2,
            sim_threads: 2,
        };
        let rc = t.run_config(&g);
        assert_eq!(rc.moms.num_pes, 2);
        assert_eq!(rc.moms.num_channels, 1);
        assert_eq!(rc.moms.topology, Topology::Shared);
        assert_eq!(rc.caches, CacheVariant::NoShared);
        assert_eq!(rc.execution, ExecutionMode::ForceSynchronous);
        assert_eq!(rc.intervals.1, 128);
        assert_eq!(rc.devices, 4);
        assert_eq!(rc.link.topology, LinkTopology::Ring);
        assert_eq!(rc.link.bandwidth_words_per_cycle, 1);
        assert_eq!(rc.link.latency, 96);
        assert_eq!(rc.link.retry.rto, 777);
        assert_eq!(rc.recovery.unwrap().checkpoint_interval, 2);
        assert_eq!(rc.sim_threads, 2);
    }

    #[test]
    fn a_sampled_target_still_computes_correct_results() {
        let g = GraphSpec::rmat(7, 4).build(11);
        let t = FuzzTarget {
            pes: 2,
            devices: 2,
            link_topology: LinkTopology::Ring,
            ..FuzzTarget::default()
        };
        let algo = Algorithm::bfs(0);
        let r = crate::fabric::Fabric::new(&g, algo, &t.run_config(&g)).run();
        assert_eq!(r.values, golden::run(&algo, &g));
    }

    #[test]
    fn tags_roundtrip() {
        for t in [Topology::Shared, Topology::Private, Topology::TwoLevel] {
            assert_eq!(parse_topology(topology_tag(t)).unwrap(), t);
        }
        for c in [
            CacheVariant::Full,
            CacheVariant::NoPrivate,
            CacheVariant::NoShared,
            CacheVariant::None,
        ] {
            assert_eq!(parse_cache(cache_tag(c)).unwrap(), c);
        }
        for e in [
            ExecutionMode::AlgorithmDefault,
            ExecutionMode::ForceSynchronous,
        ] {
            assert_eq!(parse_execution(execution_tag(e)).unwrap(), e);
        }
        assert!(parse_topology("mesh").is_err());
        assert!(parse_cache("half").is_err());
        assert!(parse_execution("async").is_err());
    }
}
