//! Multi-tenant serving layer over a pool of simulated accelerators.
//!
//! Every other entry point in this workspace runs exactly one algorithm
//! on one graph to completion. This crate adds the layer the ROADMAP's
//! "serves heavy traffic" north star asks for: a deterministic
//! virtual-time simulation of a graph-analytics *service* in which a
//! seeded open-loop workload ([`workload`]) emits timestamped requests
//! (algorithm × graph × tenant × priority × deadline) and a scheduler
//! ([`scheduler`]) admits, queues, co-batches, and dispatches them onto
//! a pool of [`accel::System`] device slots.
//!
//! The design mirrors the paper's cache philosophy one level up: the
//! MOMS keeps thousands of *misses* in flight per device, and the
//! serving layer keeps many *jobs* in flight across devices —
//! preempting long low-priority jobs at iteration boundaries through
//! the fabric's [`accel::CheckpointStore`] protocol and shedding load
//! under overload instead of queueing without bound.
//!
//! Everything is simulated in virtual time with integer arithmetic and
//! [`simkit::SplitMix64`] randomness only, so a run is a pure function
//! of `(seed, config)`: the exported report is byte-identical across
//! hosts, repeat runs, `--jobs` fan-out, and `--sim-threads` settings.
//!
//! ```
//! use serve::{run, ServeConfig};
//!
//! let report = run(&ServeConfig {
//!     requests: 10,
//!     shrink: 64,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! assert_eq!(report.completed + report.failed, report.admitted);
//! assert_eq!(report.golden_mismatches, 0);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod report;
pub mod scheduler;
pub mod session;
pub mod workload;

pub use report::ServeReport;
pub use scheduler::{run, Scheduler, ServeConfig};
pub use session::{Session, SliceEnd};
pub use workload::{Catalog, JobKey, Priority, Request, Tenant, WorkloadConfig, TENANTS};
