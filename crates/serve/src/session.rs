//! One preemptible job on one device slot.
//!
//! A [`Session`] drives a single [`accel::System`] through the same
//! per-iteration stepping loop `System::run_to_outcome` uses internally,
//! but a bounded number of iterations (a *slice*) at a time, so the
//! scheduler can interleave jobs on a slot and preempt at iteration
//! boundaries.
//!
//! Preemption reuses the fabric's proven checkpoint/restore protocol:
//! at a boundary the host-visible `V_in` image plus the next-iteration
//! active flags are the complete algorithm state, captured into an
//! [`accel::Checkpoint`]. Resuming builds a fresh `System` (simulated
//! devices are stateless between episodes, like a re-provisioned FPGA),
//! replays the checkpointed values with `write_node_in`, and continues
//! from the saved iteration — bit-exact for the integer algorithms and
//! within the standard 1e-5 tolerance for PageRank, exactly as the
//! fabric's rollback path guarantees.

use accel::{Checkpoint, RunConfig, RunError, RunResult, System};
use algos::Algorithm;
use graph::CooGraph;
use simkit::Cycle;

/// Why a slice returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceEnd {
    /// The job ran out of work (converged or hit its iteration cap).
    Finished,
    /// The quantum expired at an iteration boundary; the job can be
    /// checkpointed or continued.
    Boundary,
}

/// A job's execution state across preemption episodes.
pub struct Session {
    sys: System,
    iter: u32,
    max_iter: u32,
    active: Vec<bool>,
    edges: u64,
    nodes: u32,
    /// Device cycles consumed so far, summed across episodes (each
    /// episode's fresh `System` restarts its own clock at zero).
    pub device_cycles: Cycle,
}

impl Session {
    /// Starts `algo` from scratch on `g` under `rc`.
    pub fn fresh(g: &CooGraph, algo: Algorithm, rc: &RunConfig) -> Self {
        let (cfg, partitioner) = rc.build();
        let sys = System::new(g, partitioner, algo, cfg);
        let active = vec![true; sys.num_source_intervals()];
        let max_iter = sys.resolved_max_iterations();
        Session {
            sys,
            iter: 0,
            max_iter,
            active,
            edges: 0,
            nodes: g.num_nodes(),
            device_cycles: 0,
        }
    }

    /// Rebuilds a preempted job from `ckpt` (the fabric's restore
    /// protocol: fresh device, replayed `V_in`, saved iteration/active
    /// flags).
    pub fn resume(g: &CooGraph, algo: Algorithm, rc: &RunConfig, ckpt: &Checkpoint) -> Self {
        let mut s = Session::fresh(g, algo, rc);
        assert_eq!(ckpt.values.len(), s.nodes as usize, "checkpoint shape");
        for v in 0..s.nodes {
            s.sys.write_node_in(v, ckpt.values[v as usize]);
        }
        s.iter = ckpt.iteration;
        s.active = ckpt.active.clone();
        s.edges = ckpt.edges[0];
        s.device_cycles = ckpt.cycle;
        s
    }

    /// Iterations completed so far (across episodes).
    pub fn iterations_done(&self) -> u32 {
        self.iter
    }

    /// Runs up to `quantum` iterations (at least one attempt). Returns
    /// how the slice ended and the device cycles it consumed.
    ///
    /// # Errors
    ///
    /// [`RunError::Stalled`] when the device's no-progress watchdog
    /// trips mid-iteration; the session is inconsistent afterwards and
    /// must be dropped.
    pub fn step_slice(&mut self, quantum: u32) -> Result<(SliceEnd, Cycle), RunError> {
        let quantum = quantum.max(1);
        let start = self.sys.now();
        let mut stepped = 0u32;
        let end = loop {
            if self.iter >= self.max_iter {
                break SliceEnd::Finished;
            }
            if self.sys.begin_iteration(self.iter, &self.active) == 0 {
                break SliceEnd::Finished;
            }
            self.edges += self.sys.step_iteration(self.iter, None)?;
            self.iter += 1;
            if !self.sys.continues() {
                break SliceEnd::Finished;
            }
            self.active = self.sys.next_active_srcs();
            if self.sys.is_synchronous_image() && self.iter < self.max_iter {
                self.sys.advance_synchronous_frontier();
            }
            stepped += 1;
            // A boundary is only offered while another iteration can
            // actually run: at `iter == max_iter` the synchronous final
            // values still sit in the out-image (no frontier advance
            // happened), so checkpointing there would capture stale
            // `V_in` — report Finished instead, like `run_to_outcome`'s
            // top-of-loop check would on its next pass.
            if stepped >= quantum && self.iter < self.max_iter {
                break SliceEnd::Boundary;
            }
        };
        let used = self.sys.now() - start;
        self.device_cycles += used;
        Ok((end, used))
    }

    /// Captures the boundary state needed to resume this job later.
    /// Valid only after a [`SliceEnd::Boundary`] (the inter-iteration
    /// point where `V_in` holds the globally consistent values).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            iteration: self.iter,
            cycle: self.device_cycles,
            values: (0..self.nodes).map(|v| self.sys.read_node_in(v)).collect(),
            active: self.active.clone(),
            edges: vec![self.edges],
        }
    }

    /// Finalizes a finished job into its [`RunResult`] (values, stats).
    pub fn finish(mut self) -> RunResult {
        self.sys.finish(self.iter, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::Driver;
    use algos::golden;
    use graph::GraphSpec;

    fn small_graph() -> CooGraph {
        GraphSpec::rmat(6, 4).build(5).with_random_weights(1, 9, 6)
    }

    fn rc(g: &CooGraph) -> RunConfig {
        Driver::new().run_config(g)
    }

    /// Slicing one iteration at a time must land on the same values and
    /// the same total device cycles as the unsliced run.
    #[test]
    fn sliced_run_matches_run_to_outcome() {
        let g = small_graph();
        for algo in [Algorithm::bfs(0), Algorithm::sssp(0), Algorithm::Scc] {
            let rc = rc(&g);
            let whole = Driver::new().run(&g, algo);
            let mut s = Session::fresh(&g, algo, &rc);
            while let (SliceEnd::Boundary, _) = s.step_slice(1).unwrap() {}
            let total = s.device_cycles;
            let r = s.finish();
            assert_eq!(r.values, whole.values, "{}", algo.name());
            assert_eq!(total, whole.cycles, "{}", algo.name());
            assert_eq!(r.iterations, whole.iterations, "{}", algo.name());
        }
    }

    /// Checkpoint → fresh device → resume must replay to golden values,
    /// from every boundary.
    #[test]
    fn resume_from_every_boundary_is_golden_exact() {
        let g = small_graph();
        for algo in [Algorithm::bfs(0), Algorithm::sssp(2)] {
            let rc = rc(&g);
            let want = golden::run(&algo, &g);
            let mut boundary = 0;
            loop {
                let mut s = Session::fresh(&g, algo, &rc);
                let mut reached = true;
                for _ in 0..=boundary {
                    let (end, _) = s.step_slice(1).unwrap();
                    if end == SliceEnd::Finished {
                        reached = false;
                        break;
                    }
                }
                if !reached {
                    break;
                }
                let ckpt = s.checkpoint();
                drop(s);
                let mut resumed = Session::resume(&g, algo, &rc, &ckpt);
                while let (SliceEnd::Boundary, _) = resumed.step_slice(1).unwrap() {}
                assert_eq!(
                    resumed.finish().values,
                    want,
                    "{} from boundary {boundary}",
                    algo.name()
                );
                boundary += 1;
            }
            assert!(boundary > 0, "{} never hit a boundary", algo.name());
        }
    }

    /// PageRank resumes within the standard floating-point tolerance.
    #[test]
    fn pagerank_resume_is_within_tolerance() {
        let g = small_graph();
        let algo = Algorithm::pagerank();
        let rc = rc(&g);
        let want = golden::run(&algo, &g);
        let mut s = Session::fresh(&g, algo, &rc);
        let (end, _) = s.step_slice(3).unwrap();
        assert_eq!(end, SliceEnd::Boundary);
        let ckpt = s.checkpoint();
        let mut resumed = Session::resume(&g, algo, &rc, &ckpt);
        while let (SliceEnd::Boundary, _) = resumed.step_slice(2).unwrap() {}
        let got = resumed.finish().values;
        assert!(
            golden::pagerank_mismatch(&got, &want, 1e-5).is_none(),
            "pagerank after preempt/resume drifted past 1e-5"
        );
    }
}
