//! Admission control, class queues, co-batching, and preemptive
//! dispatch over the device pool.
//!
//! The scheduler is a deterministic discrete-event loop in virtual time.
//! Two event sources exist — request arrivals (from the pre-generated
//! open-loop stream) and slice completions (from busy device slots) —
//! and ties are broken the same way every run: slice ends before
//! arrivals at the same cycle, lower slot index first, arrivals in
//! stream order. No wall clocks, no host randomness, no iteration over
//! hash maps: a run is a pure function of `(seed, config)`.
//!
//! Policy, in one paragraph: arrivals are shed when the fresh-request
//! queue is at capacity (explicit rejection beats unbounded queueing);
//! admitted requests wait in three strict-priority class queues;
//! dispatch pops the most urgent class and absorbs every queued request
//! for the same graph × query into one batch (they compute the same
//! answer, so one device run serves all of them); a running low-class
//! job is preempted at its next iteration boundary whenever a
//! higher-class request waits, parking its state in an
//! [`accel::CheckpointStore`]; parked state beyond the parking capacity
//! is evicted oldest-first and the victim restarts from scratch later.

use std::collections::VecDeque;

use accel::{CheckpointStore, Driver, Fabric, RunConfig};
use algos::{golden, Algorithm};
use simkit::trace::{EventKind, TraceConfig, TraceReport, Tracer, Track};
use simkit::{Cycle, LatencyHistogram};

use crate::report::ServeReport;
use crate::session::{Session, SliceEnd};
use crate::workload::{self, Catalog, JobKey, Request, WorkloadConfig, TENANTS};

/// PageRank completions are validated against the golden reference at
/// this relative tolerance (the workspace-wide float budget); integer
/// algorithms must match exactly.
pub const PAGERANK_TOLERANCE: f32 = 1e-5;

/// Parameters of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master workload seed.
    pub seed: u64,
    /// Requests to generate.
    pub requests: u64,
    /// Device slots in the pool.
    pub slots: usize,
    /// Simulated devices per slot. `1` runs each job on a single
    /// preemptible [`accel::System`]; `> 1` runs each job on a
    /// [`Fabric`] of that many devices (non-preemptible: the barrier
    /// protocol owns the iteration loop).
    pub slot_devices: usize,
    /// Iterations a job may run before the scheduler reconsiders the
    /// slot (the preemption quantum).
    pub quantum: u32,
    /// Admission-control bound on queued fresh requests; arrivals
    /// beyond it are shed.
    pub max_queue: usize,
    /// Parked-checkpoint capacity; excess checkpoints are evicted
    /// oldest-first and their jobs restart from scratch.
    pub max_parked: usize,
    /// Offered load in permille of pool saturation: 1000 means arrivals
    /// carry exactly as much calibrated service time as the pool can
    /// retire; 10000 is a 10× overload.
    pub rate_permille: u64,
    /// Catalog shrink factor (1 = largest graphs; larger = smaller).
    pub shrink: u64,
    /// Host threads per fabric run when `slot_devices > 1`
    /// (bit-identical at any setting; ignored for single-device slots).
    pub sim_threads: usize,
    /// Per-device no-progress watchdog override (`None` keeps the
    /// driver default).
    pub watchdog_cycles: Option<Cycle>,
    /// Serving-layer event tracing (default off).
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 1,
            requests: 100,
            slots: 2,
            slot_devices: 1,
            quantum: 2,
            max_queue: 16,
            max_parked: 4,
            rate_permille: 1000,
            shrink: 4,
            sim_threads: 1,
            watchdog_cycles: None,
            trace: TraceConfig::default(),
        }
    }
}

/// Runs the full pipeline: build the catalog, calibrate per-job service
/// times, generate the seeded request stream, and schedule it.
///
/// # Errors
///
/// Returns a message when the configuration is invalid or calibration
/// cannot complete a job.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, String> {
    let scheduler = Scheduler::new(cfg)?;
    let requests = scheduler.generate();
    scheduler.run(&requests)
}

/// A calibrated scheduler, ready to run request streams.
///
/// Splitting construction from [`Scheduler::run`] lets tests hand-build
/// request lists (with [`Scheduler::service_estimates`]-derived
/// deadlines) instead of going through the generator.
pub struct Scheduler {
    cfg: ServeConfig,
    catalog: Catalog,
    run_configs: Vec<RunConfig>,
    service: Vec<Cycle>,
    goldens: Vec<Vec<u32>>,
    mean_service: Cycle,
    mean_interarrival: Cycle,
}

impl Scheduler {
    /// Builds the catalog and calibrates every `(graph, query)` job by
    /// running it once, uncontended, on a single device: the measured
    /// cycles become the service estimate (deadline sizing, arrival-rate
    /// scaling) and the run's values the golden reference for
    /// completion validation.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations (zero slots/rate) and
    /// calibration runs that trip the watchdog.
    pub fn new(cfg: &ServeConfig) -> Result<Self, String> {
        if cfg.slots == 0 {
            return Err("serve: slots must be >= 1".to_owned());
        }
        if cfg.rate_permille == 0 {
            return Err("serve: rate must be >= 1 permille".to_owned());
        }
        let catalog = Catalog::small(cfg.shrink);
        let mut run_configs = Vec::with_capacity(catalog.graphs.len());
        for (_, g) in &catalog.graphs {
            let mut rc = Driver::new().run_config(g);
            if let Some(w) = cfg.watchdog_cycles {
                rc.watchdog_cycles = Some(w);
            }
            run_configs.push(rc);
        }
        let mut service = Vec::new();
        let mut goldens = Vec::new();
        for job in catalog.jobs() {
            let g = &catalog.graphs[job.graph].1;
            let query = catalog.queries[job.query];
            let mut s = Session::fresh(g, query, &run_configs[job.graph]);
            match s.step_slice(u32::MAX) {
                Ok((SliceEnd::Finished, _)) => {}
                Ok((SliceEnd::Boundary, _)) => unreachable!("u32::MAX quantum"),
                Err(e) => {
                    return Err(format!(
                        "serve: calibration of {} failed: {e:?}",
                        catalog.job_label(job)
                    ));
                }
            }
            service.push(s.device_cycles.max(1));
            goldens.push(golden::run(&query, g));
        }
        let mean_service = (service.iter().sum::<Cycle>() / service.len() as u64).max(1);
        // Offered load = mean_service / (slots × mean_interarrival); at
        // rate_permille = 1000 arrivals carry exactly the pool's
        // calibrated capacity.
        let mean_interarrival =
            (mean_service * 1000 / (cfg.slots as u64 * cfg.rate_permille)).max(1);
        Ok(Scheduler {
            cfg: cfg.clone(),
            catalog,
            run_configs,
            service,
            goldens,
            mean_service,
            mean_interarrival,
        })
    }

    /// The catalog this scheduler serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Calibrated mean service cycles per [`Catalog::job_index`].
    pub fn service_estimates(&self) -> &[Cycle] {
        &self.service
    }

    /// Mean interarrival gap implied by the configured rate.
    pub fn mean_interarrival(&self) -> Cycle {
        self.mean_interarrival
    }

    /// Generates this configuration's seeded request stream.
    pub fn generate(&self) -> Vec<Request> {
        workload::generate(
            &WorkloadConfig {
                seed: self.cfg.seed,
                requests: self.cfg.requests,
                mean_interarrival: self.mean_interarrival,
            },
            &self.catalog,
            &self.service,
        )
    }

    /// Schedules `requests` (sorted by arrival) to completion and
    /// reports the outcome.
    ///
    /// # Errors
    ///
    /// Returns a message if the loop stalls with work queued — a
    /// scheduler bug, not a workload property.
    pub fn run(&self, requests: &[Request]) -> Result<ServeReport, String> {
        let mut lp = Loop {
            sched: self,
            requests,
            queues: Default::default(),
            slots: (0..self.cfg.slots).map(|_| None).collect(),
            parked: Vec::new(),
            park_fifo: VecDeque::new(),
            tracer: Tracer::for_track(Track::serve(), &self.cfg.trace),
            rep: self.empty_report(requests.len() as u64),
        };
        lp.drive()?;
        Ok(lp.rep)
    }

    fn empty_report(&self, generated: u64) -> ServeReport {
        ServeReport {
            seed: self.cfg.seed,
            rate_permille: self.cfg.rate_permille,
            mean_interarrival: self.mean_interarrival,
            mean_service: self.mean_service,
            slots: self.cfg.slots,
            generated,
            admitted: 0,
            shed: 0,
            completed: 0,
            failed: 0,
            preemptions: 0,
            resumes: 0,
            restarts: 0,
            co_batched: 0,
            deadline_misses: 0,
            golden_mismatches: 0,
            watchdog_trips: 0,
            checkpoint_evictions: 0,
            makespan: 0,
            busy_cycles: 0,
            latency: LatencyHistogram::new(),
            class_latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            tenant_completed: vec![0; TENANTS.len()],
            trace: TraceReport::default(),
        }
    }
}

/// Queued work: a not-yet-started request or a parked (preempted) job.
enum Work {
    Fresh(usize),
    Parked(usize),
}

/// How a slot executes its job.
enum Exec {
    /// Single preemptible device, stepped slice by slice (boxed: a
    /// `Session` owns a whole simulated `System`, far larger than the
    /// finished-values variant).
    Sliced(Box<Session>),
    /// Multi-device fabric run, simulated to completion at dispatch;
    /// the slot stays busy until its virtual finish time.
    Whole { values: Vec<u32> },
}

/// A busy device slot.
struct Busy {
    until: Cycle,
    pending: SliceEnd,
    exec: Exec,
    batch: Vec<usize>,
    job: JobKey,
    class: usize,
}

/// A preempted job waiting to resume. `store` holds at most one
/// checkpoint; eviction empties it and the job restarts from scratch.
struct ParkedJob {
    store: CheckpointStore,
    batch: Vec<usize>,
    job: JobKey,
    class: usize,
    taken: bool,
}

impl ParkedJob {
    /// Still waiting with a live checkpoint (counts against the
    /// parking capacity).
    fn live(&self) -> bool {
        !self.taken && !self.store.is_empty()
    }
}

struct Loop<'a> {
    sched: &'a Scheduler,
    requests: &'a [Request],
    queues: [VecDeque<Work>; 3],
    slots: Vec<Option<Busy>>,
    parked: Vec<ParkedJob>,
    park_fifo: VecDeque<usize>,
    tracer: Tracer,
    rep: ServeReport,
}

impl Loop<'_> {
    fn drive(&mut self) -> Result<(), String> {
        let mut next = 0usize;
        let mut t: Cycle = 0;
        loop {
            let busy_next = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|b| (b.until, i)))
                .min();
            let arrival_next = self.requests.get(next).map(|r| r.arrival);
            // Slice ends run before arrivals at the same cycle so a
            // freed slot is visible to the requests arriving then.
            let take_slice = match (busy_next, arrival_next) {
                (Some((u, _)), Some(a)) => u <= a,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_slice {
                let (until, slot) = busy_next.unwrap();
                t = until;
                self.slice_end(t, slot);
            } else {
                t = arrival_next.unwrap();
                while next < self.requests.len() && self.requests[next].arrival == t {
                    self.arrive(t, next);
                    next += 1;
                }
            }
            self.dispatch(t);
        }
        self.rep.makespan = t;
        if self.queues.iter().any(|q| !q.is_empty()) {
            return Err("serve: scheduler stalled with work queued".to_owned());
        }
        self.rep.trace.dropped = self.tracer.dropped();
        self.rep.trace.events = self.tracer.take();
        self.rep.trace.cycles = t;
        Ok(())
    }

    fn arrive(&mut self, t: Cycle, idx: usize) {
        let r = &self.requests[idx];
        self.tracer.event(t, EventKind::ServeArrive, r.id);
        let fresh_queued: usize = self
            .queues
            .iter()
            .map(|q| q.iter().filter(|w| matches!(w, Work::Fresh(_))).count())
            .sum();
        if fresh_queued >= self.sched.cfg.max_queue {
            self.rep.shed += 1;
            self.tracer.event(t, EventKind::ServeShed, r.id);
        } else {
            self.rep.admitted += 1;
            self.queues[r.priority.index()].push_back(Work::Fresh(idx));
        }
    }

    fn dispatch(&mut self, t: Cycle) {
        loop {
            let Some(slot) = self.slots.iter().position(|s| s.is_none()) else {
                return;
            };
            let Some(class) = (0..self.queues.len()).find(|&c| !self.queues[c].is_empty()) else {
                return;
            };
            match self.queues[class].pop_front().unwrap() {
                Work::Fresh(i) => self.dispatch_fresh(t, slot, class, i),
                Work::Parked(p) => self.dispatch_parked(t, slot, p),
            }
        }
    }

    fn dispatch_fresh(&mut self, t: Cycle, slot: usize, class: usize, lead: usize) {
        let job = self.requests[lead].job;
        let mut batch = vec![lead];
        // Same graph × query computes the same answer: absorb every
        // queued duplicate (any class at or below ours — no higher
        // class has work, or we would not have popped this one) into
        // one device run.
        for q in self.queues.iter_mut() {
            let mut kept = VecDeque::with_capacity(q.len());
            while let Some(w) = q.pop_front() {
                if let Work::Fresh(j) = w {
                    if self.requests[j].job == job {
                        batch.push(j);
                        self.rep.co_batched += 1;
                        continue;
                    }
                }
                kept.push_back(w);
            }
            *q = kept;
        }
        self.tracer
            .event(t, EventKind::ServeDispatch, self.requests[lead].id);
        let cfg = &self.sched.cfg;
        let g = &self.sched.catalog.graphs[job.graph].1;
        let query = self.sched.catalog.queries[job.query];
        if cfg.slot_devices > 1 {
            let mut rc = self.sched.run_configs[job.graph].clone();
            rc.devices = cfg.slot_devices;
            rc.sim_threads = cfg.sim_threads;
            match Fabric::new(g, query, &rc).run_to_outcome(None) {
                Ok(r) => {
                    self.rep.busy_cycles += r.cycles;
                    self.slots[slot] = Some(Busy {
                        until: t + r.cycles,
                        pending: SliceEnd::Finished,
                        exec: Exec::Whole { values: r.values },
                        batch,
                        job,
                        class,
                    });
                }
                Err(_) => {
                    self.rep.watchdog_trips += 1;
                    self.rep.failed += batch.len() as u64;
                }
            }
        } else {
            let session = Session::fresh(g, query, &self.sched.run_configs[job.graph]);
            self.run_slice(
                t,
                slot,
                Busy {
                    until: t,
                    pending: SliceEnd::Boundary,
                    exec: Exec::Sliced(Box::new(session)),
                    batch,
                    job,
                    class,
                },
            );
        }
    }

    fn dispatch_parked(&mut self, t: Cycle, slot: usize, p: usize) {
        let entry = &mut self.parked[p];
        entry.taken = true;
        let leader = self.requests[entry.batch[0]].id;
        let job = entry.job;
        let class = entry.class;
        let batch = entry.batch.clone();
        let g = &self.sched.catalog.graphs[job.graph].1;
        let query = self.sched.catalog.queries[job.query];
        let rc = &self.sched.run_configs[job.graph];
        let session = if let Some(ckpt) = self.parked[p].store.latest() {
            self.rep.resumes += 1;
            self.tracer.event(t, EventKind::ServeResume, leader);
            Session::resume(g, query, rc, ckpt)
        } else {
            // The checkpoint was evicted for parking capacity: start
            // over (correct, just slower).
            self.rep.restarts += 1;
            self.tracer.event(t, EventKind::ServeDispatch, leader);
            Session::fresh(g, query, rc)
        };
        self.run_slice(
            t,
            slot,
            Busy {
                until: t,
                pending: SliceEnd::Boundary,
                exec: Exec::Sliced(Box::new(session)),
                batch,
                job,
                class,
            },
        );
    }

    /// Runs one quantum on `busy`'s session and installs it in `slot`,
    /// or fails the whole batch if the device watchdog trips.
    fn run_slice(&mut self, t: Cycle, slot: usize, mut busy: Busy) {
        let Exec::Sliced(session) = &mut busy.exec else {
            unreachable!("only sliced executions are stepped");
        };
        match session.step_slice(self.sched.cfg.quantum) {
            Ok((end, used)) => {
                busy.until = t + used;
                busy.pending = end;
                self.rep.busy_cycles += used;
                self.slots[slot] = Some(busy);
            }
            Err(_) => {
                self.rep.watchdog_trips += 1;
                self.rep.failed += busy.batch.len() as u64;
            }
        }
    }

    fn slice_end(&mut self, t: Cycle, slot: usize) {
        let busy = self.slots[slot].take().expect("slot is busy");
        match busy.pending {
            SliceEnd::Finished => self.complete(t, busy),
            SliceEnd::Boundary => {
                let higher_waiting = self.queues[..busy.class].iter().any(|q| !q.is_empty());
                if higher_waiting {
                    self.preempt(t, busy);
                } else {
                    self.run_slice(t, slot, busy);
                }
            }
        }
    }

    fn complete(&mut self, t: Cycle, busy: Busy) {
        let values = match busy.exec {
            Exec::Sliced(session) => session.finish().values,
            Exec::Whole { values } => values,
        };
        let want = &self.sched.goldens[self.sched.catalog.job_index(busy.job)];
        let query = self.sched.catalog.queries[busy.job.query];
        let ok = if matches!(query, Algorithm::PageRank { .. }) {
            golden::pagerank_mismatch(&values, want, PAGERANK_TOLERANCE).is_none()
        } else {
            values == *want
        };
        if !ok {
            self.rep.golden_mismatches += busy.batch.len() as u64;
        }
        for &i in &busy.batch {
            let r = &self.requests[i];
            let lat = t - r.arrival;
            self.rep.latency.record(lat);
            self.rep.class_latency[r.priority.index()].record(lat);
            self.rep.tenant_completed[r.tenant] += 1;
            self.rep.completed += 1;
            if t > r.deadline {
                self.rep.deadline_misses += 1;
            }
            self.tracer.event(t, EventKind::ServeComplete, r.id);
        }
    }

    fn preempt(&mut self, t: Cycle, busy: Busy) {
        let Exec::Sliced(session) = &busy.exec else {
            unreachable!("fabric slots are never preempted");
        };
        let mut store = CheckpointStore::new(1);
        store.save(session.checkpoint());
        let idx = self.parked.len();
        self.tracer
            .event(t, EventKind::ServePreempt, self.requests[busy.batch[0]].id);
        self.parked.push(ParkedJob {
            store,
            batch: busy.batch,
            job: busy.job,
            class: busy.class,
            taken: false,
        });
        self.park_fifo.push_back(idx);
        // Enforce the parking capacity: evict oldest live checkpoints
        // first (the same FIFO order CheckpointStore itself uses), so
        // the eviction sequence is a pure function of the park
        // sequence.
        let mut live = self.parked.iter().filter(|p| p.live()).count();
        let mut scan = 0;
        while live > self.sched.cfg.max_parked && scan < self.park_fifo.len() {
            let cand = self.park_fifo[scan];
            scan += 1;
            if self.parked[cand].live() {
                self.parked[cand].store = CheckpointStore::new(1);
                self.rep.checkpoint_evictions += 1;
                live -= 1;
            }
        }
        self.queues[self.parked[idx].class].push_front(Work::Parked(idx));
        self.rep.preemptions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Priority;

    fn tiny(requests: u64) -> ServeConfig {
        ServeConfig {
            requests,
            shrink: 64,
            ..ServeConfig::default()
        }
    }

    /// Every admitted request must complete or fail, and the latency
    /// histogram must account for exactly the completions.
    #[test]
    fn smoke_run_accounts_for_every_request() {
        let rep = run(&tiny(12)).unwrap();
        assert_eq!(rep.generated, 12);
        assert_eq!(rep.admitted + rep.shed, rep.generated);
        assert_eq!(rep.completed + rep.failed, rep.admitted);
        assert_eq!(rep.latency.count(), rep.completed);
        assert_eq!(rep.golden_mismatches, 0);
        assert_eq!(rep.watchdog_trips, 0);
        assert!(rep.makespan > 0);
        assert!(rep.utilization() > 0.0);
    }

    /// Identical queued jobs must collapse into one device run.
    #[test]
    fn identical_queued_requests_co_batch() {
        let sched = Scheduler::new(&ServeConfig {
            slots: 1,
            shrink: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        let job = JobKey { graph: 0, query: 0 };
        let est = sched.service_estimates()[sched.catalog().job_index(job)];
        // Six same-job requests landing in one burst: the first
        // occupies the slot, the other five queue and then ride one
        // dispatch.
        let requests: Vec<Request> = (0..6)
            .map(|i| Request {
                id: i,
                arrival: 1 + i,
                tenant: 1,
                priority: Priority::Normal,
                job,
                deadline: 1 + i + 16 * est,
            })
            .collect();
        let rep = sched.run(&requests).unwrap();
        assert_eq!(rep.completed, 6);
        assert_eq!(rep.co_batched, 4, "five queued, one leads, four ride");
        assert_eq!(rep.golden_mismatches, 0);
    }

    /// A full queue must shed, not grow without bound.
    #[test]
    fn full_queue_sheds_arrivals() {
        let sched = Scheduler::new(&ServeConfig {
            slots: 1,
            max_queue: 2,
            shrink: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        // A burst of distinct jobs (no co-batching relief): 1 runs,
        // 2 queue, the rest must shed.
        let requests: Vec<Request> = (0..8)
            .map(|i| Request {
                id: i,
                arrival: 1 + i,
                tenant: 3,
                priority: Priority::Low,
                job: JobKey {
                    graph: (i % 3) as usize,
                    query: (i % 6) as usize,
                },
                deadline: Cycle::MAX,
            })
            .collect();
        let rep = sched.run(&requests).unwrap();
        assert!(rep.shed > 0, "queue bound must reject the burst tail");
        assert_eq!(rep.admitted + rep.shed, 8);
        assert_eq!(rep.completed, rep.admitted);
    }

    /// A high-priority arrival must preempt a running low-priority job
    /// at an iteration boundary, and the preempted job must still
    /// produce a correct result after resuming.
    #[test]
    fn high_priority_preempts_and_victim_still_validates() {
        let sched = Scheduler::new(&ServeConfig {
            slots: 1,
            quantum: 1,
            shrink: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        let slow = JobKey { graph: 0, query: 4 }; // pagerank: 10 iterations
        let fast = JobKey { graph: 0, query: 0 }; // bfs(0)
        let requests = vec![
            Request {
                id: 0,
                arrival: 1,
                tenant: 3,
                priority: Priority::Low,
                job: slow,
                deadline: Cycle::MAX,
            },
            Request {
                id: 1,
                arrival: 2,
                tenant: 0,
                priority: Priority::High,
                job: fast,
                deadline: Cycle::MAX,
            },
        ];
        let rep = sched.run(&requests).unwrap();
        assert_eq!(rep.completed, 2);
        assert!(rep.preemptions >= 1, "low job must yield the only slot");
        assert_eq!(rep.resumes, rep.preemptions, "capacity 4 never evicts");
        assert_eq!(rep.golden_mismatches, 0);
        assert_eq!(rep.restarts, 0);
    }

    /// With zero parking capacity every preemption evicts, and the
    /// victim restarts from scratch — still correct.
    #[test]
    fn zero_parking_capacity_forces_restarts() {
        let sched = Scheduler::new(&ServeConfig {
            slots: 1,
            quantum: 1,
            max_parked: 0,
            shrink: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        let requests = vec![
            Request {
                id: 0,
                arrival: 1,
                tenant: 3,
                priority: Priority::Low,
                job: JobKey { graph: 0, query: 4 },
                deadline: Cycle::MAX,
            },
            Request {
                id: 1,
                arrival: 2,
                tenant: 0,
                priority: Priority::High,
                job: JobKey { graph: 0, query: 0 },
                deadline: Cycle::MAX,
            },
        ];
        let rep = sched.run(&requests).unwrap();
        assert_eq!(rep.completed, 2);
        assert!(rep.preemptions >= 1);
        assert_eq!(rep.checkpoint_evictions, rep.preemptions);
        assert_eq!(rep.restarts, rep.preemptions);
        assert_eq!(rep.resumes, 0);
        assert_eq!(rep.golden_mismatches, 0);
    }
}
