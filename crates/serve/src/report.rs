//! The structured outcome of one serving run.

use simkit::trace::TraceReport;
use simkit::{Cycle, LatencyHistogram};

use crate::workload::TENANTS;

/// Everything a serving run produced: admission/completion counters,
/// latency distributions, per-tenant completion counts, and the
/// (optional) trace. A pure function of `(seed, config)` — every field
/// is byte-stable across repeat runs, `--jobs` fan-out, and
/// `--sim-threads` settings.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Master workload seed.
    pub seed: u64,
    /// Offered load in permille of one-device saturation (1000 = the
    /// pool's calibrated capacity).
    pub rate_permille: u64,
    /// Mean virtual-time gap between arrivals, derived from the rate.
    pub mean_interarrival: Cycle,
    /// Mean calibrated service cycles across catalog jobs.
    pub mean_service: Cycle,
    /// Device slots in the pool.
    pub slots: usize,
    /// Requests the generator emitted.
    pub generated: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests rejected at arrival because the queue was full.
    pub shed: u64,
    /// Admitted requests that finished with a validated result.
    pub completed: u64,
    /// Admitted requests lost to a device watchdog trip.
    pub failed: u64,
    /// Times a running job was checkpointed and parked for a
    /// higher-class one.
    pub preemptions: u64,
    /// Times a parked job resumed from its checkpoint.
    pub resumes: u64,
    /// Times a parked job's checkpoint had been evicted and the job
    /// restarted from scratch.
    pub restarts: u64,
    /// Requests that rode an already-queued identical job instead of
    /// occupying their own dispatch (same graph × query co-batching).
    pub co_batched: u64,
    /// Completions after their SLO deadline.
    pub deadline_misses: u64,
    /// Completions whose values disagreed with the golden reference.
    pub golden_mismatches: u64,
    /// Device watchdog trips across the run.
    pub watchdog_trips: u64,
    /// Parked checkpoints discarded to respect the parking capacity.
    pub checkpoint_evictions: u64,
    /// Virtual cycle at which the last request left the system.
    pub makespan: Cycle,
    /// Device-busy cycles summed over slots.
    pub busy_cycles: Cycle,
    /// End-to-end latency (arrival → completion) over all completions.
    pub latency: LatencyHistogram,
    /// Latency split by scheduling class (High, Normal, Low).
    pub class_latency: [LatencyHistogram; 3],
    /// Completions per tenant, indexed like [`TENANTS`].
    pub tenant_completed: Vec<u64>,
    /// Serving-layer trace (empty unless tracing was enabled).
    pub trace: TraceReport,
}

impl ServeReport {
    /// Completed requests per million device-slot cycles of makespan —
    /// the saturation curve's y-axis.
    pub fn goodput_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.completed as f64 * 1.0e6 / self.makespan as f64
        }
    }

    /// Fraction of generated requests rejected by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.shed as f64 / self.generated as f64
        }
    }

    /// Fraction of pool capacity spent busy: `busy / (slots × makespan)`.
    pub fn utilization(&self) -> f64 {
        let denom = self.slots as u64 * self.makespan;
        if denom == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / denom as f64).min(1.0)
        }
    }

    /// Jain's fairness index over weight-normalized per-tenant
    /// completions: 1.0 when every tenant gets service proportional to
    /// its traffic weight, approaching `1/n` under starvation. Empty
    /// runs count as perfectly fair.
    pub fn fairness(&self) -> f64 {
        let shares: Vec<f64> = self
            .tenant_completed
            .iter()
            .zip(TENANTS.iter())
            .map(|(&done, t)| done as f64 / t.weight as f64)
            .collect();
        let sum: f64 = shares.iter().sum();
        if sum == 0.0 {
            return 1.0;
        }
        let sq: f64 = shares.iter().map(|s| s * s).sum();
        (sum * sum) / (shares.len() as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> ServeReport {
        ServeReport {
            seed: 0,
            rate_permille: 0,
            mean_interarrival: 0,
            mean_service: 0,
            slots: 2,
            generated: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            failed: 0,
            preemptions: 0,
            resumes: 0,
            restarts: 0,
            co_batched: 0,
            deadline_misses: 0,
            golden_mismatches: 0,
            watchdog_trips: 0,
            checkpoint_evictions: 0,
            makespan: 0,
            busy_cycles: 0,
            latency: LatencyHistogram::new(),
            class_latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            tenant_completed: vec![0; TENANTS.len()],
            trace: TraceReport::default(),
        }
    }

    #[test]
    fn derived_metrics_handle_empty_runs() {
        let r = empty();
        assert_eq!(r.goodput_per_mcycle(), 0.0);
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.fairness(), 1.0);
    }

    #[test]
    fn fairness_rewards_weight_proportional_service() {
        let mut r = empty();
        // Completions exactly proportional to weights 1:2:2:3.
        r.tenant_completed = vec![10, 20, 20, 30];
        assert!((r.fairness() - 1.0).abs() < 1e-12);
        // Total starvation of all but one tenant tends to 1/4.
        r.tenant_completed = vec![60, 0, 0, 0];
        assert!((r.fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_clamped_and_scaled_by_slots() {
        let mut r = empty();
        r.makespan = 1000;
        r.busy_cycles = 1000;
        assert!((r.utilization() - 0.5).abs() < 1e-12, "2 slots, half busy");
        r.busy_cycles = 5000;
        assert_eq!(r.utilization(), 1.0, "clamped");
    }
}
