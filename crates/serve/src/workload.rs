//! Seeded open-loop workload generation: the request stream a serving
//! run replays.
//!
//! The generator is open-loop (arrivals do not react to service times)
//! and fully deterministic: request `i` of master seed `s` draws all of
//! its randomness from `SplitMix64::new(case_seed(s, i))` — the same
//! per-case seed derivation the conformance fuzzer uses — so any single
//! request is reproducible in isolation and the whole stream is a pure
//! function of `(seed, count, mean interarrival)`. Interarrival gaps are
//! integer-uniform in `[1, 2·mean − 1]` (mean exactly `mean`), avoiding
//! floating-point transcendentals whose libm implementations differ
//! across hosts.

use algos::Algorithm;
use graph::{CooGraph, GraphSpec};
use simkit::fuzz::case_seed;
use simkit::{Cycle, SplitMix64};

/// Scheduling class of a tenant. Lower discriminant = more urgent; the
/// scheduler serves classes strictly in this order and preempts running
/// lower-class jobs when higher-class work waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive interactive traffic.
    High,
    /// Default tier.
    Normal,
    /// Batch/background traffic; preempted first, widest deadline.
    Low,
}

impl Priority {
    /// All classes, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index (also the class-queue index): High=0, Normal=1, Low=2.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Stable label for exports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Deadline slack as a multiple of the job's calibrated mean service
    /// time: `deadline = arrival + factor × service_estimate`.
    pub fn deadline_factor(self) -> u64 {
        match self {
            Priority::High => 4,
            Priority::Normal => 16,
            Priority::Low => 64,
        }
    }
}

/// One tenant of the service.
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// Stable tenant label.
    pub name: &'static str,
    /// Scheduling class of every request this tenant sends.
    pub priority: Priority,
    /// Relative traffic share (weighted pick over the tenant table).
    pub weight: u64,
}

/// The fixed tenant population of a serving run: one interactive tenant,
/// two normal ones, and a batch tenant that emits the largest share.
pub const TENANTS: [Tenant; 4] = [
    Tenant {
        name: "alpha",
        priority: Priority::High,
        weight: 1,
    },
    Tenant {
        name: "bravo",
        priority: Priority::Normal,
        weight: 2,
    },
    Tenant {
        name: "charlie",
        priority: Priority::Normal,
        weight: 2,
    },
    Tenant {
        name: "delta",
        priority: Priority::Low,
        weight: 3,
    },
];

/// What a request asks the pool to run: one query of the catalog on one
/// graph of the catalog. Requests with equal keys compute identical
/// results and are co-batched by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Index into [`Catalog::graphs`].
    pub graph: usize,
    /// Index into [`Catalog::queries`].
    pub query: usize,
}

/// One timestamped request of the open-loop stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Dense request id (also the trace-event argument).
    pub id: u64,
    /// Virtual-time arrival cycle.
    pub arrival: Cycle,
    /// Index into [`TENANTS`].
    pub tenant: usize,
    /// Scheduling class (copied from the tenant).
    pub priority: Priority,
    /// What to run.
    pub job: JobKey,
    /// Virtual-time SLO deadline; completions after it count as misses
    /// (they are not rejected).
    pub deadline: Cycle,
}

/// The datasets and queries the service offers.
///
/// Graphs are small synthetic benchmarks (sized by the sweep's shrink
/// factor) with deterministic weights, so every query of the catalog can
/// run on every graph. WCC is deliberately absent: it requires a
/// caller-symmetrized graph and would not share datasets with the other
/// queries.
pub struct Catalog {
    /// `(tag, graph)` datasets.
    pub graphs: Vec<(&'static str, CooGraph)>,
    /// Offered queries (algorithm + root where applicable).
    pub queries: Vec<Algorithm>,
}

impl Catalog {
    /// The standard catalog at shrink factor `shrink` (1 = largest):
    /// three graph families at `2^(10 − log2 shrink)` nodes (clamped to
    /// `[64, 1024]`), six queries (two BFS roots, two SSSP roots,
    /// PageRank, SCC).
    pub fn small(shrink: u64) -> Self {
        let log2 = 63 - shrink.max(1).leading_zeros() as i64;
        let scale = (10 - log2).clamp(6, 10) as u32;
        let n = 1u32 << scale;
        let graphs = vec![
            (
                "rmat",
                GraphSpec::rmat(scale, 4)
                    .build(0xA11CE)
                    .with_random_weights(1, 15, 101),
            ),
            (
                "er",
                GraphSpec::erdos_renyi(n, n as usize * 3)
                    .build(0xB0B)
                    .with_random_weights(1, 15, 102),
            ),
            (
                "ba",
                GraphSpec::barabasi_albert(n, 3)
                    .build(0xCAFE)
                    .with_random_weights(1, 15, 103),
            ),
        ];
        let queries = vec![
            Algorithm::bfs(0),
            Algorithm::bfs(1),
            Algorithm::sssp(0),
            Algorithm::sssp(2),
            Algorithm::pagerank(),
            Algorithm::Scc,
        ];
        Catalog { graphs, queries }
    }

    /// Every `(graph, query)` pair, in catalog order.
    pub fn jobs(&self) -> Vec<JobKey> {
        let mut out = Vec::with_capacity(self.graphs.len() * self.queries.len());
        for graph in 0..self.graphs.len() {
            for query in 0..self.queries.len() {
                out.push(JobKey { graph, query });
            }
        }
        out
    }

    /// Dense index of `key` into the [`jobs`](Catalog::jobs) order.
    pub fn job_index(&self, key: JobKey) -> usize {
        key.graph * self.queries.len() + key.query
    }

    /// Human-readable `graph/query` label.
    pub fn job_label(&self, key: JobKey) -> String {
        format!(
            "{}/{}",
            self.graphs[key.graph].0,
            self.queries[key.query].name()
        )
    }
}

/// Parameters of one generated request stream.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Master seed; request `i` derives its RNG via
    /// [`simkit::fuzz::case_seed`]`(seed, i)`.
    pub seed: u64,
    /// How many requests to emit.
    pub requests: u64,
    /// Mean virtual-time gap between arrivals (≥ 1).
    pub mean_interarrival: Cycle,
}

/// Generates the request stream, sorted by arrival.
///
/// `service_estimate` maps a [`Catalog::job_index`] to the job's
/// calibrated mean service cycles and sizes each request's deadline
/// (`arrival + priority factor × estimate`).
pub fn generate(
    cfg: &WorkloadConfig,
    catalog: &Catalog,
    service_estimate: &[Cycle],
) -> Vec<Request> {
    assert_eq!(
        service_estimate.len(),
        catalog.graphs.len() * catalog.queries.len(),
        "one service estimate per catalog job"
    );
    let mean = cfg.mean_interarrival.max(1);
    let total_weight: u64 = TENANTS.iter().map(|t| t.weight).sum();
    let mut out = Vec::with_capacity(cfg.requests as usize);
    let mut arrival: Cycle = 0;
    for i in 0..cfg.requests {
        let mut rng = SplitMix64::new(case_seed(cfg.seed, i));
        // Integer-uniform in [1, 2·mean − 1]: mean exactly `mean`, no
        // floats, no zero gaps.
        arrival += 1 + rng.next_below(2 * mean - 1);
        let mut pick = rng.next_below(total_weight);
        let mut tenant = 0;
        for (t, spec) in TENANTS.iter().enumerate() {
            if pick < spec.weight {
                tenant = t;
                break;
            }
            pick -= spec.weight;
        }
        let job = JobKey {
            graph: rng.next_below(catalog.graphs.len() as u64) as usize,
            query: rng.next_below(catalog.queries.len() as u64) as usize,
        };
        let priority = TENANTS[tenant].priority;
        let slack = priority.deadline_factor() * service_estimate[catalog.job_index(job)];
        out.push(Request {
            id: i,
            arrival,
            tenant,
            priority,
            job,
            deadline: arrival + slack,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_estimates(catalog: &Catalog) -> Vec<Cycle> {
        vec![1000; catalog.graphs.len() * catalog.queries.len()]
    }

    #[test]
    fn generation_is_deterministic() {
        let catalog = Catalog::small(16);
        let cfg = WorkloadConfig {
            seed: 7,
            requests: 64,
            mean_interarrival: 500,
        };
        let est = flat_estimates(&catalog);
        let a = generate(&cfg, &catalog, &est);
        let b = generate(&cfg, &catalog, &est);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let c = generate(&WorkloadConfig { seed: 8, ..cfg }, &catalog, &est);
        assert!(
            a.iter().zip(c.iter()).any(|(x, y)| x.arrival != y.arrival),
            "different seeds must give different streams"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing_with_sane_mean() {
        let catalog = Catalog::small(16);
        let cfg = WorkloadConfig {
            seed: 3,
            requests: 400,
            mean_interarrival: 200,
        };
        let reqs = generate(&cfg, &catalog, &flat_estimates(&catalog));
        let mut prev = 0;
        for r in &reqs {
            assert!(r.arrival > prev, "arrivals strictly increase");
            assert!(r.deadline > r.arrival);
            prev = r.arrival;
        }
        let mean = reqs.last().unwrap().arrival / 400;
        assert!(
            (100..=300).contains(&mean),
            "observed mean interarrival {mean} far from configured 200"
        );
    }

    #[test]
    fn every_tenant_and_job_appears() {
        let catalog = Catalog::small(16);
        let cfg = WorkloadConfig {
            seed: 1,
            requests: 500,
            mean_interarrival: 10,
        };
        let reqs = generate(&cfg, &catalog, &flat_estimates(&catalog));
        for t in 0..TENANTS.len() {
            assert!(reqs.iter().any(|r| r.tenant == t), "tenant {t} missing");
        }
        for job in catalog.jobs() {
            assert!(
                reqs.iter().any(|r| r.job == job),
                "job {} missing",
                catalog.job_label(job)
            );
        }
    }

    #[test]
    fn catalog_scales_with_shrink() {
        assert_eq!(Catalog::small(1).graphs[0].1.num_nodes(), 1024);
        assert_eq!(Catalog::small(4).graphs[0].1.num_nodes(), 256);
        assert_eq!(Catalog::small(64).graphs[0].1.num_nodes(), 64);
        assert_eq!(Catalog::small(1 << 20).graphs[0].1.num_nodes(), 64);
        let c = Catalog::small(16);
        assert_eq!(c.jobs().len(), c.graphs.len() * c.queries.len());
        for (i, job) in c.jobs().into_iter().enumerate() {
            assert_eq!(c.job_index(job), i);
        }
        for (_, g) in &c.graphs {
            assert!(g.is_weighted(), "every catalog graph serves SSSP");
        }
    }
}
