//! The per-bank MOMS pipeline.
//!
//! One request or response event is processed per cycle, as in the RTL:
//!
//! * **Request** → optional cache probe → on hit respond; on miss MSHR
//!   lookup → *secondary* miss appends a subentry (chaining a new row costs
//!   a cycle), *primary* miss allocates an MSHR via cuckoo insertion (each
//!   kick costs a cycle) and emits a line request to memory.
//! * **Response** → cache fill (if an array exists) → MSHR removal → the
//!   subentry chain replays one entry per cycle into the output queue.
//!
//! Responses have priority over requests (replays free MSHRs and
//! subentries, so draining them first avoids deadlock); requests and
//! replays share the single pipeline, which is the contention §V-E
//! discusses. All structural stalls (full output queue, full memory queue,
//! subentry exhaustion, failed cuckoo insertion) leave the input intact
//! and are counted.

use std::collections::VecDeque;

use simkit::trace::{EventKind, TraceEvent, Tracer};
use simkit::{Cycle, Fifo, Stats};

use crate::cache::CacheArray;
use crate::config::MomsConfig;
use crate::cuckoo::{CuckooMshr, InsertOutcome, MshrEntry};
use crate::subentry::{Subentry, SubentryBuffer, SubentryFull};

/// A read request for one 32-bit word: global line address, word offset
/// within the line, and an opaque ID returned with the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MomsReq {
    /// Global cache-line address (byte address / 64).
    pub line: u64,
    /// 32-bit-word offset within the line (0..16).
    pub word: u8,
    /// Opaque identifier (thread id / destination offset / PE index).
    pub id: u32,
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MomsResp {
    /// Line address the data belongs to.
    pub line: u64,
    /// Word offset copied from the request.
    pub word: u8,
    /// Identifier copied from the request.
    pub id: u32,
}

/// Point-in-time view of a bank's occupancy and cache statistics, returned
/// by [`MomsBank::snapshot`].
///
/// A plain value type: cheap to copy, comparable, and safe to hold across
/// further simulation (it does not borrow the bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MomsBankSnapshot {
    /// Outstanding misses right now (live MSHR entries).
    pub mshr_occupancy: usize,
    /// Peak simultaneous live MSHR entries (outstanding lines).
    pub peak_mshr_occupancy: usize,
    /// Peak simultaneous pending misses (live subentries) — the
    /// "thousands of simultaneous misses" headline metric.
    pub peak_pending_misses: usize,
    /// Cache probe hits (0 when cache-less).
    pub cache_hits: u64,
    /// Cache probe misses (0 when cache-less).
    pub cache_misses: u64,
    /// Requests refused because the cuckoo MSHR table was full.
    pub stall_mshr_full: u64,
    /// Requests refused because the subentry buffer was full.
    pub stall_subentry_full: u64,
    /// Requests refused because the memory request queue was full.
    pub stall_mem_full: u64,
}

impl MomsBankSnapshot {
    /// Hit fraction of cache probes; 0 when no probes were made.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Element-wise accumulation, for aggregating across banks: counters
    /// and peaks sum (per-bank structures are disjoint), as does current
    /// occupancy.
    pub fn accumulate(&mut self, other: &MomsBankSnapshot) {
        self.mshr_occupancy += other.mshr_occupancy;
        self.peak_mshr_occupancy += other.peak_mshr_occupancy;
        self.peak_pending_misses += other.peak_pending_misses;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.stall_mshr_full += other.stall_mshr_full;
        self.stall_subentry_full += other.stall_subentry_full;
        self.stall_mem_full += other.stall_mem_full;
    }
}

/// One in-flight burst-assembly window (DynaBurst extension).
#[derive(Debug, Clone, Copy)]
struct AsmWindow {
    /// First line of the naturally aligned window.
    base: u64,
    /// Bitmap of requested lines within the window.
    mask: u32,
    /// Cycle at which the window dispatches even if not full.
    deadline: Cycle,
}

/// One MOMS (or traditional nonblocking cache) bank.
///
/// See the crate-level example for the drive loop.
#[derive(Debug, Clone)]
pub struct MomsBank {
    cfg: MomsConfig,
    cache: Option<CacheArray>,
    in_q: Fifo<MomsReq>,
    out_q: Fifo<MomsResp>,
    mem_req_q: Fifo<(u64, u32)>,
    mem_resp_q: Fifo<(u64, u32)>,
    mshr: CuckooMshr,
    subs: SubentryBuffer,
    /// Pending replays, one `(line, subentry)` pair per response to emit;
    /// a single persistent queue shared by all in-flight replays so
    /// completing a miss never allocates.
    replay: VecDeque<(u64, Subentry)>,
    assembly: VecDeque<AsmWindow>,
    busy_until: Cycle,
    stats: Stats,
    counters: BankCounters,
    tracer: Tracer,
    /// Requests ever accepted into `in_q` (conservation ledger).
    ledger_accepted: u64,
    /// Responses ever pushed into `out_q` (conservation ledger).
    ledger_responded: u64,
}

/// Hot-path event counters kept as plain fields: the bank charges one or
/// more of these nearly every tick, where a name-keyed [`Stats`] lookup
/// would dominate the simulation loop. [`MomsBank::stats`] folds them
/// into the exported registry under their usual names.
#[derive(Debug, Clone, Copy, Default)]
struct BankCounters {
    assembled_bursts: u64,
    responses: u64,
    cache_hits: u64,
    primary_misses: u64,
    secondary_misses: u64,
    stall_out_full: u64,
    stall_mem_full: u64,
    stall_subentry_full: u64,
    stall_mshr_insert: u64,
    busy_kick_cycles: u64,
    busy_chain_cycles: u64,
}

impl MomsBank {
    /// Creates an idle bank.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MomsConfig::validate`] or the
    /// MSHR capacity is not divisible by the cuckoo way count.
    pub fn new(cfg: MomsConfig) -> Self {
        cfg.validate();
        let mshrs = if cfg.cuckoo_ways > 0 {
            // Round capacity up to a multiple of the way count.
            cfg.mshrs.div_ceil(cfg.cuckoo_ways) * cfg.cuckoo_ways
        } else {
            cfg.mshrs
        };
        MomsBank {
            cache: cfg.cache.map(CacheArray::new),
            in_q: Fifo::new(cfg.in_queue),
            out_q: Fifo::new(cfg.out_queue),
            mem_req_q: Fifo::new(cfg.mem_queue),
            mem_resp_q: Fifo::new(cfg.mem_queue),
            mshr: CuckooMshr::new(mshrs, cfg.cuckoo_ways, cfg.max_kicks),
            subs: SubentryBuffer::new(cfg.subentries, cfg.subentry_slots_per_row, cfg.chain_rows),
            replay: VecDeque::with_capacity(64),
            assembly: VecDeque::with_capacity(16),
            busy_until: 0,
            stats: Stats::new(),
            counters: BankCounters::default(),
            tracer: Tracer::disabled(),
            ledger_accepted: 0,
            ledger_responded: 0,
            cfg,
        }
    }

    /// `true` when the input queue can accept a request this cycle.
    pub fn can_accept(&self) -> bool {
        self.in_q.can_push()
    }

    /// Offers a request; returns `false` (leaving the caller to retry)
    /// when the input queue is full.
    pub fn try_request(&mut self, req: MomsReq) -> bool {
        let ok = self.in_q.push(req).is_ok();
        if ok {
            self.ledger_accepted += 1;
        }
        ok
    }

    /// Pops a completed response.
    pub fn pop_response(&mut self) -> Option<MomsResp> {
        self.out_q.pop()
    }

    /// Pops a line-burst request `(first line, line count)` destined for
    /// the next memory level (count is 1 unless burst assembly is on).
    pub fn pop_mem_request(&mut self) -> Option<(u64, u32)> {
        self.mem_req_q.pop()
    }

    /// Peeks the next pending request without consuming it.
    pub fn peek_mem_request(&self) -> Option<(u64, u32)> {
        self.mem_req_q.peek().copied()
    }

    /// Occupancy of the input queue (visible plus staged), used by the
    /// crossbar for credit-based flow control.
    pub fn in_q_len(&self) -> usize {
        self.in_q.len()
    }

    /// `true` when a memory response can be delivered this cycle.
    pub fn can_accept_mem_response(&self) -> bool {
        self.mem_resp_q.can_push()
    }

    /// Delivers a returned line; returns `false` if the response queue is
    /// full (caller retries — in hardware this backpressures the network).
    pub fn push_mem_response(&mut self, line: u64) -> bool {
        self.mem_resp_q.push((line, 1)).is_ok()
    }

    /// Delivers a returned burst of `count` consecutive lines starting at
    /// `line` (burst-assembly responses).
    pub fn push_mem_burst_response(&mut self, line: u64, count: u32) -> bool {
        self.mem_resp_q.push((line, count)).is_ok()
    }

    /// Earliest future cycle at which this bank can change observable
    /// state on its own: queued work becoming processable (possibly gated
    /// by a multi-cycle structural cost), staged queue items turning
    /// visible, or an assembly window maturing. `None` when the bank is
    /// inert — it may still hold live MSHRs waiting on memory responses,
    /// which arrive through the caller and are the caller's events.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        };
        // Work the pipeline can process once `busy_until` passes.
        if !self.in_q.is_empty() || !self.mem_resp_q.is_empty() || !self.replay.is_empty() {
            merge(self.busy_until.max(now + 1));
        }
        // Visible output waits on external consumers, staged output turns
        // visible next tick — either way the surrounding system can move.
        if !self.out_q.is_empty() || !self.mem_req_q.is_empty() {
            merge(now + 1);
        }
        if !self.assembly.is_empty() {
            let max_lines = self.cfg.burst_assembly.map_or(1, |b| b.max_lines);
            let full_mask = if max_lines >= 32 {
                u32::MAX
            } else {
                (1u32 << max_lines) - 1
            };
            for w in &self.assembly {
                if w.mask == full_mask {
                    merge(now + 1);
                } else {
                    merge(w.deadline.max(now + 1));
                }
            }
        }
        next
    }

    /// `true` when nothing is queued, pending, or replaying.
    pub fn is_idle(&self) -> bool {
        self.in_q.is_empty()
            && self.out_q.is_empty()
            && self.mem_req_q.is_empty()
            && self.mem_resp_q.is_empty()
            && self.replay.is_empty()
            && self.assembly.is_empty()
            && self.mshr.occupancy() == 0
    }

    /// Point-in-time view of this bank's occupancy and cache statistics.
    ///
    /// This is the one sanctioned way to observe a bank from outside.
    pub fn snapshot(&self) -> MomsBankSnapshot {
        let (cache_hits, cache_misses) = self
            .cache
            .as_ref()
            .map_or((0, 0), |c| (c.hits(), c.misses()));
        MomsBankSnapshot {
            mshr_occupancy: self.mshr.occupancy(),
            peak_mshr_occupancy: self.mshr.peak_occupancy(),
            peak_pending_misses: self.subs.peak_entries(),
            cache_hits,
            cache_misses,
            stall_mshr_full: self.counters.stall_mshr_insert,
            stall_subentry_full: self.counters.stall_subentry_full,
            stall_mem_full: self.counters.stall_mem_full,
        }
    }

    /// Counters: `cache_hits`, `secondary_misses`, `primary_misses`,
    /// `responses`, stalls by cause (`stall_out_full`, `stall_mem_full`,
    /// `stall_subentry_full`, `stall_mshr_insert`, `busy_kick_cycles`,
    /// `busy_chain_cycles`).
    ///
    /// Built on demand: the hot counters live in plain fields
    /// ([`BankCounters`]) and are folded in here, keeping the per-tick
    /// path free of name lookups. As with direct `Stats` use, a counter
    /// that never fired has no entry.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        let c = &self.counters;
        for (name, v) in [
            ("assembled_bursts", c.assembled_bursts),
            ("busy_chain_cycles", c.busy_chain_cycles),
            ("busy_kick_cycles", c.busy_kick_cycles),
            ("cache_hits", c.cache_hits),
            ("primary_misses", c.primary_misses),
            ("responses", c.responses),
            ("secondary_misses", c.secondary_misses),
            ("stall_mem_full", c.stall_mem_full),
            ("stall_mshr_insert", c.stall_mshr_insert),
            ("stall_out_full", c.stall_out_full),
            ("stall_subentry_full", c.stall_subentry_full),
        ] {
            if v > 0 {
                s.add(name, v);
            }
        }
        s
    }

    /// Configuration of this bank.
    pub fn config(&self) -> &MomsConfig {
        &self.cfg
    }

    /// Installs an event tracer (disabled by default). The tracer only
    /// observes; the differential suite verifies it cannot perturb timing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Live subentries right now (pending misses), for occupancy sampling.
    pub fn subentry_used(&self) -> usize {
        self.subs.used_entries()
    }

    /// Drains this bank's recorded trace events, oldest first.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// The last `n` recorded trace events, for stall diagnostics.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        self.tracer.tail(n)
    }

    /// Events lost to ring wraparound in this bank.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// One-line occupancy summary for watchdog diagnostics.
    pub fn diagnostic(&self) -> String {
        let replaying: usize = self.replay.len();
        format!(
            "in_q={} out_q={} mem_req={} mem_resp={} replay={} asm={} mshr={}/{} \
             subs={} free_rows={} busy_until={}",
            self.in_q.len(),
            self.out_q.len(),
            self.mem_req_q.len(),
            self.mem_resp_q.len(),
            replaying,
            self.assembly.len(),
            self.mshr.occupancy(),
            self.mshr.capacity(),
            self.subs.used_entries(),
            self.subs.free_rows(),
            self.busy_until,
        )
    }

    /// How often the O(capacity) structural walks run: the conservation
    /// ledger is checked every tick, the full array/chain walks every
    /// `STRUCT_CHECK_MASK + 1` ticks (a drifted counter or leaked row is
    /// still caught, just up to 1024 ticks late — a per-tick walk over
    /// every cuckoo slot, cache way, and subentry row makes paper-sized
    /// configurations hundreds of times slower).
    #[cfg(feature = "invariants")]
    const STRUCT_CHECK_MASK: Cycle = (1 << 10) - 1;

    /// Conservation ledger, checked every tick when the `invariants`
    /// feature is on: every accepted request is in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics when a request was lost or duplicated.
    #[cfg(feature = "invariants")]
    fn check_ledger(&self) {
        let replaying: u64 = self.replay.len() as u64;
        assert_eq!(
            self.ledger_accepted,
            self.ledger_responded
                + self.in_q.len() as u64
                + self.subs.used_entries() as u64
                + replaying,
            "request conservation violated: accepted {} != responded {} + queued {} \
             + pending {} + replaying {replaying}",
            self.ledger_accepted,
            self.ledger_responded,
            self.in_q.len(),
            self.subs.used_entries(),
        );
    }

    /// Deep structural consistency: cuckoo tag store, subentry free
    /// lists, cache arrays, and MSHR↔chain agreement.
    ///
    /// # Panics
    ///
    /// Panics when the MSHR/subentry alloc–free balance broke or a
    /// structure lost internal consistency.
    #[cfg(feature = "invariants")]
    fn check_structures(&self) {
        self.mshr.check_consistency();
        self.subs.check_consistency();
        if let Some(c) = &self.cache {
            c.check_consistency();
        }
        let mut pending_total = 0usize;
        let mut chain_rows = 0usize;
        for e in self.mshr.iter() {
            assert_eq!(
                self.subs.chain_len(e.head_row),
                e.pending as usize,
                "MSHR chain length disagrees with its pending count for line {}",
                e.line
            );
            pending_total += e.pending as usize;
            chain_rows += self.subs.chain_row_count(e.head_row);
        }
        assert_eq!(
            pending_total,
            self.subs.used_entries(),
            "subentries alive outside any MSHR chain"
        );
        assert_eq!(
            chain_rows,
            self.subs.total_rows() - self.subs.free_rows(),
            "subentry row alloc/free imbalance (leaked or double-freed row)"
        );
    }

    /// Advances one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_inner(now);
        #[cfg(feature = "invariants")]
        {
            self.check_ledger();
            if now & Self::STRUCT_CHECK_MASK == 0 {
                self.check_structures();
            }
        }
    }

    fn tick_inner(&mut self, now: Cycle) {
        self.in_q.tick();
        self.out_q.tick();
        self.mem_req_q.tick();
        self.mem_resp_q.tick();

        // 0. Dispatch mature assembly windows (a separate unit in the
        //    DynaBurst design; does not occupy the lookup pipeline).
        if !self.assembly.is_empty() && self.mem_req_q.can_push() {
            let full_mask = if self.cfg.burst_assembly.map_or(1, |b| b.max_lines) >= 32 {
                u32::MAX
            } else {
                (1u32 << self.cfg.burst_assembly.map_or(1, |b| b.max_lines)) - 1
            };
            if let Some(pos) = self
                .assembly
                .iter()
                .position(|w| w.deadline <= now || w.mask == full_mask)
            {
                let w = self.assembly.remove(pos).expect("position valid");
                let first = w.mask.trailing_zeros();
                let last = 31 - w.mask.leading_zeros();
                let span = last - first + 1;
                let requested = w.mask.count_ones();
                self.mem_req_q
                    .push((w.base + first as u64, span))
                    .unwrap_or_else(|_| unreachable!("checked can_push"));
                self.counters.assembled_bursts += 1;
                self.stats
                    .add("wasted_burst_lines", (span - requested) as u64);
            }
        }

        if now < self.busy_until {
            return; // paying a multi-cycle structural cost (kicks/chaining)
        }

        // 1. Replay in progress: one subentry per cycle into the output.
        if let Some(&(line, e)) = self.replay.front() {
            if self.out_q.can_push() {
                self.replay.pop_front();
                self.out_q
                    .push(MomsResp {
                        line,
                        word: e.word,
                        id: e.id,
                    })
                    .unwrap_or_else(|_| unreachable!("checked can_push"));
                self.counters.responses += 1;
                self.ledger_responded += 1;
                self.tracer.event(now, EventKind::MomsReplay, e.id as u64);
            } else {
                self.counters.stall_out_full += 1;
                self.tracer.event(now, EventKind::MomsStallReplayFull, line);
            }
            return;
        }

        // 2. Memory response: fill cache, free MSHRs, start replays. A
        //    burst response covers several lines; lines without an MSHR
        //    were speculative fill (wasted unless cached).
        if let Some(&(base, count)) = self.mem_resp_q.peek() {
            self.mem_resp_q.pop();
            let mut any = false;
            for line in base..base + count as u64 {
                if let Some(c) = &mut self.cache {
                    if let Some(evicted) = c.fill(line, now) {
                        self.tracer.event(now, EventKind::MomsEvict, evicted);
                    }
                }
                if let Some(entry) = self.mshr.remove(line) {
                    let n = self
                        .subs
                        .drain_chain_into(entry.head_row, line, &mut self.replay);
                    debug_assert_eq!(n as u32, entry.pending);
                    debug_assert!(n > 0, "MSHR with no pending subentries");
                    any = true;
                }
            }
            debug_assert!(
                any || self.cfg.burst_assembly.is_some(),
                "single-line response without MSHR"
            );
            return;
        }

        // 3. New request.
        let Some(&req) = self.in_q.peek() else {
            return;
        };

        // 3a. Cache probe.
        if let Some(c) = &mut self.cache {
            if c.probe(req.line, now) {
                if self.out_q.can_push() {
                    self.in_q.pop();
                    self.out_q
                        .push(MomsResp {
                            line: req.line,
                            word: req.word,
                            id: req.id,
                        })
                        .unwrap_or_else(|_| unreachable!("checked can_push"));
                    self.counters.cache_hits += 1;
                    self.counters.responses += 1;
                    self.ledger_responded += 1;
                    self.tracer.event(now, EventKind::MomsHit, req.line);
                } else {
                    self.counters.stall_out_full += 1;
                    self.tracer
                        .event(now, EventKind::MomsStallReplayFull, req.line);
                }
                return;
            }
        }

        // 3b. Secondary miss: append to the existing MSHR's chain.
        if let Some(entry) = self.mshr.lookup_mut(req.line) {
            let tail = entry.tail_row;
            let sub = Subentry {
                id: req.id,
                word: req.word,
            };
            match self.subs.append(tail, sub) {
                Ok(new_tail) => {
                    let chained = new_tail != tail;
                    let entry = self.mshr.lookup_mut(req.line).expect("entry still present");
                    entry.tail_row = new_tail;
                    entry.pending += 1;
                    self.in_q.pop();
                    self.counters.secondary_misses += 1;
                    self.tracer
                        .event(now, EventKind::MomsSecondaryMiss, req.line);
                    if chained {
                        // Linking a fresh row costs one extra cycle.
                        self.busy_until = now + 2;
                        self.counters.busy_chain_cycles += 1;
                        self.tracer.event(now, EventKind::SubentryChain, req.line);
                    }
                }
                Err(SubentryFull) => {
                    self.counters.stall_subentry_full += 1;
                    self.tracer
                        .event(now, EventKind::SubentryOverflow, req.line);
                }
            }
            return;
        }

        // 3c. Primary miss: allocate MSHR + subentry row, emit line read
        //     (or stage it in the assembly buffer).
        let assembly_limit = self.cfg.burst_assembly.map(|_| 16usize);
        let mem_path_free = match assembly_limit {
            None => self.mem_req_q.can_push(),
            Some(limit) => self.assembly.len() < limit || self.mem_req_q.can_push(),
        };
        if !mem_path_free {
            self.counters.stall_mem_full += 1;
            self.tracer
                .event(now, EventKind::MomsStallMemFull, req.line);
            return;
        }
        if self.mshr.is_full() {
            self.counters.stall_mshr_insert += 1;
            self.tracer
                .event(now, EventKind::MomsStallMshrFull, req.line);
            return;
        }
        let Ok(row) = self.subs.alloc_row() else {
            self.counters.stall_subentry_full += 1;
            self.tracer
                .event(now, EventKind::SubentryOverflow, req.line);
            return;
        };
        match self.mshr.insert(MshrEntry {
            line: req.line,
            head_row: row,
            tail_row: row,
            pending: 1,
        }) {
            InsertOutcome::Placed { kicks } => {
                self.subs
                    .append(
                        row,
                        Subentry {
                            id: req.id,
                            word: req.word,
                        },
                    )
                    .unwrap_or_else(|_| unreachable!("fresh row has space"));
                self.in_q.pop();
                match self.cfg.burst_assembly {
                    None => {
                        self.mem_req_q
                            .push((req.line, 1))
                            .unwrap_or_else(|_| unreachable!("checked can_push"));
                    }
                    Some(ba) => {
                        let base = req.line / ba.max_lines as u64 * ba.max_lines as u64;
                        let bit = 1u32 << (req.line - base);
                        match self.assembly.iter_mut().find(|w| w.base == base) {
                            Some(w) => w.mask |= bit,
                            None => self.assembly.push_back(AsmWindow {
                                base,
                                mask: bit,
                                deadline: now + ba.wait_cycles,
                            }),
                        }
                    }
                }
                self.counters.primary_misses += 1;
                self.tracer.event(now, EventKind::MomsPrimaryMiss, req.line);
                self.tracer.event(now, EventKind::SubentryAlloc, req.line);
                self.tracer
                    .event(now, EventKind::CuckooInsert, kicks as u64);
                if kicks > 0 {
                    self.busy_until = now + 1 + kicks as Cycle;
                    self.counters.busy_kick_cycles += kicks as u64;
                    self.tracer.event(now, EventKind::CuckooKick, kicks as u64);
                }
            }
            InsertOutcome::Failed => {
                // Return the unused row and stall; occupancy will drain.
                self.subs.release_empty_row(row);
                self.counters.stall_mshr_insert += 1;
                self.busy_until = now + self.cfg.max_kicks.max(1) as Cycle;
                self.tracer
                    .event(now, EventKind::MomsStallMshrFull, req.line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn small_cfg(cache: bool) -> MomsConfig {
        MomsConfig {
            cache: cache.then_some(CacheConfig { lines: 16, ways: 1 }),
            mshrs: 16,
            cuckoo_ways: 4,
            max_kicks: 8,
            subentries: 64,
            subentry_slots_per_row: 4,
            chain_rows: true,
            in_queue: 4,
            out_queue: 4,
            mem_queue: 4,
            burst_assembly: None,
        }
    }

    /// Drives the bank with an echo memory of the given latency until idle
    /// or `max` cycles; returns collected responses and the final cycle.
    fn drive(
        bank: &mut MomsBank,
        reqs: Vec<MomsReq>,
        mem_latency: u64,
        max: Cycle,
    ) -> Vec<MomsResp> {
        let mut pending: VecDeque<MomsReq> = reqs.into();
        let mut in_flight: VecDeque<(Cycle, u64)> = VecDeque::new();
        let mut out = Vec::new();
        for now in 0..max {
            if let Some(&r) = pending.front() {
                if bank.try_request(r) {
                    pending.pop_front();
                }
            }
            bank.tick(now);
            while let Some((line, count)) = bank.pop_mem_request() {
                debug_assert_eq!(count, 1);
                in_flight.push_back((now + mem_latency, line));
            }
            while let Some(&(ready, line)) = in_flight.front() {
                if ready <= now && bank.can_accept_mem_response() {
                    bank.push_mem_response(line);
                    in_flight.pop_front();
                } else {
                    break;
                }
            }
            while let Some(r) = bank.pop_response() {
                out.push(r);
            }
            if pending.is_empty() && in_flight.is_empty() && bank.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn miss_fetches_line_and_responds() {
        let mut bank = MomsBank::new(small_cfg(false));
        let out = drive(
            &mut bank,
            vec![MomsReq {
                line: 9,
                word: 3,
                id: 77,
            }],
            10,
            1000,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 77);
        assert_eq!(out[0].word, 3);
        assert_eq!(bank.stats().get("primary_misses"), 1);
        assert!(bank.is_idle());
    }

    #[test]
    fn secondary_misses_coalesce_into_one_fetch() {
        let mut bank = MomsBank::new(small_cfg(false));
        let reqs: Vec<MomsReq> = (0..10)
            .map(|i| MomsReq {
                line: 5,
                word: (i % 16) as u8,
                id: i,
            })
            .collect();
        let out = drive(&mut bank, reqs, 50, 5000);
        assert_eq!(out.len(), 10);
        assert_eq!(bank.stats().get("primary_misses"), 1, "one line fetch only");
        assert_eq!(bank.stats().get("secondary_misses"), 9);
        // All IDs come back exactly once.
        let mut ids: Vec<u32> = out.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cache_hit_serves_without_memory_traffic() {
        let mut bank = MomsBank::new(small_cfg(true));
        // First access misses and fills; second hits.
        let out = drive(
            &mut bank,
            vec![MomsReq {
                line: 3,
                word: 0,
                id: 1,
            }],
            5,
            500,
        );
        assert_eq!(out.len(), 1);
        let out = drive(
            &mut bank,
            vec![MomsReq {
                line: 3,
                word: 1,
                id: 2,
            }],
            5,
            500,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(bank.stats().get("cache_hits"), 1);
        assert_eq!(bank.stats().get("primary_misses"), 1);
        assert!(bank.snapshot().cache_hit_rate() > 0.0);
    }

    #[test]
    fn distinct_lines_fetch_separately() {
        let mut bank = MomsBank::new(small_cfg(false));
        let reqs: Vec<MomsReq> = (0..8)
            .map(|i| MomsReq {
                line: i as u64 * 131,
                word: 0,
                id: i,
            })
            .collect();
        let out = drive(&mut bank, reqs, 20, 5000);
        assert_eq!(out.len(), 8);
        assert_eq!(bank.stats().get("primary_misses"), 8);
        assert_eq!(bank.stats().get("secondary_misses"), 0);
    }

    #[test]
    fn traditional_bank_stalls_on_seventeenth_line() {
        // 16 MSHRs: 17 distinct outstanding lines cannot coexist, but with
        // a draining memory everything eventually completes.
        let mut bank = MomsBank::new(MomsConfig::traditional(None));
        let reqs: Vec<MomsReq> = (0..32)
            .map(|i| MomsReq {
                line: 1000 + i as u64,
                word: 0,
                id: i,
            })
            .collect();
        let out = drive(&mut bank, reqs, 100, 50_000);
        assert_eq!(out.len(), 32);
        assert!(
            bank.snapshot().peak_mshr_occupancy <= 16,
            "peak {} exceeds MSHR file",
            bank.snapshot().peak_mshr_occupancy
        );
    }

    #[test]
    fn traditional_subentry_limit_stalls_but_completes() {
        let mut bank = MomsBank::new(MomsConfig::traditional(None));
        // 20 requests to the same line: more than the 8-subentry row.
        let reqs: Vec<MomsReq> = (0..20)
            .map(|i| MomsReq {
                line: 7,
                word: 0,
                id: i,
            })
            .collect();
        let out = drive(&mut bank, reqs, 60, 50_000);
        assert_eq!(out.len(), 20);
        assert!(bank.stats().get("stall_subentry_full") > 0);
        // More than one fetch was needed since the row filled up.
        assert!(bank.stats().get("primary_misses") >= 2);
    }

    #[test]
    fn replay_is_one_per_cycle() {
        let mut bank = MomsBank::new(small_cfg(false));
        for i in 0..4u32 {
            assert!(bank.try_request(MomsReq {
                line: 1,
                word: 0,
                id: i
            }));
        }
        let mut now = 0;
        // Tick until the mem request appears, answer immediately.
        let line = loop {
            bank.tick(now);
            now += 1;
            if let Some((l, _)) = bank.pop_mem_request() {
                break l;
            }
            assert!(now < 100);
        };
        bank.push_mem_response(line);
        // Collect responses with their cycle stamps; late requests to the
        // same line re-fetch after the MSHR drained, so keep answering.
        let mut stamps = Vec::new();
        while stamps.len() < 4 {
            bank.tick(now);
            if let Some((l, _)) = bank.pop_mem_request() {
                bank.push_mem_response(l);
            }
            while let Some(r) = bank.pop_response() {
                stamps.push((now, r.id));
            }
            now += 1;
            assert!(now < 200);
        }
        // Replay emits at most one response per cycle.
        for w in stamps.windows(2) {
            assert!(w[1].0 > w[0].0, "two replays in one cycle: {stamps:?}");
        }
    }

    #[test]
    fn burst_assembly_merges_adjacent_lines() {
        use crate::config::BurstAssemblyConfig;
        let mut cfg = small_cfg(false);
        cfg.mshrs = 64;
        cfg.subentries = 256;
        cfg.burst_assembly = Some(BurstAssemblyConfig {
            max_lines: 8,
            wait_cycles: 16,
        });
        let mut bank = MomsBank::new(cfg);
        // Eight misses to consecutive lines of one window, fed as the
        // 4-deep input queue drains.
        let mut to_send: std::collections::VecDeque<u32> = (0..8u32).collect();
        let mut now = 0u64;
        let mut bursts = Vec::new();
        let mut got = 0;
        while got < 8 {
            if let Some(&i) = to_send.front() {
                if bank.try_request(MomsReq {
                    line: 64 + i as u64,
                    word: 0,
                    id: i,
                }) {
                    to_send.pop_front();
                }
            }
            bank.tick(now);
            while let Some((base, count)) = bank.pop_mem_request() {
                bursts.push((base, count));
                assert!(bank.push_mem_burst_response(base, count));
            }
            while bank.pop_response().is_some() {
                got += 1;
            }
            now += 1;
            assert!(now < 1000);
        }
        // One single burst covering the full window.
        assert_eq!(bursts, vec![(64, 8)]);
        assert_eq!(bank.stats().get("assembled_bursts"), 1);
        assert_eq!(bank.stats().get("wasted_burst_lines"), 0);
        assert!(bank.is_idle());
    }

    #[test]
    fn burst_assembly_dispatches_sparse_windows_on_deadline() {
        use crate::config::BurstAssemblyConfig;
        let mut cfg = small_cfg(false);
        cfg.burst_assembly = Some(BurstAssemblyConfig {
            max_lines: 8,
            wait_cycles: 4,
        });
        let mut bank = MomsBank::new(cfg);
        // Two misses with a hole between them: the span fetch wastes one
        // line.
        assert!(bank.try_request(MomsReq {
            line: 16,
            word: 0,
            id: 0
        }));
        assert!(bank.try_request(MomsReq {
            line: 18,
            word: 0,
            id: 1
        }));
        let mut now = 0u64;
        let mut got = 0;
        let mut bursts = Vec::new();
        while got < 2 {
            bank.tick(now);
            while let Some((base, count)) = bank.pop_mem_request() {
                bursts.push((base, count));
                assert!(bank.push_mem_burst_response(base, count));
            }
            while bank.pop_response().is_some() {
                got += 1;
            }
            now += 1;
            assert!(now < 1000);
        }
        assert_eq!(bursts, vec![(16, 3)]);
        assert_eq!(bank.stats().get("wasted_burst_lines"), 1);
    }

    #[test]
    fn peak_occupancy_tracks_thousands() {
        let mut cfg = small_cfg(false);
        cfg.mshrs = 4096;
        cfg.subentries = 8192;
        cfg.mem_queue = 4096;
        let mut bank = MomsBank::new(cfg);
        let reqs: Vec<MomsReq> = (0..2000)
            .map(|i| MomsReq {
                line: i as u64 * 7919,
                word: 0,
                id: i,
            })
            .collect();
        // Huge latency so misses accumulate.
        let out = drive(&mut bank, reqs, 5000, 100_000);
        assert_eq!(out.len(), 2000);
        assert!(
            bank.snapshot().peak_mshr_occupancy > 1000,
            "peak {} too low — misses are not accumulating",
            bank.snapshot().peak_mshr_occupancy
        );
    }
}
