//! Miss-optimized memory systems (MOMS): nonblocking caches that handle
//! tens of thousands of simultaneous misses.
//!
//! This crate is the paper's primary contribution, modelled cycle by cycle:
//!
//! * [`cuckoo`] — the MSHR store: ordinary RAM addressed through d-ary
//!   cuckoo hashing instead of an (unscalable) fully associative CAM.
//! * [`subentry`] — the subentry buffer: per-miss metadata in linked rows,
//!   so one in-flight cache line can serve thousands of pending misses.
//! * [`cache`] — optional conventional cache arrays (direct-mapped or
//!   set-associative); Fig. 12/15 show they are nearly redundant once the
//!   MSHR count is large.
//! * [`bank`] — the per-bank pipeline: cache lookup → MSHR lookup/allocate
//!   → memory request on primary miss, subentry append on secondary miss,
//!   and one-per-cycle replay on response, with all structural stalls.
//! * [`system`] — shared, private, and two-level topologies over the banks
//!   (Fig. 8) with crossbars, per-SLR die-crossing latencies, and the
//!   64-bit shared→private response width limit.
//!
//! A *traditional* nonblocking cache (16 MSHRs, 8 subentries per MSHR,
//! no row chaining) is the same bank in a different configuration
//! ([`MomsConfig::traditional`]), which is exactly how the paper frames it.
//!
//! # Example
//!
//! ```
//! use moms::{MomsBank, MomsConfig, MomsReq};
//!
//! let mut bank = MomsBank::new(MomsConfig::paper_shared_bank());
//! bank.try_request(MomsReq { line: 3, word: 2, id: 7 });
//! let mut now = 0;
//! // Drive the bank until it emits the memory request, answer it, and
//! // collect the replayed response.
//! let resp = loop {
//!     bank.tick(now);
//!     if let Some((line, _count)) = bank.pop_mem_request() {
//!         bank.push_mem_response(line);
//!     }
//!     if let Some(r) = bank.pop_response() {
//!         break r;
//!     }
//!     now += 1;
//!     assert!(now < 100);
//! };
//! assert_eq!(resp.id, 7);
//! assert_eq!(resp.word, 2);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod bank;
pub mod cache;
pub mod config;
pub mod cuckoo;
pub mod harness;
pub mod subentry;
pub mod system;

pub use bank::{MomsBank, MomsBankSnapshot, MomsReq, MomsResp};
pub use cache::{CacheArray, CacheConfig};
pub use config::MomsConfig;
pub use system::{MomsSnapshot, MomsSystem, MomsSystemConfig, Topology};
