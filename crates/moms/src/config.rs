//! Bank configuration presets.

use crate::cache::CacheConfig;

/// DynaBurst-style burst assembly (§V-A, \[5\]): primary misses wait a few
/// cycles in an assembly buffer so that misses to nearby lines can be
/// fetched as one DRAM burst, amortising per-transaction overhead at the
/// cost of extra latency and possibly fetching unrequested lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstAssemblyConfig {
    /// Lines per naturally aligned assembly window (power of two, ≤ 32 so
    /// a window never crosses the 2,048 B channel-interleave boundary).
    pub max_lines: u32,
    /// Cycles a window waits for companions before being dispatched.
    pub wait_cycles: u64,
}

impl BurstAssemblyConfig {
    /// Validates the window geometry.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` is not a power of two in `2..=32`.
    pub fn validate(&self) {
        assert!(
            self.max_lines.is_power_of_two() && (2..=32).contains(&self.max_lines),
            "assembly window must be a power of two in 2..=32 lines"
        );
    }
}

/// Configuration of one MOMS (or traditional nonblocking cache) bank.
///
/// The presets mirror §V-B: a paper-scale shared bank has 256 kB of
/// direct-mapped cache, 4,096 MSHRs, and 32,768 subentries; private banks
/// have 49,152 subentries; traditional caches have 16 fully associative
/// MSHRs with 8 subentries each and no row chaining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomsConfig {
    /// Optional cache array; `None` models the cache-less MOMS of
    /// Fig. 12/15.
    pub cache: Option<CacheConfig>,
    /// Total MSHR entries.
    pub mshrs: usize,
    /// Number of cuckoo hash ways (tables) the MSHR store uses; a value of
    /// 0 selects a fully associative lookup (traditional caches).
    pub cuckoo_ways: usize,
    /// Maximum cuckoo displacement chain before the insertion stalls and
    /// retries.
    pub max_kicks: usize,
    /// Total subentry slots.
    pub subentries: usize,
    /// Subentry slots per buffer row.
    pub subentry_slots_per_row: usize,
    /// When `true`, a full row links to a freshly allocated row
    /// (MOMS behaviour); when `false`, a full row stalls the input until
    /// the miss drains (traditional MSHR files).
    pub chain_rows: bool,
    /// Input queue depth.
    pub in_queue: usize,
    /// Output (response) queue depth.
    pub out_queue: usize,
    /// Memory-request queue depth.
    pub mem_queue: usize,
    /// Optional DynaBurst-style burst assembly for banks that talk
    /// directly to DRAM (`None` = one line per request, the paper's final
    /// choice).
    pub burst_assembly: Option<BurstAssemblyConfig>,
}

impl MomsConfig {
    /// Paper-scale shared MOMS bank: 256 kB direct-mapped cache, 4,096
    /// MSHRs, 32,768 subentries.
    pub fn paper_shared_bank() -> Self {
        MomsConfig {
            cache: Some(CacheConfig::direct_mapped_kib(256)),
            mshrs: 4096,
            cuckoo_ways: 4,
            max_kicks: 8,
            subentries: 32768,
            subentry_slots_per_row: 4,
            chain_rows: true,
            in_queue: 8,
            out_queue: 8,
            mem_queue: 16,
            burst_assembly: None,
        }
    }

    /// Paper-scale private MOMS bank: 4,096 MSHRs and 49,152 subentries;
    /// 256 kB 4-way cache when not backed by a shared MOMS.
    pub fn paper_private_bank(with_cache: bool) -> Self {
        MomsConfig {
            cache: with_cache.then(|| CacheConfig::set_associative_kib(256, 4)),
            mshrs: 4096,
            cuckoo_ways: 4,
            max_kicks: 8,
            subentries: 49152,
            subentry_slots_per_row: 4,
            chain_rows: true,
            in_queue: 8,
            out_queue: 8,
            mem_queue: 16,
            burst_assembly: None,
        }
    }

    /// Traditional nonblocking cache: 16 fully associative MSHRs with 8
    /// subentries per MSHR and no chaining (§V-B).
    pub fn traditional(cache: Option<CacheConfig>) -> Self {
        MomsConfig {
            cache,
            mshrs: 16,
            cuckoo_ways: 0,
            max_kicks: 0,
            subentries: 16 * 8,
            subentry_slots_per_row: 8,
            chain_rows: false,
            in_queue: 8,
            out_queue: 8,
            mem_queue: 16,
            burst_assembly: None,
        }
    }

    /// Returns this configuration with DynaBurst-style burst assembly
    /// enabled.
    pub fn with_burst_assembly(mut self, ba: BurstAssemblyConfig) -> Self {
        self.burst_assembly = Some(ba);
        self
    }

    /// Returns this configuration with the cache array removed — the
    /// "without cache" points of Fig. 12/15.
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Returns this configuration with the cache array replaced.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Returns this configuration with MSHR and subentry capacities scaled
    /// by `num/den` (used to keep on-chip:graph ratios when graphs are
    /// scaled down; see EXPERIMENTS.md).
    pub fn scaled(mut self, num: usize, den: usize) -> Self {
        assert!(num > 0 && den > 0, "scale factors must be nonzero");
        self.mshrs = (self.mshrs * num / den).max(16);
        self.subentries = (self.subentries * num / den).max(32);
        if let Some(c) = self.cache.take() {
            self.cache = Some(c.scaled(num, den));
        }
        self
    }

    /// `true` when the MSHR store uses a fully associative lookup.
    pub fn is_fully_associative(&self) -> bool {
        self.cuckoo_ways == 0
    }

    /// Approximate on-chip memory bits used by this bank (cache data +
    /// tags, MSHRs, subentries), for the resource model of Fig. 17.
    pub fn memory_bits(&self) -> u64 {
        let cache_bits = self
            .cache
            .as_ref()
            .map_or(0, |c| c.lines as u64 * (512 + 32));
        // MSHR entry: ~64-bit line address/tag + row pointers.
        let mshr_bits = self.mshrs as u64 * (48 + 2 * 18);
        // Subentry: ID + word offset + valid.
        let sub_bits = self.subentries as u64 * (16 + 4 + 1)
            + (self.subentries / self.subentry_slots_per_row.max(1)) as u64 * 18;
        cache_bits + mshr_bits + sub_bits
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if capacities are zero or rows cannot hold a single entry.
    pub fn validate(&self) {
        assert!(self.mshrs > 0, "at least one MSHR required");
        assert!(self.subentries > 0, "at least one subentry required");
        assert!(
            self.subentry_slots_per_row > 0,
            "rows must hold at least one subentry"
        );
        assert!(self.in_queue > 0 && self.out_queue > 0 && self.mem_queue > 0);
        if let Some(ba) = &self.burst_assembly {
            ba.validate();
        }
        if !self.chain_rows {
            // Traditional MSHR file: one row per MSHR.
            assert!(
                self.subentries >= self.mshrs,
                "traditional file needs a row per MSHR"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MomsConfig::paper_shared_bank().validate();
        MomsConfig::paper_private_bank(true).validate();
        MomsConfig::paper_private_bank(false).validate();
        MomsConfig::traditional(None).validate();
    }

    #[test]
    fn traditional_is_fully_associative_non_chaining() {
        let c = MomsConfig::traditional(None);
        assert!(c.is_fully_associative());
        assert!(!c.chain_rows);
        assert_eq!(c.mshrs, 16);
        assert_eq!(c.subentries, 128);
    }

    #[test]
    fn without_cache_strips_array() {
        let c = MomsConfig::paper_shared_bank().without_cache();
        assert!(c.cache.is_none());
        // Still a valid bank.
        c.validate();
    }

    #[test]
    fn scaled_keeps_minimums() {
        let c = MomsConfig::paper_shared_bank().scaled(1, 1024);
        assert!(c.mshrs >= 16);
        assert!(c.subentries >= 32);
        c.validate();
    }

    #[test]
    fn memory_bits_orders_sane() {
        // A full shared bank uses megabits; the traditional bank far less.
        let big = MomsConfig::paper_shared_bank().memory_bits();
        let small = MomsConfig::traditional(None).memory_bits();
        assert!(big > 1_000_000, "{big}");
        assert!(small < 50_000, "{small}");
    }
}
