//! Conventional cache arrays (tags + LRU only).
//!
//! Data values live in the functional memory image, so the array tracks
//! *presence* of lines, which is all the timing model needs. Direct-mapped
//! arrays model the paper's shared banks; 4-way set-associative arrays
//! model its private caches.

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total 64 B lines.
    pub lines: usize,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// Direct-mapped array of `kib` KiB (the paper's 256 kB shared banks).
    pub fn direct_mapped_kib(kib: usize) -> Self {
        CacheConfig {
            lines: kib * 1024 / 64,
            ways: 1,
        }
    }

    /// `ways`-associative array of `kib` KiB (the paper's private caches).
    pub fn set_associative_kib(kib: usize, ways: usize) -> Self {
        CacheConfig {
            lines: kib * 1024 / 64,
            ways,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.lines * 64
    }

    /// Returns the geometry scaled by `num/den`, staying a valid array.
    pub fn scaled(mut self, num: usize, den: usize) -> Self {
        self.lines = (self.lines * num / den).max(self.ways.max(1));
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A tag-only cache array with true-LRU replacement within each set.
///
/// # Example
///
/// ```
/// use moms::{CacheArray, CacheConfig};
/// let mut c = CacheArray::new(CacheConfig { lines: 4, ways: 2 });
/// assert!(!c.probe(100, 0));
/// c.fill(100, 1);
/// assert!(c.probe(100, 2));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>,
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Creates an empty array.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero, `ways` is zero, or `ways` does not
    /// divide `lines`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.lines > 0 && cfg.ways > 0, "degenerate cache geometry");
        assert_eq!(cfg.lines % cfg.ways, 0, "ways must divide lines");
        let sets = cfg.lines / cfg.ways;
        CacheArray {
            cfg,
            sets,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    lru: 0,
                };
                cfg.lines
            ],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Looks up `line`; updates LRU and hit/miss counters. `now` orders
    /// LRU decisions.
    pub fn probe(&mut self, line: u64, now: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        for w in self.ways[base..base + self.cfg.ways].iter_mut() {
            if w.valid && w.tag == line {
                w.lru = now;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs `line`, evicting the LRU way of its set if needed.
    /// Returns the evicted line, if a valid one was displaced.
    pub fn fill(&mut self, line: u64, now: u64) -> Option<u64> {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        // Already present (race between fill and probe): refresh.
        if let Some(w) = self.ways[base..base + self.cfg.ways]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
        {
            w.lru = now;
            return None;
        }
        let victim = self.ways[base..base + self.cfg.ways]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("nonzero ways");
        let evicted = victim.valid.then_some(victim.tag);
        *victim = Way {
            tag: line,
            valid: true,
            lru: now,
        };
        evicted
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Verifies tag-store consistency: no set holds two valid ways with
    /// the same tag, and every valid tag maps to its set.
    ///
    /// # Panics
    ///
    /// Panics on any violation; used by the `invariants` feature.
    pub fn check_consistency(&self) {
        for set in 0..self.sets {
            let base = set * self.cfg.ways;
            let ways = &self.ways[base..base + self.cfg.ways];
            for (i, w) in ways.iter().enumerate() {
                if !w.valid {
                    continue;
                }
                assert_eq!(
                    self.set_of(w.tag),
                    set,
                    "tag {} stored in the wrong set {set}",
                    w.tag
                );
                assert!(
                    !ways[i + 1..].iter().any(|o| o.valid && o.tag == w.tag),
                    "tag {} duplicated within set {set}",
                    w.tag
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut c = CacheArray::new(CacheConfig { lines: 16, ways: 1 });
        assert!(!c.probe(5, 0));
        c.fill(5, 1);
        assert!(c.probe(5, 2));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = CacheArray::new(CacheConfig { lines: 4, ways: 1 });
        assert_eq!(c.fill(0, 0), None, "empty way: nothing displaced");
        assert_eq!(c.fill(4, 1), Some(0), "same set (line % 4) evicts 0");
        assert!(!c.probe(0, 2), "line 0 must have been evicted");
        assert!(c.probe(4, 3));
    }

    #[test]
    fn set_associative_keeps_both() {
        let mut c = CacheArray::new(CacheConfig { lines: 8, ways: 2 });
        c.fill(0, 0);
        c.fill(4, 1); // same set, second way
        assert!(c.probe(0, 2));
        assert!(c.probe(4, 3));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheArray::new(CacheConfig { lines: 2, ways: 2 });
        c.fill(0, 0);
        c.fill(1, 1);
        let _ = c.probe(0, 2); // 0 becomes most recent
        c.fill(2, 3); // must evict 1
        assert!(c.probe(0, 4));
        assert!(!c.probe(1, 5));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = CacheArray::new(CacheConfig { lines: 2, ways: 2 });
        c.fill(7, 0);
        c.fill(7, 1);
        c.fill(8, 2);
        // Both lines fit: 7 was not duplicated into the second way.
        assert!(c.probe(7, 3));
        assert!(c.probe(8, 4));
    }

    #[test]
    fn kib_constructors() {
        let d = CacheConfig::direct_mapped_kib(256);
        assert_eq!(d.lines, 4096);
        assert_eq!(d.bytes(), 256 * 1024);
        let s = CacheConfig::set_associative_kib(256, 4);
        assert_eq!(s.ways, 4);
        assert_eq!(s.bytes(), 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_geometry_panics() {
        let _ = CacheArray::new(CacheConfig { lines: 5, ways: 2 });
    }
}
