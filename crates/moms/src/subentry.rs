//! The subentry buffer: per-miss metadata in linked rows.
//!
//! Every pending miss stores a *subentry* — the request ID and the word
//! offset within the line — in a row belonging to its MSHR. Rows hold a
//! fixed number of slots; in MOMS mode a full row links to a freshly
//! allocated row (costing one pipeline cycle), while in traditional mode a
//! full row stalls the input until the miss drains.

/// One pending miss: request ID plus the 32-bit-word offset within the
/// cache line (0..16 for 64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subentry {
    /// Issuer-chosen identifier (thread id / destination offset).
    pub id: u32,
    /// Word offset of the requested value within the line.
    pub word: u8,
}

/// Sentinel row index meaning "no next row".
pub const NO_ROW: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Row {
    entries: Vec<Subentry>,
    next: u32,
}

/// A pool of subentry rows with a free list, as stored in URAM (§V-B).
///
/// # Example
///
/// ```
/// use moms::subentry::{Subentry, SubentryBuffer};
///
/// let mut buf = SubentryBuffer::new(16, 4, true);
/// let head = buf.alloc_row().unwrap();
/// let mut tail = head;
/// for i in 0..6 {
///     tail = buf.append(tail, Subentry { id: i, word: 0 }).unwrap();
/// }
/// let drained = buf.take_chain(head);
/// assert_eq!(drained.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct SubentryBuffer {
    rows: Vec<Row>,
    free: Vec<u32>,
    slots_per_row: usize,
    used_entries: usize,
    peak_entries: usize,
    chain_rows: bool,
}

/// Error returned when the buffer has no free row or (in traditional mode)
/// the row is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubentryFull;

impl std::fmt::Display for SubentryFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subentry buffer full")
    }
}

impl std::error::Error for SubentryFull {}

impl SubentryBuffer {
    /// Creates a buffer holding `total_entries` subentries in rows of
    /// `slots_per_row`; `chain_rows` selects MOMS (true) or traditional
    /// (false) overflow behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_row` is zero or exceeds `total_entries`.
    pub fn new(total_entries: usize, slots_per_row: usize, chain_rows: bool) -> Self {
        assert!(slots_per_row > 0, "rows must hold at least one entry");
        assert!(total_entries >= slots_per_row, "buffer smaller than a row");
        let num_rows = total_entries / slots_per_row;
        let rows = (0..num_rows)
            .map(|_| Row {
                entries: Vec::with_capacity(slots_per_row),
                next: NO_ROW,
            })
            .collect();
        SubentryBuffer {
            rows,
            free: (0..num_rows as u32).rev().collect(),
            slots_per_row,
            used_entries: 0,
            peak_entries: 0,
            chain_rows,
        }
    }

    /// Number of rows not currently allocated.
    pub fn free_rows(&self) -> usize {
        self.free.len()
    }

    /// Live subentries across all rows.
    pub fn used_entries(&self) -> usize {
        self.used_entries
    }

    /// Highest number of simultaneously live subentries observed.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Allocates an empty row, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`SubentryFull`] when no row is free.
    pub fn alloc_row(&mut self) -> Result<u32, SubentryFull> {
        let idx = self.free.pop().ok_or(SubentryFull)?;
        debug_assert!(self.rows[idx as usize].entries.is_empty());
        self.rows[idx as usize].next = NO_ROW;
        Ok(idx)
    }

    /// Appends `e` to the chain whose *tail* row is `tail`, returning the
    /// (possibly new) tail row index.
    ///
    /// # Errors
    ///
    /// Returns [`SubentryFull`] when the tail row is full and either
    /// chaining is disabled or no free row remains. The buffer is
    /// unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `tail` is not a valid allocated row.
    pub fn append(&mut self, tail: u32, e: Subentry) -> Result<u32, SubentryFull> {
        let t = tail as usize;
        if self.rows[t].entries.len() < self.slots_per_row {
            self.rows[t].entries.push(e);
            self.used_entries += 1;
            self.peak_entries = self.peak_entries.max(self.used_entries);
            return Ok(tail);
        }
        if !self.chain_rows {
            return Err(SubentryFull);
        }
        let new_tail = self.alloc_row()?;
        self.rows[t].next = new_tail;
        self.rows[new_tail as usize].entries.push(e);
        self.used_entries += 1;
        self.peak_entries = self.peak_entries.max(self.used_entries);
        Ok(new_tail)
    }

    /// Returns a row allocated with [`alloc_row`](Self::alloc_row) that was
    /// never written (used when a failed MSHR insertion abandons its row).
    ///
    /// # Panics
    ///
    /// Panics if the row holds entries.
    pub fn release_empty_row(&mut self, row: u32) {
        assert!(
            self.rows[row as usize].entries.is_empty(),
            "row {row} is not empty"
        );
        self.rows[row as usize].next = NO_ROW;
        self.free.push(row);
    }

    /// Drains the whole chain starting at `head`, freeing its rows and
    /// returning the subentries in append order.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not a valid allocated row.
    pub fn take_chain(&mut self, head: u32) -> Vec<Subentry> {
        let mut out = Vec::new();
        let mut cur = head;
        while cur != NO_ROW {
            let row = &mut self.rows[cur as usize];
            out.append(&mut row.entries);
            let next = row.next;
            row.next = NO_ROW;
            self.free.push(cur);
            cur = next;
        }
        self.used_entries -= out.len();
        out
    }

    /// Like [`take_chain`](Self::take_chain), but appends each subentry
    /// tagged with `line` into a caller-owned queue instead of allocating
    /// a fresh `Vec` — the bank's replay path reuses one queue across the
    /// whole run. Rows free and the live-entry count drops immediately,
    /// exactly as with `take_chain`. Returns the number of drained
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not a valid allocated row.
    pub fn drain_chain_into(
        &mut self,
        head: u32,
        line: u64,
        out: &mut std::collections::VecDeque<(u64, Subentry)>,
    ) -> usize {
        let mut n = 0;
        let mut cur = head;
        while cur != NO_ROW {
            let row = &mut self.rows[cur as usize];
            for e in row.entries.drain(..) {
                out.push_back((line, e));
                n += 1;
            }
            let next = row.next;
            row.next = NO_ROW;
            self.free.push(cur);
            cur = next;
        }
        self.used_entries -= n;
        n
    }

    /// Number of subentries in the chain starting at `head` (O(rows)).
    pub fn chain_len(&self, head: u32) -> usize {
        let mut n = 0;
        let mut cur = head;
        while cur != NO_ROW {
            n += self.rows[cur as usize].entries.len();
            cur = self.rows[cur as usize].next;
        }
        n
    }

    /// Number of rows in the chain starting at `head` (O(rows)).
    pub fn chain_row_count(&self, head: u32) -> usize {
        let mut n = 0;
        let mut cur = head;
        while cur != NO_ROW {
            n += 1;
            cur = self.rows[cur as usize].next;
        }
        n
    }

    /// Total rows in the pool (free plus allocated).
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Verifies structural consistency: the live-entry counter matches the
    /// per-row sums, the free list holds only empty, distinct rows, and no
    /// free row links anywhere.
    ///
    /// # Panics
    ///
    /// Panics on any violation; used by the `invariants` feature.
    pub fn check_consistency(&self) {
        let total: usize = self.rows.iter().map(|r| r.entries.len()).sum();
        assert_eq!(
            total, self.used_entries,
            "subentry used_entries counter drifted from per-row sums"
        );
        let mut seen = std::collections::HashSet::new();
        for &idx in &self.free {
            assert!(seen.insert(idx), "row {idx} on the free list twice");
            let row = &self.rows[idx as usize];
            assert!(row.entries.is_empty(), "free row {idx} holds entries");
            assert_eq!(row.next, NO_ROW, "free row {idx} links to another row");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_drain_preserves_order() {
        let mut buf = SubentryBuffer::new(64, 4, true);
        let head = buf.alloc_row().unwrap();
        let mut tail = head;
        for i in 0..10u32 {
            tail = buf
                .append(
                    tail,
                    Subentry {
                        id: i,
                        word: (i % 16) as u8,
                    },
                )
                .unwrap();
        }
        assert_eq!(buf.used_entries(), 10);
        assert_eq!(buf.chain_len(head), 10);
        let drained = buf.take_chain(head);
        assert_eq!(
            drained.iter().map(|s| s.id).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(buf.used_entries(), 0);
        // All rows returned to the free list.
        assert_eq!(buf.free_rows(), 16);
    }

    #[test]
    fn chaining_allocates_rows() {
        let mut buf = SubentryBuffer::new(12, 4, true);
        let head = buf.alloc_row().unwrap();
        assert_eq!(buf.free_rows(), 2);
        let mut tail = head;
        for i in 0..5u32 {
            tail = buf.append(tail, Subentry { id: i, word: 0 }).unwrap();
        }
        assert_ne!(tail, head, "fifth entry should land in a chained row");
        assert_eq!(buf.free_rows(), 1);
    }

    #[test]
    fn traditional_mode_rejects_overflow() {
        let mut buf = SubentryBuffer::new(16, 8, false);
        let head = buf.alloc_row().unwrap();
        let mut tail = head;
        for i in 0..8u32 {
            tail = buf.append(tail, Subentry { id: i, word: 0 }).unwrap();
        }
        assert_eq!(tail, head);
        assert_eq!(
            buf.append(tail, Subentry { id: 9, word: 0 }),
            Err(SubentryFull)
        );
        // Drain then reuse.
        assert_eq!(buf.take_chain(head).len(), 8);
    }

    #[test]
    fn exhaustion_reports_full() {
        let mut buf = SubentryBuffer::new(8, 4, true);
        let a = buf.alloc_row().unwrap();
        let _b = buf.alloc_row().unwrap();
        assert_eq!(buf.alloc_row(), Err(SubentryFull));
        // Fill row a, then overflow must fail (no free rows to chain).
        let mut tail = a;
        for i in 0..4u32 {
            tail = buf.append(tail, Subentry { id: i, word: 0 }).unwrap();
        }
        assert_eq!(
            buf.append(tail, Subentry { id: 4, word: 0 }),
            Err(SubentryFull)
        );
    }

    #[test]
    fn peak_tracking() {
        let mut buf = SubentryBuffer::new(32, 4, true);
        let head = buf.alloc_row().unwrap();
        let mut tail = head;
        for i in 0..7u32 {
            tail = buf.append(tail, Subentry { id: i, word: 0 }).unwrap();
        }
        buf.take_chain(head);
        assert_eq!(buf.used_entries(), 0);
        assert_eq!(buf.peak_entries(), 7);
    }
}
