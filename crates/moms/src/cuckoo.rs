//! Cuckoo-hashed MSHR store.
//!
//! The scalability trick of the MOMS (FPGA'19 \[6\]): MSHRs live in ordinary
//! RAM indexed by d independent hash functions instead of a fully
//! associative CAM, so thousands of entries fit in BRAM. An insertion that
//! finds all d candidate slots occupied displaces one occupant
//! ("kicks" it) to one of its alternative slots, possibly chaining; each
//! kick costs a pipeline cycle, and a chain longer than `max_kicks` makes
//! the insertion fail (the bank stalls and retries).

/// Payload stored per MSHR: the subentry list handles plus a count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Cache-line address this MSHR tracks.
    pub line: u64,
    /// Head row index in the subentry buffer.
    pub head_row: u32,
    /// Tail row index in the subentry buffer.
    pub tail_row: u32,
    /// Number of pending subentries.
    pub pending: u32,
}

/// Result of a cuckoo insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Entry placed; the insertion consumed `1 + kicks` pipeline cycles.
    Placed {
        /// Number of displacements performed.
        kicks: u32,
    },
    /// The displacement chain exceeded `max_kicks`; the table is unchanged
    /// and the caller must stall and retry.
    Failed,
}

/// A d-ary cuckoo hash table of [`MshrEntry`]s keyed by line address, or a
/// fully associative table when constructed with zero ways (traditional
/// nonblocking caches).
///
/// # Example
///
/// ```
/// use moms::cuckoo::{CuckooMshr, MshrEntry};
///
/// let mut t = CuckooMshr::new(64, 4, 8);
/// let e = MshrEntry { line: 42, head_row: 0, tail_row: 0, pending: 1 };
/// assert!(matches!(t.insert(e), moms::cuckoo::InsertOutcome::Placed { .. }));
/// assert_eq!(t.lookup(42).unwrap().line, 42);
/// assert!(t.remove(42).is_some());
/// assert!(t.lookup(42).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CuckooMshr {
    /// `ways` tables of `slots_per_way` slots each; fully associative mode
    /// uses a single linear table.
    slots: Vec<Option<MshrEntry>>,
    ways: usize,
    slots_per_way: usize,
    max_kicks: usize,
    occupancy: usize,
    peak_occupancy: usize,
    /// Persistent BFS scratch (allocated once; the insert slow path is hot
    /// at high occupancy and must not allocate per call).
    scratch: BfsScratch,
}

/// Reusable BFS working set for cuckoo eviction-path search. Visited marks
/// are epoch-stamped so reuse costs nothing: a slot is visited in the
/// current search iff `stamp[slot] == epoch`.
#[derive(Debug, Clone)]
struct BfsScratch {
    /// Parent slot on the eviction path; `u32::MAX` marks a start slot.
    parent: Vec<u32>,
    depth: Vec<u32>,
    stamp: Vec<u32>,
    queue: Vec<u32>,
    epoch: u32,
}

impl BfsScratch {
    fn new(capacity: usize) -> Self {
        BfsScratch {
            parent: vec![u32::MAX; capacity],
            depth: vec![0; capacity],
            stamp: vec![0; capacity],
            queue: Vec::with_capacity(capacity),
            epoch: 0,
        }
    }

    /// Starts a fresh search: bumps the epoch (resetting stamps lazily)
    /// and empties the queue.
    fn begin(&mut self) {
        self.queue.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn visited(&self, slot: usize) -> bool {
        self.stamp[slot] == self.epoch
    }

    fn visit(&mut self, slot: usize, depth: u32, parent: u32) {
        self.stamp[slot] = self.epoch;
        self.depth[slot] = depth;
        self.parent[slot] = parent;
    }
}

/// SplitMix-style finalizer with a per-way tweak (free function so the
/// insert path can hash while holding disjoint borrows of the table).
#[inline]
fn hash_slot(way: usize, line: u64, slots_per_way: usize) -> usize {
    let mut z = line ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(way as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    way * slots_per_way + (z % slots_per_way as u64) as usize
}

impl CuckooMshr {
    /// Creates a table with `capacity` total slots split over `ways` hash
    /// tables (`ways == 0` selects fully associative lookup).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not divisible by `ways` (when
    /// `ways > 0`).
    pub fn new(capacity: usize, ways: usize, max_kicks: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        if ways > 0 {
            assert_eq!(capacity % ways, 0, "capacity must divide evenly by ways");
        }
        CuckooMshr {
            slots: vec![None; capacity],
            ways,
            slots_per_way: capacity.checked_div(ways).unwrap_or(capacity),
            max_kicks,
            occupancy: 0,
            peak_occupancy: 0,
            scratch: BfsScratch::new(capacity),
        }
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy ever reached.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `true` when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.occupancy == self.slots.len()
    }

    fn hash(&self, way: usize, line: u64) -> usize {
        hash_slot(way, line, self.slots_per_way)
    }

    /// Finds the entry for `line`, if present.
    pub fn lookup(&self, line: u64) -> Option<&MshrEntry> {
        if self.ways == 0 {
            return self.slots.iter().flatten().find(|e| e.line == line);
        }
        for w in 0..self.ways {
            if let Some(e) = &self.slots[self.hash(w, line)] {
                if e.line == line {
                    return Some(e);
                }
            }
        }
        None
    }

    /// Mutable lookup.
    pub fn lookup_mut(&mut self, line: u64) -> Option<&mut MshrEntry> {
        if self.ways == 0 {
            return self.slots.iter_mut().flatten().find(|e| e.line == line);
        }
        for w in 0..self.ways {
            let idx = self.hash(w, line);
            if matches!(&self.slots[idx], Some(e) if e.line == line) {
                return self.slots[idx].as_mut();
            }
        }
        None
    }

    /// Inserts a fresh entry.
    ///
    /// Fully associative mode scans for any free slot. Cuckoo mode tries
    /// the d candidate slots and then displaces occupants up to
    /// `max_kicks` times.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an entry for the same line already exists —
    /// callers must use [`lookup_mut`](Self::lookup_mut) for secondary
    /// misses.
    pub fn insert(&mut self, entry: MshrEntry) -> InsertOutcome {
        debug_assert!(self.lookup(entry.line).is_none(), "duplicate MSHR");
        if self.ways == 0 {
            if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
                *slot = Some(entry);
                self.note_insert();
                return InsertOutcome::Placed { kicks: 0 };
            }
            return InsertOutcome::Failed;
        }

        // Fast path: any empty candidate slot.
        for w in 0..self.ways {
            let idx = self.hash(w, entry.line);
            if self.slots[idx].is_none() {
                self.slots[idx] = Some(entry);
                self.note_insert();
                return InsertOutcome::Placed { kicks: 0 };
            }
        }

        // BFS over the cuckoo graph for an eviction path ending in an
        // empty slot, bounded by `max_kicks` displacements. On success the
        // entries along the path shift one step and the new entry takes
        // the first slot; on failure the table is untouched. (Hardware
        // performs the same displacements sequentially, one per cycle,
        // which is the cost we report as `kicks`.)
        let (ways, spw, max_kicks) = (self.ways, self.slots_per_way, self.max_kicks);
        self.scratch.begin();
        for w in 0..ways {
            let s = hash_slot(w, entry.line, spw);
            if !self.scratch.visited(s) {
                self.scratch.visit(s, 1, u32::MAX);
                self.scratch.queue.push(s as u32);
            }
        }
        let mut qhead = 0usize;
        while qhead < self.scratch.queue.len() {
            let slot = self.scratch.queue[qhead] as usize;
            qhead += 1;
            if self.scratch.depth[slot] as usize > max_kicks {
                continue;
            }
            let occupant = self.slots[slot].expect("BFS only visits occupied slots");
            for w in 0..ways {
                let alt = hash_slot(w, occupant.line, spw);
                if alt == slot {
                    continue;
                }
                if self.slots[alt].is_none() {
                    // Found a path: shift entries from `slot` into `alt`,
                    // walking parents back to a start slot.
                    let kicks = self.scratch.depth[slot];
                    self.slots[alt] = self.slots[slot];
                    let mut cur = slot;
                    while self.scratch.parent[cur] != u32::MAX {
                        let p = self.scratch.parent[cur] as usize;
                        self.slots[cur] = self.slots[p];
                        cur = p;
                    }
                    self.slots[cur] = Some(entry);
                    self.note_insert();
                    return InsertOutcome::Placed { kicks };
                }
                if !self.scratch.visited(alt) && (self.scratch.depth[slot] as usize) < max_kicks {
                    let d = self.scratch.depth[slot] + 1;
                    self.scratch.visit(alt, d, slot as u32);
                    self.scratch.queue.push(alt as u32);
                }
            }
        }
        InsertOutcome::Failed
    }

    /// Iterates over the live entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.slots.iter().flatten()
    }

    /// Verifies structural consistency: the occupancy counter matches the
    /// live entry count, no line has two entries, and (in cuckoo mode)
    /// every entry sits in one of its d candidate slots.
    ///
    /// # Panics
    ///
    /// Panics on any violation; used by the `invariants` feature.
    pub fn check_consistency(&self) {
        let live = self.slots.iter().flatten().count();
        assert_eq!(
            live, self.occupancy,
            "cuckoo occupancy counter drifted from live entry count"
        );
        let mut seen = std::collections::HashSet::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(e) = slot else { continue };
            assert!(seen.insert(e.line), "duplicate MSHR for line {}", e.line);
            if self.ways > 0 {
                assert!(
                    (0..self.ways).any(|w| self.hash(w, e.line) == idx),
                    "MSHR for line {} stored in slot {idx}, unreachable by its hashes",
                    e.line
                );
            }
        }
    }

    fn note_insert(&mut self) {
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
    }

    /// Removes and returns the entry for `line`.
    pub fn remove(&mut self, line: u64) -> Option<MshrEntry> {
        if self.ways == 0 {
            for slot in self.slots.iter_mut() {
                if matches!(slot, Some(e) if e.line == line) {
                    self.occupancy -= 1;
                    return slot.take();
                }
            }
            return None;
        }
        for w in 0..self.ways {
            let idx = self.hash(w, line);
            if matches!(&self.slots[idx], Some(e) if e.line == line) {
                self.occupancy -= 1;
                return self.slots[idx].take();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u64) -> MshrEntry {
        MshrEntry {
            line,
            head_row: 0,
            tail_row: 0,
            pending: 1,
        }
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut t = CuckooMshr::new(64, 4, 8);
        for l in 0..20u64 {
            assert!(matches!(
                t.insert(entry(l * 97)),
                InsertOutcome::Placed { .. }
            ));
        }
        assert_eq!(t.occupancy(), 20);
        for l in 0..20u64 {
            assert!(t.lookup(l * 97).is_some());
        }
        assert!(t.lookup(5).is_none());
        for l in 0..20u64 {
            assert!(t.remove(l * 97).is_some());
        }
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.peak_occupancy(), 20);
    }

    #[test]
    fn lookup_mut_updates_entry() {
        let mut t = CuckooMshr::new(16, 4, 4);
        t.insert(entry(7));
        t.lookup_mut(7).unwrap().pending = 42;
        assert_eq!(t.lookup(7).unwrap().pending, 42);
    }

    #[test]
    fn cuckoo_reaches_high_load_factor() {
        // 4-way cuckoo should comfortably fill well past 80%.
        let cap = 1024;
        let mut t = CuckooMshr::new(cap, 4, 16);
        let mut inserted = 0;
        for l in 0..cap as u64 {
            match t.insert(entry(l.wrapping_mul(0x5851_F42D_4C95_7F2D))) {
                InsertOutcome::Placed { .. } => inserted += 1,
                InsertOutcome::Failed => break,
            }
        }
        assert!(
            inserted as f64 > 0.8 * cap as f64,
            "load factor too low: {inserted}/{cap}"
        );
    }

    #[test]
    fn failed_insert_leaves_table_consistent() {
        let mut t = CuckooMshr::new(8, 4, 2);
        let mut lines = vec![];
        // Fill until failure.
        for l in 0..1000u64 {
            match t.insert(entry(l)) {
                InsertOutcome::Placed { .. } => lines.push(l),
                InsertOutcome::Failed => break,
            }
        }
        // Every placed line is still findable after the failure.
        for &l in &lines {
            assert!(t.lookup(l).is_some(), "lost line {l}");
        }
        assert_eq!(t.occupancy(), lines.len());
    }

    #[test]
    fn fully_associative_mode() {
        let mut t = CuckooMshr::new(4, 0, 0);
        for l in [100u64, 200, 300, 400] {
            assert!(matches!(
                t.insert(entry(l)),
                InsertOutcome::Placed { kicks: 0 }
            ));
        }
        assert!(t.is_full());
        assert!(matches!(t.insert(entry(500)), InsertOutcome::Failed));
        assert!(t.lookup(300).is_some());
        t.remove(300);
        assert!(matches!(t.insert(entry(500)), InsertOutcome::Placed { .. }));
    }

    #[test]
    fn kicks_are_reported() {
        // Force collisions by filling a tiny table.
        let mut t = CuckooMshr::new(8, 2, 8);
        let mut total_kicks = 0;
        for l in 0..8u64 {
            if let InsertOutcome::Placed { kicks } = t.insert(entry(l)) {
                total_kicks += kicks;
            }
        }
        // With a 2-way table at high load some displacement must happen.
        assert!(total_kicks > 0 || t.occupancy() < 8);
    }
}
