//! Shared, private, and two-level MOMS topologies (Fig. 8), with
//! multidie-aware crossbars (Figs. 5/7) and static bank→channel binding.
//!
//! * **Shared** — all PEs reach all banks through a crossbar; each bank is
//!   statically bound to the DRAM channel (and SLR) that owns its address
//!   range, so bank→DRAM never crosses dies.
//! * **Private** — one bank per PE, no inter-PE coalescing, banks reach any
//!   channel.
//! * **Two-level** — private banks filter requests; their line misses go
//!   through the crossbar to shared banks, whose responses return over a
//!   64-bit-wide link (8 cycles per 64 B line).
//!
//! Die crossings add [`MomsSystemConfig::crossing_latency`] cycles per SLR
//! hop in each direction; requests and responses between same-SLR endpoints
//! pay only the base network latency.

use simkit::trace::{TraceConfig, TraceEvent, Tracer, Track};
use simkit::{Cycle, Fifo, Stats};

use dram::{DramRequest, MemorySystem, INTERLEAVE_BYTES, LINE_BYTES};

use crate::bank::{MomsBank, MomsBankSnapshot, MomsReq, MomsResp};
use crate::config::MomsConfig;

/// Point-in-time view of a whole MOMS topology, returned by
/// [`MomsSystem::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MomsSnapshot {
    /// Accumulated per-bank counters across both levels.
    pub banks: MomsBankSnapshot,
    /// Peak simultaneous pending misses, counted at the level the PEs talk
    /// to (private when present, else shared) to avoid double-counting a
    /// miss that is pending in both levels.
    pub peak_outstanding_misses: usize,
    /// Peak simultaneous outstanding lines (live MSHRs) over all banks.
    pub peak_outstanding_lines: usize,
}

/// MOMS organisation (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A single level of banks shared by every PE.
    Shared,
    /// One bank per PE, no shared level.
    Private,
    /// Private banks backed by shared banks.
    TwoLevel,
}

impl Topology {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Shared => "shared",
            Topology::Private => "private",
            Topology::TwoLevel => "two-level",
        }
    }
}

/// Configuration of a [`MomsSystem`].
#[derive(Debug, Clone)]
pub struct MomsSystemConfig {
    /// Organisation of the banks.
    pub topology: Topology,
    /// Number of PE-side ports.
    pub num_pes: usize,
    /// Number of DRAM channels the shared level is bound to.
    pub num_channels: usize,
    /// Total shared banks (must be a multiple of `num_channels`); ignored
    /// for [`Topology::Private`].
    pub shared_banks: usize,
    /// Shared-bank configuration.
    pub shared: MomsConfig,
    /// Private-bank configuration; ignored for [`Topology::Shared`].
    pub private: MomsConfig,
    /// SLR hosting each PE.
    pub pe_slr: Vec<u8>,
    /// SLR hosting each DRAM channel (its banks live there too).
    pub channel_slr: Vec<u8>,
    /// Extra latency per SLR boundary crossed, each direction (Fig. 5).
    pub crossing_latency: u64,
    /// Network latency between same-SLR endpoints.
    pub base_net_latency: u64,
    /// Cycles a 64 B line occupies the shared→private response link
    /// (64-bit width ⇒ 8).
    pub resp_link_cycles_per_line: u64,
}

impl MomsSystemConfig {
    /// A paper-like two-level 16 PE / 16 bank configuration on 4 channels.
    pub fn paper_two_level_16_16() -> Self {
        MomsSystemConfig {
            topology: Topology::TwoLevel,
            num_pes: 16,
            num_channels: 4,
            shared_banks: 16,
            shared: MomsConfig::paper_shared_bank(),
            private: MomsConfig::paper_private_bank(false),
            pe_slr: default_pe_slrs(16),
            channel_slr: default_channel_slrs(4),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent sizes (see source for the exact conditions).
    pub fn validate(&self) {
        assert!(self.num_pes > 0, "at least one PE");
        assert!(self.num_channels > 0, "at least one channel");
        assert_eq!(self.pe_slr.len(), self.num_pes, "one SLR per PE");
        assert_eq!(
            self.channel_slr.len(),
            self.num_channels,
            "one SLR per channel"
        );
        if !matches!(self.topology, Topology::Private) {
            assert!(self.shared_banks > 0, "shared level needs banks");
            assert_eq!(
                self.shared_banks % self.num_channels,
                0,
                "banks must split evenly across channels"
            );
        }
        if matches!(self.topology, Topology::TwoLevel) {
            assert!(
                self.private.burst_assembly.is_none(),
                "burst assembly only applies to banks that talk to DRAM;                  two-level private banks talk to the shared MOMS"
            );
        }
    }
}

/// The paper's SLR split for PEs: 30% bottom (SLR0), 15% central (SLR1),
/// 55% top (SLR2) (§V-A).
pub fn default_pe_slrs(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| {
            let f = (i as f64 + 0.5) / n as f64;
            if f < 0.30 {
                0
            } else if f < 0.45 {
                1
            } else {
                2
            }
        })
        .collect()
}

/// The f1 channel placement: central SLR hosts two controllers, the outer
/// SLRs one each (§V-A).
pub fn default_channel_slrs(n: usize) -> Vec<u8> {
    match n {
        1 => vec![1],
        2 => vec![1, 1],
        3 => vec![0, 1, 1],
        _ => (0..n)
            .map(|i| match i % 4 {
                0 => 0,
                1 | 2 => 1,
                _ => 2,
            })
            .collect(),
    }
}

/// Lines per channel-interleave block.
const LINES_PER_BLOCK: u64 = INTERLEAVE_BYTES / LINE_BYTES;

/// DRAM id bit marking MOMS ownership.
const MOMS_ID_FLAG: u64 = 1 << 63;

fn encode_dram_id(bank: usize, line: u64) -> u64 {
    debug_assert!(line < 1 << 48, "line address exceeds 48 bits");
    MOMS_ID_FLAG | (bank as u64) << 48 | line
}

fn decode_dram_id(id: u64) -> (usize, u64) {
    (((id >> 48) & 0x7FFF) as usize, id & ((1 << 48) - 1))
}

/// An item travelling through a network with a per-item ready time.
#[derive(Debug, Clone, Copy)]
struct InFlight<T> {
    ready: Cycle,
    item: T,
}

/// Sentinel in `route_scratch`: this PE has no pending request.
const NO_TARGET: u32 = u32::MAX;

/// Round-robin pointer helper.
fn rr_next(ptr: &mut usize, n: usize) -> usize {
    let v = *ptr;
    *ptr = (v + 1) % n.max(1);
    v
}

/// A complete MOMS as seen by the accelerator: per-PE request/response
/// ports on one side, one or more DRAM channels on the other.
///
/// Drive with [`tick`](Self::tick); route DRAM responses whose id has bit
/// 63 set back via [`dram_response`](Self::dram_response).
#[derive(Debug)]
pub struct MomsSystem {
    cfg: MomsSystemConfig,
    /// Private banks (one per PE); empty for [`Topology::Shared`].
    private: Vec<MomsBank>,
    /// Shared banks; empty for [`Topology::Private`].
    shared: Vec<MomsBank>,
    /// Per-PE request entry queues.
    pe_req: Vec<Fifo<MomsReq>>,
    /// Per-PE response exit queues.
    pe_resp: Vec<Fifo<MomsResp>>,
    /// Requests in flight towards each shared bank.
    req_net: Vec<Vec<InFlight<MomsReq>>>,
    /// Responses in flight towards each PE (from the shared level in
    /// Shared topology).
    resp_net: Vec<Vec<InFlight<MomsResp>>>,
    /// Two-level only: line responses in flight to each PE's private bank.
    line_net: Vec<Vec<InFlight<u64>>>,
    /// Two-level only: cycle at which each PE's response link frees up.
    link_free: Vec<Cycle>,
    /// Per-bank stash of DRAM responses awaiting bank queue space.
    dram_stash: Vec<std::collections::VecDeque<(u64, u32)>>,
    /// Round-robin arbitration pointers per shared bank.
    req_rr: Vec<usize>,
    /// Per-PE memoised target bank of the head request in the routing
    /// scans (`NO_TARGET` = no pending request). Refilled every tick so
    /// the per-(bank, PE) round-robin probes compare a cached index
    /// instead of re-hashing the line address each time.
    route_scratch: Vec<u32>,
    /// Per-shared-bank count of PEs whose memoised head request targets
    /// it; banks with a zero count skip their round-robin scan entirely.
    bank_scratch: Vec<u16>,
    banks_per_channel: usize,
    /// DRAM-side transaction counters kept as plain fields (hot path);
    /// folded into the [`stats`](Self::stats) aggregate on demand.
    n_dram_line_requests: u64,
    n_dram_transactions: u64,
    /// Optional request trace: accepted `(pe, line)` pairs, capped.
    trace: Option<Vec<(u16, u64)>>,
    trace_cap: usize,
}

impl MomsSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MomsSystemConfig) -> Self {
        cfg.validate();
        let private = match cfg.topology {
            Topology::Shared => Vec::new(),
            _ => (0..cfg.num_pes)
                .map(|_| MomsBank::new(cfg.private.clone()))
                .collect(),
        };
        let shared = match cfg.topology {
            Topology::Private => Vec::new(),
            _ => (0..cfg.shared_banks)
                .map(|_| MomsBank::new(cfg.shared.clone()))
                .collect(),
        };
        let nb = shared.len().max(1);
        let banks_per_channel = if shared.is_empty() {
            0
        } else {
            cfg.shared_banks / cfg.num_channels
        };
        let n_dram_requesters = match cfg.topology {
            Topology::Private => cfg.num_pes,
            _ => cfg.shared_banks,
        };
        MomsSystem {
            pe_req: (0..cfg.num_pes).map(|_| Fifo::new(4)).collect(),
            pe_resp: (0..cfg.num_pes).map(|_| Fifo::new(16)).collect(),
            // Network occupancy is credit-bounded by the destination
            // queues; reserve enough up front that steady state never
            // grows these buffers.
            req_net: (0..nb).map(|_| Vec::with_capacity(32)).collect(),
            resp_net: (0..cfg.num_pes).map(|_| Vec::with_capacity(32)).collect(),
            line_net: (0..cfg.num_pes).map(|_| Vec::with_capacity(32)).collect(),
            link_free: vec![0; cfg.num_pes],
            dram_stash: vec![std::collections::VecDeque::new(); n_dram_requesters],
            req_rr: vec![0; nb],
            route_scratch: vec![NO_TARGET; cfg.num_pes],
            bank_scratch: vec![0; nb],
            banks_per_channel,
            n_dram_line_requests: 0,
            n_dram_transactions: 0,
            trace: None,
            trace_cap: 0,
            private,
            shared,
            cfg,
        }
    }

    /// Which shared bank owns a line: the channel that owns the address,
    /// then a hash over that channel's banks.
    fn shared_bank_for_line(&self, line: u64) -> usize {
        let ch = ((line / LINES_PER_BLOCK) % self.cfg.num_channels as u64) as usize;
        let mut z = line ^ 0xD6E8_FEB8_6659_FD93;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let within = (z % self.banks_per_channel as u64) as usize;
        ch * self.banks_per_channel + within
    }

    fn net_latency(&self, slr_a: u8, slr_b: u8) -> u64 {
        let hops = slr_a.abs_diff(slr_b) as u64;
        self.cfg.base_net_latency + self.cfg.crossing_latency * hops
    }

    fn shared_bank_slr(&self, bank: usize) -> u8 {
        let ch = bank / self.banks_per_channel.max(1);
        self.cfg.channel_slr[ch.min(self.cfg.num_channels - 1)]
    }

    /// `true` when PE `pe` can enqueue a request this cycle.
    pub fn can_accept(&self, pe: usize) -> bool {
        self.pe_req[pe].can_push()
    }

    /// Offers a request from PE `pe`; the id must fit 16 bits (it is
    /// combined with the PE index inside shared banks). Returns `false`
    /// when the port is full.
    ///
    /// # Panics
    ///
    /// Panics if `req.id` exceeds 16 bits or `pe` is out of range.
    pub fn try_request(&mut self, pe: usize, req: MomsReq) -> bool {
        assert!(req.id < 1 << 16, "request id must fit 16 bits");
        let accepted = self.pe_req[pe].push(req).is_ok();
        if accepted {
            if let Some(t) = &mut self.trace {
                if t.len() < self.trace_cap {
                    t.push((pe as u16, req.line));
                }
            }
        }
        accepted
    }

    /// Starts recording accepted requests as a `(pe, line)` trace, keeping
    /// at most `cap` entries. Replay it against other configurations with
    /// [`crate::harness::TraceRun::execute_tagged`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Vec::with_capacity(cap.min(1 << 20)));
        self.trace_cap = cap;
    }

    /// Takes the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<(u16, u64)> {
        self.trace.take().unwrap_or_default()
    }

    /// Installs event tracers on every bank of both levels (private banks
    /// on `moms.private[i]` tracks, shared banks on `moms.shared[i]`).
    /// Distinct from [`enable_trace`](Self::enable_trace), which records
    /// `(pe, line)` request pairs for replay harnesses.
    pub fn enable_event_tracing(&mut self, cfg: &TraceConfig) {
        for (i, b) in self.private.iter_mut().enumerate() {
            b.set_tracer(Tracer::for_track(Track::moms_private(i), cfg));
        }
        for (i, b) in self.shared.iter_mut().enumerate() {
            b.set_tracer(Tracer::for_track(Track::moms_shared(i), cfg));
        }
    }

    /// Drains every bank's event stream, one `Vec` per bank in a
    /// deterministic order (private banks first, then shared).
    pub fn take_trace_events(&mut self) -> Vec<Vec<TraceEvent>> {
        self.private
            .iter_mut()
            .chain(self.shared.iter_mut())
            .map(|b| b.take_trace_events())
            .collect()
    }

    /// The last `n` events across all banks, merged in time order.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        let streams = self
            .private
            .iter()
            .chain(self.shared.iter())
            .map(|b| b.trace_tail(n))
            .collect();
        let merged = simkit::trace::merge_events(streams);
        let skip = merged.len().saturating_sub(n);
        merged.into_iter().skip(skip).collect()
    }

    /// Events lost to ring wraparound, summed over banks.
    pub fn trace_dropped(&self) -> u64 {
        self.private
            .iter()
            .chain(self.shared.iter())
            .map(|b| b.trace_dropped())
            .sum()
    }

    /// Current live MSHR entries summed over every bank (for sampling).
    pub fn mshr_occupancy(&self) -> usize {
        self.private
            .iter()
            .chain(self.shared.iter())
            .map(|b| b.snapshot().mshr_occupancy)
            .sum()
    }

    /// Current live subentries (pending misses) summed over every bank.
    pub fn subentry_used(&self) -> usize {
        self.private
            .iter()
            .chain(self.shared.iter())
            .map(|b| b.subentry_used())
            .sum()
    }

    /// Pops a completed response for PE `pe`, with the original id.
    pub fn pop_response(&mut self, pe: usize) -> Option<MomsResp> {
        self.pe_resp[pe].pop()
    }

    /// `true` when `id` belongs to this MOMS (set bit 63).
    pub fn owns_dram_id(id: u64) -> bool {
        id & MOMS_ID_FLAG != 0
    }

    /// Delivers a DRAM read completion previously issued by this system;
    /// `lines` is the response's line count (1 unless burst assembly is
    /// enabled on the issuing bank).
    pub fn dram_response(&mut self, id: u64, lines: u32) {
        let (bank, line) = decode_dram_id(id);
        self.dram_stash[bank].push_back((line, lines));
    }

    /// Advances one cycle, exchanging line fetches with `mem`.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemorySystem) {
        for q in &mut self.pe_req {
            q.tick();
        }
        for q in &mut self.pe_resp {
            q.tick();
        }

        match self.cfg.topology {
            Topology::Shared => self.tick_shared_level_from_pes(now),
            Topology::Private => self.tick_private_front(now),
            Topology::TwoLevel => {
                self.tick_private_front(now);
                self.tick_shared_level_from_private(now);
            }
        }

        // Tick banks and exchange with DRAM.
        self.tick_dram_side(now, mem);

        // Deliver responses to PEs.
        match self.cfg.topology {
            Topology::Shared => self.deliver_shared_responses_to_pes(now),
            Topology::Private => self.deliver_private_responses(now),
            Topology::TwoLevel => {
                self.route_shared_lines_to_private(now);
                self.deliver_private_responses(now);
            }
        }
    }

    /// PE queues → crossbar → shared banks (Shared topology).
    fn tick_shared_level_from_pes(&mut self, now: Cycle) {
        let npes = self.cfg.num_pes;
        // Memoise each PE's head-request target bank once per tick: the
        // per-(bank, PE) round-robin probes below then compare a cached
        // index instead of re-hashing the line address every time. Grant
        // order and results are identical to hashing in the inner loop.
        let mut pending = 0usize;
        self.bank_scratch.fill(0);
        for pe in 0..npes {
            self.route_scratch[pe] = match self.pe_req[pe].peek() {
                Some(req) => {
                    pending += 1;
                    let b = self.shared_bank_for_line(req.line);
                    self.bank_scratch[b] += 1;
                    b as u32
                }
                None => NO_TARGET,
            };
        }
        if pending > 0 {
            for b in 0..self.shared.len() {
                // A bank no PE is heading for would scan to no effect.
                if self.bank_scratch[b] == 0 {
                    continue;
                }
                // Credit: in-flight plus queued must fit the bank input
                // queue.
                let inflight = self.req_net[b].len();
                if inflight + self.shared[b].in_q_len() >= self.shared[b].config().in_queue {
                    continue;
                }
                let start = self.req_rr[b];
                let mut pe = start;
                for _ in 0..npes {
                    if self.route_scratch[pe] != b as u32 {
                        pe += 1;
                        if pe == npes {
                            pe = 0;
                        }
                        continue;
                    }
                    let req = self.pe_req[pe].pop().expect("memoised head present");
                    // A later bank in this same tick may take this PE's
                    // *next* request: refresh the memo.
                    self.bank_scratch[b] -= 1;
                    self.route_scratch[pe] = match self.pe_req[pe].peek() {
                        Some(r) => {
                            let nb = self.shared_bank_for_line(r.line);
                            self.bank_scratch[nb] += 1;
                            nb as u32
                        }
                        None => NO_TARGET,
                    };
                    let lat = self.net_latency(self.cfg.pe_slr[pe], self.shared_bank_slr(b));
                    let wrapped = MomsReq {
                        id: (pe as u32) << 16 | req.id,
                        ..req
                    };
                    self.req_net[b].push(InFlight {
                        ready: now + lat,
                        item: wrapped,
                    });
                    rr_next(&mut self.req_rr[b], npes);
                    break;
                }
            }
        }
        // Mature arrivals into bank inputs.
        let (req_net, shared) = (&mut self.req_net, &mut self.shared);
        for (b, bank) in shared.iter_mut().enumerate() {
            Self::drain_ready(&mut req_net[b], now, |item| {
                bank.can_accept() && bank.try_request(item)
            });
        }
    }

    /// PE queues → own private bank (Private and TwoLevel topologies).
    fn tick_private_front(&mut self, _now: Cycle) {
        for pe in 0..self.cfg.num_pes {
            if let Some(&req) = self.pe_req[pe].peek() {
                if self.private[pe].can_accept() && self.private[pe].try_request(req) {
                    self.pe_req[pe].pop();
                }
            }
        }
    }

    /// Private bank line misses → crossbar → shared banks (TwoLevel).
    fn tick_shared_level_from_private(&mut self, now: Cycle) {
        let npes = self.cfg.num_pes;
        // Same memoisation as `tick_shared_level_from_pes`, keyed on each
        // private bank's pending line request.
        let mut pending = 0usize;
        self.bank_scratch.fill(0);
        for pe in 0..npes {
            self.route_scratch[pe] = match self.private[pe].peek_mem_request() {
                Some((line, count)) => {
                    debug_assert_eq!(count, 1, "two-level private banks emit single lines");
                    pending += 1;
                    let b = self.shared_bank_for_line(line);
                    self.bank_scratch[b] += 1;
                    b as u32
                }
                None => NO_TARGET,
            };
        }
        if pending > 0 {
            for b in 0..self.shared.len() {
                if self.bank_scratch[b] == 0 {
                    continue;
                }
                let inflight = self.req_net[b].len();
                if inflight + self.shared[b].in_q_len() >= self.shared[b].config().in_queue {
                    continue;
                }
                let start = self.req_rr[b];
                let mut pe = start;
                for _ in 0..npes {
                    if self.route_scratch[pe] != b as u32 {
                        pe += 1;
                        if pe == npes {
                            pe = 0;
                        }
                        continue;
                    }
                    let (line, _) = self.private[pe].peek_mem_request().expect("memoised head");
                    self.private[pe].pop_mem_request();
                    self.bank_scratch[b] -= 1;
                    self.route_scratch[pe] = match self.private[pe].peek_mem_request() {
                        Some((l, _)) => {
                            let nb = self.shared_bank_for_line(l);
                            self.bank_scratch[nb] += 1;
                            nb as u32
                        }
                        None => NO_TARGET,
                    };
                    let lat = self.net_latency(self.cfg.pe_slr[pe], self.shared_bank_slr(b));
                    self.req_net[b].push(InFlight {
                        ready: now + lat,
                        item: MomsReq {
                            line,
                            word: 0,
                            id: pe as u32,
                        },
                    });
                    rr_next(&mut self.req_rr[b], npes);
                    break;
                }
            }
        }
        let (req_net, shared) = (&mut self.req_net, &mut self.shared);
        for (b, bank) in shared.iter_mut().enumerate() {
            Self::drain_ready(&mut req_net[b], now, |item| {
                bank.can_accept() && bank.try_request(item)
            });
        }
    }

    /// Ticks banks, forwards their memory requests to DRAM (with static
    /// channel binding), and feeds stashed DRAM responses back.
    fn tick_dram_side(&mut self, now: Cycle, mem: &mut MemorySystem) {
        let to_dram_direct = matches!(self.cfg.topology, Topology::Private);

        for i in 0..self.private.len() {
            let bank = &mut self.private[i];
            bank.tick(now);
            if to_dram_direct {
                if let Some((line, count)) = bank.peek_mem_request() {
                    let addr = line * LINE_BYTES;
                    let (ch, _) = mem.route(addr);
                    if mem.can_accept(ch) {
                        bank.pop_mem_request();
                        mem.push_request(
                            now,
                            DramRequest::read(encode_dram_id(i, line), addr, count),
                        )
                        .unwrap_or_else(|_| unreachable!("checked can_accept"));
                        self.n_dram_line_requests += count as u64;
                        self.n_dram_transactions += 1;
                    }
                }
                while let Some(&(line, count)) = self.dram_stash[i].front() {
                    if bank.can_accept_mem_response() && bank.push_mem_burst_response(line, count) {
                        self.dram_stash[i].pop_front();
                    } else {
                        break;
                    }
                }
            }
        }

        let banks_per_channel = self.banks_per_channel;
        for b in 0..self.shared.len() {
            let bank = &mut self.shared[b];
            bank.tick(now);
            if let Some((line, count)) = bank.peek_mem_request() {
                let addr = line * LINE_BYTES;
                let (ch, _) = mem.route(addr);
                debug_assert_eq!(
                    ch,
                    b / banks_per_channel.max(1),
                    "bank {b} bound to wrong channel"
                );
                if mem.can_accept(ch) {
                    bank.pop_mem_request();
                    mem.push_request(now, DramRequest::read(encode_dram_id(b, line), addr, count))
                        .unwrap_or_else(|_| unreachable!("checked can_accept"));
                    self.n_dram_line_requests += count as u64;
                    self.n_dram_transactions += 1;
                }
            }
            while let Some(&(line, count)) = self.dram_stash[b].front() {
                if bank.can_accept_mem_response() && bank.push_mem_burst_response(line, count) {
                    self.dram_stash[b].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Shared bank responses → crossbar → PE ports (Shared topology).
    fn deliver_shared_responses_to_pes(&mut self, now: Cycle) {
        for b in 0..self.shared.len() {
            // One response per bank per cycle into the network.
            if let Some(resp) = self.shared[b].pop_response() {
                let pe = (resp.id >> 16) as usize;
                let orig = MomsResp {
                    id: resp.id & 0xFFFF,
                    ..resp
                };
                let lat = self.net_latency(self.shared_bank_slr(b), self.cfg.pe_slr[pe]);
                self.resp_net[pe].push(InFlight {
                    ready: now + lat,
                    item: orig,
                });
            }
        }
        let (resp_net, pe_resp) = (&mut self.resp_net, &mut self.pe_resp);
        for (pe, port) in pe_resp.iter_mut().enumerate() {
            Self::drain_ready(&mut resp_net[pe], now, |item| port.push(item).is_ok());
        }
    }

    /// Shared bank responses → width-limited link → private banks
    /// (TwoLevel).
    fn route_shared_lines_to_private(&mut self, now: Cycle) {
        for b in 0..self.shared.len() {
            if let Some(resp) = self.shared[b].pop_response() {
                let pe = resp.id as usize;
                let lat = self.net_latency(self.shared_bank_slr(b), self.cfg.pe_slr[pe]);
                self.line_net[pe].push(InFlight {
                    ready: now + lat,
                    item: resp.line,
                });
            }
        }
        for pe in 0..self.cfg.num_pes {
            // The 64-bit link admits one line every
            // `resp_link_cycles_per_line` cycles.
            if now < self.link_free[pe] {
                continue;
            }
            let bank = &mut self.private[pe];
            let link_cost = self.cfg.resp_link_cycles_per_line;
            let mut delivered = false;
            Self::drain_ready_one(&mut self.line_net[pe], now, |line| {
                if bank.can_accept_mem_response() && bank.push_mem_response(line) {
                    delivered = true;
                    true
                } else {
                    false
                }
            });
            if delivered {
                self.link_free[pe] = now + link_cost;
            }
        }
    }

    /// Private bank responses → PE ports (Private and TwoLevel).
    fn deliver_private_responses(&mut self, _now: Cycle) {
        for pe in 0..self.cfg.num_pes {
            if self.pe_resp[pe].can_push() {
                if let Some(resp) = self.private[pe].pop_response() {
                    self.pe_resp[pe]
                        .push(resp)
                        .unwrap_or_else(|_| unreachable!("checked can_push"));
                }
            }
        }
    }

    /// Moves every matured item for which `sink` returns `true` out of the
    /// network buffer; preserves order among unmatured/unaccepted items.
    /// Single in-place compaction pass: no per-item shifting.
    fn drain_ready<T: Copy>(
        net: &mut Vec<InFlight<T>>,
        now: Cycle,
        mut sink: impl FnMut(T) -> bool,
    ) {
        let mut w = 0;
        for r in 0..net.len() {
            let it = net[r];
            if it.ready <= now && sink(it.item) {
                continue; // consumed
            }
            net[w] = it;
            w += 1;
        }
        net.truncate(w);
    }

    /// Like [`drain_ready`](Self::drain_ready) but moves at most one item.
    fn drain_ready_one<T: Copy>(
        net: &mut Vec<InFlight<T>>,
        now: Cycle,
        mut sink: impl FnMut(T) -> bool,
    ) {
        for i in 0..net.len() {
            if net[i].ready <= now {
                if sink(net[i].item) {
                    net.remove(i);
                }
                return;
            }
        }
    }

    /// Earliest future cycle at which this MOMS can change observable
    /// state: a bank's own next event, a network item maturing (gated for
    /// line responses by the width-limited link), or queued/stashed items
    /// a tick would move. `None` when fully quiescent — outstanding
    /// misses then wait solely on DRAM, whose completions are the
    /// caller's events.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // `now + 1` is the floor of every merged value, so once any
        // source reports it the min cannot improve: return immediately
        // and spare the per-bank probes.
        if self.pe_req.iter().any(|q| !q.is_empty())
            || self.pe_resp.iter().any(|q| !q.is_empty())
            || self.dram_stash.iter().any(|s| !s.is_empty())
        {
            return Some(now + 1);
        }
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
            c <= now + 1
        };
        for b in self.private.iter().chain(self.shared.iter()) {
            if let Some(c) = b.next_event(now) {
                if merge(c) {
                    return next;
                }
            }
        }
        for net in self.req_net.iter() {
            for it in net {
                if merge(it.ready.max(now + 1)) {
                    return next;
                }
            }
        }
        for net in self.resp_net.iter() {
            for it in net {
                if merge(it.ready.max(now + 1)) {
                    return next;
                }
            }
        }
        for (pe, net) in self.line_net.iter().enumerate() {
            for it in net {
                if merge(it.ready.max(self.link_free[pe]).max(now + 1)) {
                    return next;
                }
            }
        }
        next
    }

    /// `true` when every queue, network, and bank is drained.
    pub fn is_idle(&self) -> bool {
        self.pe_req.iter().all(|q| q.is_empty())
            && self.pe_resp.iter().all(|q| q.is_empty())
            && self.req_net.iter().all(|v| v.is_empty())
            && self.resp_net.iter().all(|v| v.is_empty())
            && self.line_net.iter().all(|v| v.is_empty())
            && self.dram_stash.iter().all(|v| v.is_empty())
            && self.private.iter().all(|b| b.is_idle())
            && self.shared.iter().all(|b| b.is_idle())
    }

    /// Aggregate statistics over every bank plus system counters, including
    /// combined `cache_probe_hits`/`cache_probe_misses` across both levels
    /// (the hit-rate definition of Fig. 12).
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        if self.n_dram_line_requests > 0 {
            s.add("dram_line_requests", self.n_dram_line_requests);
        }
        if self.n_dram_transactions > 0 {
            s.add("dram_transactions", self.n_dram_transactions);
        }
        for b in self.private.iter().chain(self.shared.iter()) {
            s.merge(&b.stats());
        }
        let snap = self.snapshot();
        s.add("cache_probe_hits", snap.banks.cache_hits);
        s.add("cache_probe_misses", snap.banks.cache_misses);
        s.add(
            "peak_outstanding_misses",
            snap.peak_outstanding_misses as u64,
        );
        s.add("peak_outstanding_lines", snap.peak_outstanding_lines as u64);
        s
    }

    /// Point-in-time view of occupancy and cache statistics across every
    /// bank of the topology.
    pub fn snapshot(&self) -> MomsSnapshot {
        let mut banks = MomsBankSnapshot::default();
        for b in self.private.iter().chain(self.shared.iter()) {
            banks.accumulate(&b.snapshot());
        }
        // Outstanding misses are counted at the level PEs talk to: the
        // private banks when they exist, else the shared banks. (A miss
        // pending in a private bank also has a line request pending in the
        // shared level; counting both would double-count.)
        let front: &[MomsBank] = if self.private.is_empty() {
            &self.shared
        } else {
            &self.private
        };
        MomsSnapshot {
            peak_outstanding_misses: front.iter().map(|b| b.snapshot().peak_pending_misses).sum(),
            peak_outstanding_lines: banks.peak_mshr_occupancy,
            banks,
        }
    }

    /// Combined cache hit rate over both levels (0 when cache-less).
    pub fn cache_hit_rate(&self) -> f64 {
        self.snapshot().banks.cache_hit_rate()
    }

    /// Per-bank occupancies and network fill as a watchdog diagnostic
    /// section.
    pub fn diagnostic(&self) -> simkit::DiagnosticSection {
        let mut s = simkit::DiagnosticSection::new("moms");
        s.push("topology", self.cfg.topology.name());
        let nets: usize = self.req_net.iter().map(|v| v.len()).sum::<usize>()
            + self.resp_net.iter().map(|v| v.len()).sum::<usize>()
            + self.line_net.iter().map(|v| v.len()).sum::<usize>();
        s.push("in_flight_network_items", nets);
        let stash: usize = self.dram_stash.iter().map(|v| v.len()).sum();
        s.push("stashed_dram_responses", stash);
        let pe_q: usize = self.pe_req.iter().map(|q| q.len()).sum::<usize>()
            + self.pe_resp.iter().map(|q| q.len()).sum::<usize>();
        s.push("pe_port_queue_items", pe_q);
        for (i, b) in self.private.iter().enumerate() {
            if !b.is_idle() {
                s.push(format!("private[{i}]"), b.diagnostic());
            }
        }
        for (i, b) in self.shared.iter().enumerate() {
            if !b.is_idle() {
                s.push(format!("shared[{i}]"), b.diagnostic());
            }
        }
        s
    }

    /// Configuration.
    pub fn config(&self) -> &MomsSystemConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::DramConfig;

    fn tiny_bank(cache: bool) -> MomsConfig {
        let mut c = MomsConfig::paper_shared_bank().scaled(1, 64);
        if !cache {
            c = c.without_cache();
        }
        c
    }

    fn system(topology: Topology, pes: usize, banks: usize, channels: usize) -> MomsSystem {
        MomsSystem::new(MomsSystemConfig {
            topology,
            num_pes: pes,
            num_channels: channels,
            shared_banks: banks,
            shared: tiny_bank(false),
            private: tiny_bank(false),
            pe_slr: default_pe_slrs(pes),
            channel_slr: default_channel_slrs(channels),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        })
    }

    /// Drives until all `expect` responses arrive; returns (cycles, ids per pe).
    fn run(
        sys: &mut MomsSystem,
        reqs: Vec<(usize, MomsReq)>,
        expect: usize,
        max: Cycle,
    ) -> (Cycle, Vec<Vec<u32>>) {
        let mut mem = MemorySystem::new(DramConfig::default(), sys.config().num_channels);
        let mut pending: std::collections::VecDeque<(usize, MomsReq)> = reqs.into();
        let mut got = vec![Vec::new(); sys.config().num_pes];
        let mut count = 0;
        for now in 0..max {
            while let Some(&(pe, req)) = pending.front() {
                if sys.try_request(pe, req) {
                    pending.pop_front();
                } else {
                    break;
                }
            }
            sys.tick(now, &mut mem);
            mem.tick(now);
            for ch in 0..mem.num_channels() {
                while let Some(r) = mem.pop_response(now, ch) {
                    assert!(MomsSystem::owns_dram_id(r.id));
                    sys.dram_response(r.id, r.lines);
                }
            }
            for (pe, bucket) in got.iter_mut().enumerate() {
                while let Some(r) = sys.pop_response(pe) {
                    bucket.push(r.id);
                    count += 1;
                }
            }
            if count == expect {
                return (now, got);
            }
        }
        panic!("only {count}/{expect} responses after {max} cycles");
    }

    #[test]
    fn shared_serves_all_pes() {
        let mut sys = system(Topology::Shared, 4, 8, 2);
        let reqs: Vec<(usize, MomsReq)> = (0..32u32)
            .map(|i| {
                (
                    (i % 4) as usize,
                    MomsReq {
                        line: (i as u64 % 8) * 64,
                        word: 0,
                        id: i,
                    },
                )
            })
            .collect();
        let (_, got) = run(&mut sys, reqs, 32, 20_000);
        for (pe, bucket) in got.iter().enumerate().take(4) {
            assert_eq!(bucket.len(), 8, "pe {pe} got {bucket:?}");
        }
        // Heavy coalescing: far fewer DRAM line requests than responses.
        let s = sys.stats();
        assert!(
            s.get("dram_line_requests") <= 8,
            "expected ≤8 line fetches, got {}",
            s.get("dram_line_requests")
        );
    }

    #[test]
    fn private_duplicates_line_fetches() {
        let mut sys = system(Topology::Private, 4, 0, 2);
        // All four PEs want the same line: no inter-PE coalescing.
        let reqs: Vec<(usize, MomsReq)> = (0..4)
            .map(|pe| {
                (
                    pe,
                    MomsReq {
                        line: 42,
                        word: 0,
                        id: pe as u32,
                    },
                )
            })
            .collect();
        run(&mut sys, reqs, 4, 20_000);
        assert_eq!(sys.stats().get("dram_line_requests"), 4);
    }

    #[test]
    fn two_level_coalesces_across_pes() {
        let mut sys = system(Topology::TwoLevel, 4, 8, 2);
        let reqs: Vec<(usize, MomsReq)> = (0..4)
            .map(|pe| {
                (
                    pe,
                    MomsReq {
                        line: 42,
                        word: (pe % 16) as u8,
                        id: pe as u32,
                    },
                )
            })
            .collect();
        run(&mut sys, reqs, 4, 20_000);
        // The shared level merges the four private line misses into one
        // DRAM fetch.
        assert_eq!(sys.stats().get("dram_line_requests"), 1);
    }

    #[test]
    fn two_level_intra_pe_merges_never_reach_shared() {
        let mut sys = system(Topology::TwoLevel, 2, 4, 2);
        // PE0 asks the same line 8 times: private MSHR merges them.
        let reqs: Vec<(usize, MomsReq)> = (0..8u32)
            .map(|i| {
                (
                    0usize,
                    MomsReq {
                        line: 7,
                        word: (i % 16) as u8,
                        id: i,
                    },
                )
            })
            .collect();
        run(&mut sys, reqs, 8, 20_000);
        assert_eq!(sys.stats().get("dram_line_requests"), 1);
    }

    #[test]
    fn responses_preserve_ids_and_words() {
        let mut sys = system(Topology::Shared, 2, 4, 2);
        let reqs = vec![
            (
                0usize,
                MomsReq {
                    line: 1,
                    word: 3,
                    id: 100,
                },
            ),
            (
                1usize,
                MomsReq {
                    line: 1,
                    word: 9,
                    id: 200,
                },
            ),
        ];
        let (_, got) = run(&mut sys, reqs, 2, 20_000);
        assert_eq!(got[0], vec![100]);
        assert_eq!(got[1], vec![200]);
    }

    #[test]
    fn system_reaches_idle() {
        let mut sys = system(Topology::TwoLevel, 2, 4, 2);
        let reqs = vec![(
            0usize,
            MomsReq {
                line: 5,
                word: 0,
                id: 1,
            },
        )];
        run(&mut sys, reqs, 1, 20_000);
        // A few more ticks to drain internal napkins.
        let mut mem = MemorySystem::new(DramConfig::default(), 2);
        for now in 0..100 {
            sys.tick(1_000_000 + now, &mut mem);
        }
        assert!(sys.is_idle());
    }

    #[test]
    fn private_topology_supports_burst_assembly() {
        use crate::config::BurstAssemblyConfig;
        let mut cfg = system(Topology::Private, 2, 0, 2).config().clone();
        cfg.private = cfg.private.with_burst_assembly(BurstAssemblyConfig {
            max_lines: 8,
            wait_cycles: 8,
        });
        let mut sys = MomsSystem::new(cfg);
        // Eight adjacent lines from PE0: one burst transaction suffices.
        let reqs: Vec<(usize, MomsReq)> = (0..8u32)
            .map(|i| {
                (
                    0usize,
                    MomsReq {
                        line: 64 + i as u64,
                        word: 0,
                        id: i,
                    },
                )
            })
            .collect();
        run(&mut sys, reqs, 8, 20_000);
        let s = sys.stats();
        assert_eq!(s.get("dram_line_requests"), 8);
        assert!(
            s.get("dram_transactions") <= 2,
            "expected assembled bursts, got {} transactions",
            s.get("dram_transactions")
        );
    }

    #[test]
    fn two_level_rejects_private_burst_assembly() {
        use crate::config::BurstAssemblyConfig;
        let mut cfg = system(Topology::TwoLevel, 2, 4, 2).config().clone();
        cfg.private = cfg.private.with_burst_assembly(BurstAssemblyConfig {
            max_lines: 4,
            wait_cycles: 4,
        });
        let result = std::panic::catch_unwind(|| MomsSystem::new(cfg));
        assert!(result.is_err(), "validation must reject this combination");
    }

    #[test]
    fn crossing_latency_slows_cross_slr_traffic() {
        // Same single request, far-apart SLRs vs co-located: the crossing
        // cost must be visible in the completion time.
        let run_one = |crossing: u64| -> u64 {
            let mut cfg = system(Topology::Shared, 1, 4, 2).config().clone();
            cfg.crossing_latency = crossing;
            cfg.pe_slr = vec![0]; // PE on the bottom die; banks per channel SLRs
            let mut sys = MomsSystem::new(cfg);
            let mut mem = MemorySystem::new(DramConfig::default(), 2);
            assert!(sys.try_request(
                0,
                MomsReq {
                    line: 0,
                    word: 0,
                    id: 1
                }
            ));
            for now in 0..20_000 {
                sys.tick(now, &mut mem);
                mem.tick(now);
                for ch in 0..2 {
                    while let Some(r) = mem.pop_response(now, ch) {
                        sys.dram_response(r.id, r.lines);
                    }
                }
                if sys.pop_response(0).is_some() {
                    return now;
                }
            }
            panic!("no response");
        };
        let near = run_one(0);
        let far = run_one(20);
        assert!(
            far >= near + 20,
            "crossing latency not accounted: {near} vs {far}"
        );
    }

    #[test]
    fn default_slr_split_matches_paper() {
        let slrs = default_pe_slrs(20);
        let count = |s: u8| slrs.iter().filter(|&&x| x == s).count();
        assert_eq!(count(0), 6); // 30%
        assert_eq!(count(1), 3); // 15%
        assert_eq!(count(2), 11); // 55%
    }
}
