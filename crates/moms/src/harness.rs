//! Trace-driven evaluation harness for MOMS configurations.
//!
//! Drives a [`MomsSystem`] with a synthetic or recorded request trace
//! against a [`MemorySystem`], without building the full accelerator —
//! the fastest way to study the memory system in isolation (bank
//! geometry ablations, topology comparisons, Fig. 12-style sweeps).
//!
//! # Example
//!
//! ```
//! use moms::harness::{shard_trace, TraceRun};
//! use moms::{MomsConfig, MomsSystemConfig, Topology};
//!
//! let cfg = MomsSystemConfig::paper_two_level_16_16();
//! let trace = shard_trace(5_000, 128, 1_000, 2, 42);
//! let run = TraceRun::new(cfg).execute(&trace);
//! assert_eq!(run.responses, 5_000);
//! assert!(run.cycles > 0);
//! ```

use dram::{DramConfig, MemorySystem};
use simkit::{SplitMix64, Stats};

use crate::bank::MomsReq;
use crate::system::{MomsSystem, MomsSystemConfig};

/// A request trace: line addresses, distributed round-robin over the PEs.
pub type Trace = Vec<u64>;

/// Generates a shard-shaped trace: accesses stay within a window of
/// `window_lines` cache lines (one source interval) for `window_len`
/// requests, then move to the next window, with a power-law skew of
/// exponent `skew` inside each window — the pattern interval-partitioned
/// edge streaming produces (§III-A).
pub fn shard_trace(
    count: usize,
    window_lines: u64,
    window_len: usize,
    skew: i32,
    seed: u64,
) -> Trace {
    assert!(
        window_lines > 0 && window_len > 0,
        "degenerate trace window"
    );
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|i| {
            let base = (i / window_len) as u64 * window_lines;
            let u = rng.next_f64().powi(skew);
            base + ((u * window_lines as f64) as u64).min(window_lines - 1)
        })
        .collect()
}

/// Generates a uniform random trace over `lines` distinct lines (the
/// no-locality worst case).
pub fn uniform_trace(count: usize, lines: u64, seed: u64) -> Trace {
    assert!(lines > 0, "at least one line");
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| rng.next_below(lines)).collect()
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Cycles until the last response returned.
    pub cycles: u64,
    /// Responses received (equals the trace length on success).
    pub responses: usize,
    /// Aggregated MOMS statistics.
    pub stats: Stats,
}

impl TraceResult {
    /// Sustained throughput in requests per cycle.
    pub fn requests_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.responses as f64 / self.cycles as f64
        }
    }

    /// DRAM lines fetched per request — the traffic-amplification metric
    /// of Fig. 1 (below 1.0 means coalescing/caching wins).
    pub fn lines_per_request(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.stats.get("dram_line_requests") as f64 / self.responses as f64
        }
    }
}

/// A configured replay: MOMS system plus DRAM timing.
#[derive(Debug, Clone)]
pub struct TraceRun {
    moms: MomsSystemConfig,
    dram: DramConfig,
    /// Abort threshold in cycles (defaults to 50 M).
    pub max_cycles: u64,
}

impl TraceRun {
    /// Creates a replay with default DRAM timing.
    pub fn new(moms: MomsSystemConfig) -> Self {
        TraceRun {
            moms,
            dram: DramConfig::default(),
            max_cycles: 50_000_000,
        }
    }

    /// Replaces the DRAM timing model.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Replays a tagged `(pe, line)` trace — e.g. one recorded from a real
    /// accelerator run via [`MomsSystem::enable_trace`] — preserving each
    /// request's original PE.
    ///
    /// PEs whose index exceeds this configuration's `num_pes` are wrapped
    /// (so a 16-PE recording can replay on an 8-PE configuration).
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within `max_cycles`.
    pub fn execute_tagged(&self, trace: &[(u16, u64)]) -> TraceResult {
        let pes = self.moms.num_pes;
        let mut sys = MomsSystem::new(self.moms.clone());
        let mut mem = MemorySystem::new(self.dram.clone(), self.moms.num_channels);
        let mut per_pe: Vec<std::collections::VecDeque<u64>> = vec![Default::default(); pes];
        for &(pe, line) in trace {
            per_pe[pe as usize % pes].push_back(line);
        }
        let mut received = 0usize;
        let mut now = 0u64;
        while received < trace.len() {
            for (p, q) in per_pe.iter_mut().enumerate() {
                if let Some(&line) = q.front() {
                    let ok = sys.try_request(
                        p,
                        MomsReq {
                            line,
                            word: (line % 16) as u8,
                            id: (received % 65536) as u32,
                        },
                    );
                    if ok {
                        q.pop_front();
                    }
                }
            }
            sys.tick(now, &mut mem);
            mem.tick(now);
            for ch in 0..mem.num_channels() {
                while let Some(r) = mem.pop_response(now, ch) {
                    sys.dram_response(r.id, r.lines);
                }
            }
            for p in 0..pes {
                while sys.pop_response(p).is_some() {
                    received += 1;
                }
            }
            now += 1;
            assert!(
                now < self.max_cycles,
                "tagged trace did not drain: {received}/{}",
                trace.len()
            );
        }
        TraceResult {
            cycles: now,
            responses: received,
            stats: sys.stats(),
        }
    }

    /// Replays `trace`, one request per PE per cycle (round-robin split),
    /// until every response returns.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within `max_cycles` (a
    /// deadlock in the configuration under test).
    pub fn execute(&self, trace: &Trace) -> TraceResult {
        let pes = self.moms.num_pes;
        let mut sys = MomsSystem::new(self.moms.clone());
        let mut mem = MemorySystem::new(self.dram.clone(), self.moms.num_channels);
        let per_pe: Vec<Vec<u64>> = (0..pes)
            .map(|p| trace.iter().skip(p).step_by(pes).copied().collect())
            .collect();
        let mut next = vec![0usize; pes];
        let mut received = 0usize;
        let mut now = 0u64;
        while received < trace.len() {
            for p in 0..pes {
                if next[p] < per_pe[p].len() {
                    let line = per_pe[p][next[p]];
                    let ok = sys.try_request(
                        p,
                        MomsReq {
                            line,
                            word: (line % 16) as u8,
                            id: (next[p] % 65536) as u32,
                        },
                    );
                    if ok {
                        next[p] += 1;
                    }
                }
            }
            sys.tick(now, &mut mem);
            mem.tick(now);
            for ch in 0..mem.num_channels() {
                while let Some(r) = mem.pop_response(now, ch) {
                    debug_assert!(MomsSystem::owns_dram_id(r.id));
                    sys.dram_response(r.id, r.lines);
                }
            }
            for p in 0..pes {
                while sys.pop_response(p).is_some() {
                    received += 1;
                }
            }
            now += 1;
            assert!(
                now < self.max_cycles,
                "trace did not drain: {received}/{} after {now} cycles",
                trace.len()
            );
        }
        TraceResult {
            cycles: now,
            responses: received,
            stats: sys.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MomsConfig;
    use crate::system::{default_channel_slrs, default_pe_slrs, Topology};

    fn small(topology: Topology) -> MomsSystemConfig {
        MomsSystemConfig {
            topology,
            num_pes: 2,
            num_channels: 2,
            shared_banks: 4,
            shared: MomsConfig::paper_shared_bank()
                .scaled(1, 64)
                .without_cache(),
            private: MomsConfig::paper_private_bank(false).scaled(1, 64),
            pe_slr: default_pe_slrs(2),
            channel_slr: default_channel_slrs(2),
            crossing_latency: 4,
            base_net_latency: 2,
            resp_link_cycles_per_line: 8,
        }
    }

    #[test]
    fn every_request_gets_a_response() {
        for topo in [Topology::Shared, Topology::Private, Topology::TwoLevel] {
            let trace = shard_trace(3_000, 64, 500, 2, 9);
            let run = TraceRun::new(small(topo)).execute(&trace);
            assert_eq!(run.responses, 3_000, "{topo:?}");
            assert!(run.requests_per_cycle() > 0.0);
        }
    }

    #[test]
    fn skewed_traces_coalesce_better_than_uniform() {
        let n = 10_000;
        let hot = shard_trace(n, 64, 2_000, 4, 3);
        let cold = uniform_trace(n, 1 << 16, 3);
        let cfg = small(Topology::TwoLevel);
        let r_hot = TraceRun::new(cfg.clone()).execute(&hot);
        let r_cold = TraceRun::new(cfg).execute(&cold);
        assert!(
            r_hot.lines_per_request() < r_cold.lines_per_request() / 2.0,
            "hot {} vs cold {}",
            r_hot.lines_per_request(),
            r_cold.lines_per_request()
        );
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(
            shard_trace(100, 32, 10, 2, 5),
            shard_trace(100, 32, 10, 2, 5)
        );
        assert_ne!(
            shard_trace(100, 32, 10, 2, 5),
            shard_trace(100, 32, 10, 2, 6)
        );
        assert!(uniform_trace(100, 8, 1).iter().all(|&l| l < 8));
    }
}
