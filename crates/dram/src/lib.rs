//! DDR4-style DRAM timing model and functional memory image.
//!
//! The accelerator model splits memory into two orthogonal halves, as most
//! architectural simulators do:
//!
//! * **Timing** — [`DramChannel`] and [`MemorySystem`] move request *ids*
//!   through queues, bank state machines, and a shared data bus, telling the
//!   rest of the system *when* a response is available. Channels are
//!   interleaved every [`INTERLEAVE_BYTES`] of the flat physical address
//!   space, exactly as in the paper (§IV-B).
//! * **Function** — [`MemImage`] is a plain byte array with typed accessors
//!   holding the graph layout of Fig. 4. Consumers read/write it at the
//!   moment the timing model delivers a response, so simulated algorithm
//!   results are real values that can be checked against golden references.
//!
//! The AWS f1 shell's observed behaviour — ~16 GB/s per channel for long
//! bursts but only ~8 GB/s for isolated single-line reads — is reproduced
//! with a per-transaction command overhead on the data bus
//! ([`DramConfig::cmd_overhead`]).
//!
//! # Example
//!
//! ```
//! use dram::{DramConfig, DramRequest, MemorySystem};
//!
//! let mut mem = MemorySystem::new(DramConfig::default(), 2);
//! mem.push_request(0, DramRequest::read(1, 0x0, 1)).unwrap();
//! let mut cycle = 0;
//! let resp = loop {
//!     mem.tick(cycle);
//!     if let Some(r) = mem.pop_response(cycle, 0) {
//!         break r;
//!     }
//!     cycle += 1;
//!     assert!(cycle < 10_000);
//! };
//! assert_eq!(resp.id, 1);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod channel;
pub mod config;
pub mod image;
pub mod system;

pub use channel::{DramChannel, DramChannelSnapshot, DramRequest, DramResponse};
pub use config::DramConfig;
pub use image::MemImage;
pub use system::{MemorySystem, INTERLEAVE_BYTES, LINE_BYTES};
