//! DRAM channel timing parameters.

/// Timing parameters of one DRAM channel, expressed in *accelerator* clock
/// cycles (the paper's designs run at 185–250 MHz; the default values below
/// assume ~200 MHz).
///
/// The model is deliberately first-order: a read is served after
/// `base_latency` (controller + shell + PHY round trip) plus bank timing
/// (`t_cas` on a row hit, `t_rp + t_rcd + t_cas` on a row miss), and then
/// occupies the shared data bus for one cycle per 64 B line plus
/// `cmd_overhead` cycles per transaction. The overhead is what makes
/// isolated single-line reads reach only about half the streaming
/// bandwidth, matching the AWS shell behaviour reported in §V-A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Fixed round-trip latency through controller/shell in cycles.
    pub base_latency: u64,
    /// Column access latency (row hit) in cycles.
    pub t_cas: u64,
    /// Row-to-column delay (activation) in cycles.
    pub t_rcd: u64,
    /// Precharge latency in cycles.
    pub t_rp: u64,
    /// Data-bus cycles consumed per 64 B line transferred.
    pub cycles_per_line: u64,
    /// Extra data-bus cycles consumed once per transaction.
    pub cmd_overhead: u64,
    /// Number of DRAM banks per channel.
    pub num_banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Request queue depth per channel.
    pub queue_depth: usize,
    /// How many queued requests the scheduler inspects per cycle when
    /// looking for a row hit (FR-FCFS window).
    pub sched_window: usize,
    /// Failure-injection knob: adds a deterministic pseudo-random service
    /// delay of up to this many cycles per transaction (0 = disabled).
    /// Models refresh interference and controller-side variability; used
    /// by the chaos tests to check that results are timing independent.
    pub jitter_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            base_latency: 40,
            t_cas: 3,
            t_rcd: 3,
            t_rp: 3,
            cycles_per_line: 1,
            cmd_overhead: 1,
            num_banks: 16,
            row_bytes: 8192,
            queue_depth: 64,
            sched_window: 8,
            jitter_cycles: 0,
        }
    }
}

impl DramConfig {
    /// A configuration with near-zero latency and infinite-like queue,
    /// useful for isolating non-memory bottlenecks in tests.
    pub fn ideal() -> Self {
        DramConfig {
            base_latency: 1,
            t_cas: 0,
            t_rcd: 0,
            t_rp: 0,
            cycles_per_line: 1,
            cmd_overhead: 0,
            num_banks: 16,
            row_bytes: 8192,
            queue_depth: 4096,
            sched_window: 1,
            jitter_cycles: 0,
        }
    }

    /// Returns this configuration with service-time jitter enabled.
    pub fn with_jitter(mut self, cycles: u64) -> Self {
        self.jitter_cycles = cycles;
        self
    }

    /// Peak streaming bandwidth in bytes per cycle (long bursts, ignoring
    /// per-transaction overhead).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        64.0 / self.cycles_per_line as f64
    }

    /// Effective bandwidth in bytes per cycle for isolated single-line
    /// transactions (includes the per-transaction overhead).
    pub fn single_request_bytes_per_cycle(&self) -> f64 {
        64.0 / (self.cycles_per_line + self.cmd_overhead) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_shell_observation() {
        // Single-line requests should reach ~half the streaming bandwidth,
        // as measured on the AWS f1 shell (16 GB/s bursts vs 8 GB/s singles).
        let c = DramConfig::default();
        let ratio = c.single_request_bytes_per_cycle() / c.peak_bytes_per_cycle();
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ideal_has_no_overhead() {
        let c = DramConfig::ideal();
        assert_eq!(c.cmd_overhead, 0);
        assert_eq!(c.peak_bytes_per_cycle(), c.single_request_bytes_per_cycle());
    }
}
