//! Functional memory image.

/// A flat byte array with typed little-endian accessors, holding the graph
/// memory layout of Fig. 4 (vertex arrays, shards of compressed edges, and
/// edge pointers).
///
/// The timing model ([`crate::MemorySystem`]) decides *when* data moves;
/// consumers read/write this image at the moment a response arrives, so
/// simulated algorithms operate on real values.
///
/// # Example
///
/// ```
/// use dram::MemImage;
/// let mut img = MemImage::new(64);
/// img.write_u32(8, 0xDEAD_BEEF);
/// assert_eq!(img.read_u32(8), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    bytes: Vec<u8>,
}

impl MemImage {
    /// Allocates a zero-filled image of `size` bytes.
    pub fn new(size: usize) -> Self {
        MemImage {
            bytes: vec![0; size],
        }
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for a zero-byte image.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grows the image to at least `size` bytes (zero filled).
    pub fn ensure_len(&mut self, size: usize) {
        if self.bytes.len() < size {
            self.bytes.resize(size, 0);
        }
    }

    /// Reads a `u32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.bytes[a..a + 4].try_into().expect("4 bytes"))
    }

    /// Writes a `u32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the image size.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("8 bytes"))
    }

    /// Writes a `u64` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 8` exceeds the image size.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `f32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Borrows a byte range.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the image size.
    pub fn slice(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len]
    }

    /// Copies `src` into the image at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the image size.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + src.len()].copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let mut img = MemImage::new(16);
        img.write_u32(4, 123456);
        assert_eq!(img.read_u32(4), 123456);
        // Unwritten bytes are zero.
        assert_eq!(img.read_u32(8), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut img = MemImage::new(32);
        img.write_u64(8, u64::MAX - 5);
        assert_eq!(img.read_u64(8), u64::MAX - 5);
    }

    #[test]
    fn f32_round_trip_preserves_bits() {
        let mut img = MemImage::new(8);
        img.write_f32(0, 0.15 / 3.0);
        assert_eq!(img.read_f32(0), 0.15 / 3.0);
        img.write_f32(4, f32::INFINITY);
        assert!(img.read_f32(4).is_infinite());
    }

    #[test]
    fn little_endian_layout() {
        let mut img = MemImage::new(8);
        img.write_u32(0, 0x0403_0201);
        assert_eq!(img.slice(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn ensure_len_grows_only() {
        let mut img = MemImage::new(4);
        img.ensure_len(16);
        assert_eq!(img.len(), 16);
        img.ensure_len(8);
        assert_eq!(img.len(), 16);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let img = MemImage::new(4);
        let _ = img.read_u32(2);
    }
}
