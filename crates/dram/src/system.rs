//! Multi-channel memory system with address interleaving.

use simkit::trace::{TraceConfig, TraceEvent, Tracer, Track};
use simkit::{Cycle, Stats};

use crate::channel::{DramChannel, DramChannelSnapshot, DramRequest, DramResponse};
use crate::config::DramConfig;

/// Bytes per memory line (512-bit DRAM port word).
pub const LINE_BYTES: u64 = 64;

/// Channel interleave granularity of the global address space (§IV-B:
/// "we interleave the addresses of each channel every 2,048 bytes").
pub const INTERLEAVE_BYTES: u64 = 2048;

/// A set of [`DramChannel`]s behind a flat, channel-interleaved address
/// space.
///
/// The global address seen by PEs maps to `(channel, local address)` with
/// 2,048 B granularity. Requests must not cross an interleave boundary —
/// use [`MemorySystem::split_burst`] to segment larger bursts the way the
/// hardware's burst splitter does.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    channels: Vec<DramChannel>,
}

impl MemorySystem {
    /// Creates `num_channels` identical channels.
    ///
    /// # Panics
    ///
    /// Panics if `num_channels` is zero.
    pub fn new(cfg: DramConfig, num_channels: usize) -> Self {
        assert!(num_channels > 0, "at least one channel required");
        MemorySystem {
            channels: (0..num_channels)
                .map(|_| DramChannel::new(cfg.clone()))
                .collect(),
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Maps a global byte address to `(channel index, channel-local address)`.
    pub fn route(&self, addr: u64) -> (usize, u64) {
        let n = self.channels.len() as u64;
        let block = addr / INTERLEAVE_BYTES;
        let channel = (block % n) as usize;
        let local_block = block / n;
        let local = local_block * INTERLEAVE_BYTES + addr % INTERLEAVE_BYTES;
        (channel, local)
    }

    /// Splits a burst of `lines` 64 B lines starting at global `addr` into
    /// per-channel segments that each stay within one interleave block.
    ///
    /// Returns `(channel, local_addr, lines, global_addr)` tuples in
    /// address order.
    pub fn split_burst(&self, addr: u64, lines: u32) -> Vec<(usize, u64, u32, u64)> {
        let mut out = Vec::new();
        let mut cur = addr;
        let mut remaining = lines as u64;
        while remaining > 0 {
            let block_end = (cur / INTERLEAVE_BYTES + 1) * INTERLEAVE_BYTES;
            let lines_in_block = ((block_end - cur) / LINE_BYTES).max(1).min(remaining);
            let (ch, local) = self.route(cur);
            out.push((ch, local, lines_in_block as u32, cur));
            cur += lines_in_block * LINE_BYTES;
            remaining -= lines_in_block;
        }
        out
    }

    /// `true` when channel `ch` can accept a request this cycle.
    pub fn can_accept(&self, ch: usize) -> bool {
        self.channels[ch].can_accept()
    }

    /// Enqueues `req` whose `addr` is a *global* address (must not cross an
    /// interleave boundary).
    ///
    /// # Errors
    ///
    /// Returns the request back if the owning channel's queue is full.
    pub fn push_request(&mut self, _now: Cycle, req: DramRequest) -> Result<(), DramRequest> {
        let (ch, local) = self.route(req.addr);
        let end = req.addr + req.bytes() - 1;
        debug_assert_eq!(
            req.addr / INTERLEAVE_BYTES,
            end / INTERLEAVE_BYTES,
            "request crosses interleave boundary; use split_burst"
        );
        let local_req = DramRequest { addr: local, ..req };
        self.channels[ch]
            .push_request(local_req)
            .map_err(|r| DramRequest {
                addr: req.addr,
                ..r
            })
    }

    /// Pops a response from channel `ch` if one has matured.
    ///
    /// The response's `addr` is channel-local; issuers match on `id`.
    pub fn pop_response(&mut self, now: Cycle, ch: usize) -> Option<DramResponse> {
        self.channels[ch].pop_response(now)
    }

    /// Advances every channel one cycle.
    pub fn tick(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.tick(now);
        }
    }

    /// `true` when every channel is idle.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Earliest future cycle at which any channel can change observable
    /// state; `None` when the whole memory system is idle.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.channels.iter().filter_map(|c| c.next_event(now)).min()
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for c in &self.channels {
            s.merge(&c.stats());
        }
        s
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self, ch: usize) -> Stats {
        self.channels[ch].stats()
    }

    /// Point-in-time view of every channel's counters, in channel order.
    pub fn snapshot(&self) -> Vec<DramChannelSnapshot> {
        self.channels.iter().map(|c| c.snapshot()).collect()
    }

    /// Installs event tracers on every channel (tracks `dram.ch[i]`).
    pub fn enable_event_tracing(&mut self, cfg: &TraceConfig) {
        for (i, c) in self.channels.iter_mut().enumerate() {
            c.set_tracer(Tracer::for_track(Track::dram(i), cfg));
        }
    }

    /// Drains every channel's event stream, one `Vec` per channel in
    /// channel order.
    pub fn take_trace_events(&mut self) -> Vec<Vec<TraceEvent>> {
        self.channels
            .iter_mut()
            .map(|c| c.take_trace_events())
            .collect()
    }

    /// The last `n` events across all channels, merged in time order.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        let merged =
            simkit::trace::merge_events(self.channels.iter().map(|c| c.trace_tail(n)).collect());
        let skip = merged.len().saturating_sub(n);
        merged.into_iter().skip(skip).collect()
    }

    /// Events lost to ring wraparound, summed over channels.
    pub fn trace_dropped(&self) -> u64 {
        self.channels.iter().map(|c| c.trace_dropped()).sum()
    }

    /// Transactions queued or awaiting completion across all channels,
    /// for occupancy sampling.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Per-channel queue and bus state as a watchdog diagnostic section.
    pub fn diagnostic(&self) -> simkit::watchdog::DiagnosticSection {
        let mut s = simkit::watchdog::DiagnosticSection::new("dram");
        for (i, c) in self.channels.iter().enumerate() {
            s.push(format!("channel[{i}]"), c.diagnostic());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_interleaves_every_2048_bytes() {
        let m = MemorySystem::new(DramConfig::default(), 4);
        assert_eq!(m.route(0).0, 0);
        assert_eq!(m.route(2047).0, 0);
        assert_eq!(m.route(2048).0, 1);
        assert_eq!(m.route(4096).0, 2);
        assert_eq!(m.route(6144).0, 3);
        assert_eq!(m.route(8192).0, 0);
        // Local addresses are compacted.
        assert_eq!(m.route(8192).1, 2048);
    }

    #[test]
    fn route_single_channel_is_identity() {
        let m = MemorySystem::new(DramConfig::default(), 1);
        for addr in [0u64, 64, 2048, 1 << 20] {
            assert_eq!(m.route(addr), (0, addr));
        }
    }

    #[test]
    fn split_burst_respects_boundaries() {
        let m = MemorySystem::new(DramConfig::default(), 2);
        // 64-line (4096 B) burst starting at 1024: spans three blocks.
        let segs = m.split_burst(1024, 64);
        let total: u32 = segs.iter().map(|s| s.2).sum();
        assert_eq!(total, 64);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (0, 1024, 16, 1024));
        assert_eq!(segs[1].0, 1); // next block on channel 1
        assert_eq!(segs[1].2, 32);
        assert_eq!(segs[2].2, 16);
    }

    #[test]
    fn split_burst_aligned_single_segment() {
        let m = MemorySystem::new(DramConfig::default(), 4);
        let segs = m.split_burst(2048, 32);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].2, 32);
    }

    #[test]
    fn requests_complete_on_their_channel() {
        let mut m = MemorySystem::new(DramConfig::default(), 2);
        m.push_request(0, DramRequest::read(1, 2048, 1)).unwrap();
        let mut now = 0;
        loop {
            m.tick(now);
            assert!(m.pop_response(now, 0).is_none(), "wrong channel");
            if let Some(r) = m.pop_response(now, 1) {
                assert_eq!(r.id, 1);
                break;
            }
            now += 1;
            assert!(now < 10_000);
        }
    }

    #[test]
    fn channels_serve_in_parallel() {
        // The same number of lines spread over 4 channels should finish
        // roughly 4x faster than on one channel.
        let lines = 256u64;
        let run = |nch: usize| -> Cycle {
            let mut m = MemorySystem::new(DramConfig::default(), nch);
            let mut pending: Vec<DramRequest> = (0..lines)
                .map(|i| DramRequest::read(i, i * 2048, 1))
                .collect();
            pending.reverse();
            let mut now = 0;
            let mut done = 0;
            while done < lines {
                while let Some(req) = pending.pop() {
                    if let Err(back) = m.push_request(now, req) {
                        pending.push(back);
                        break;
                    }
                }
                m.tick(now);
                for ch in 0..nch {
                    while m.pop_response(now, ch).is_some() {
                        done += 1;
                    }
                }
                now += 1;
                assert!(now < 1_000_000);
            }
            now
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            (t1 as f64) > 3.0 * t4 as f64,
            "1ch {t1} vs 4ch {t4}: expected near-linear scaling"
        );
    }
}
