//! Single-channel DRAM timing model.

use std::collections::VecDeque;

use simkit::trace::{EventKind, TraceEvent, Tracer};
use simkit::{Cycle, Fifo, Stats};

use crate::config::DramConfig;
use crate::system::LINE_BYTES;

/// A read or write transaction of one or more consecutive 64 B lines.
///
/// The id is opaque to the channel and returned unchanged in the response,
/// letting the issuer (MOMS bank or PE DMA) match responses to state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Issuer-chosen identifier, echoed in the response.
    pub id: u64,
    /// Byte address of the first line (need not be line aligned; the
    /// channel only looks at line/row/bank bits).
    pub addr: u64,
    /// Number of 64 B lines to transfer.
    pub lines: u32,
    /// `true` for writes (writes get a response too, used as completion
    /// acknowledgement for write-back ordering).
    pub write: bool,
}

impl DramRequest {
    /// Convenience constructor for a read.
    pub fn read(id: u64, addr: u64, lines: u32) -> Self {
        DramRequest {
            id,
            addr,
            lines,
            write: false,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(id: u64, addr: u64, lines: u32) -> Self {
        DramRequest {
            id,
            addr,
            lines,
            write: true,
        }
    }

    /// Total bytes moved by this transaction.
    pub fn bytes(&self) -> u64 {
        self.lines as u64 * LINE_BYTES
    }
}

/// Completion notification for a [`DramRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResponse {
    /// Identifier copied from the request.
    pub id: u64,
    /// Address copied from the request.
    pub addr: u64,
    /// Lines transferred, copied from the request.
    pub lines: u32,
    /// Whether the completed transaction was a write.
    pub write: bool,
}

/// Point-in-time view of one channel's counters, returned by
/// [`DramChannel::snapshot`] — a plain value type that outlives the channel
/// and feeds result export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramChannelSnapshot {
    /// Transactions that hit an open row.
    pub row_hits: u64,
    /// Transactions that needed precharge + activate.
    pub row_misses: u64,
    /// 64 B lines read.
    pub read_lines: u64,
    /// 64 B lines written.
    pub write_lines: u64,
    /// Read transactions completed.
    pub read_txns: u64,
    /// Write transactions completed.
    pub write_txns: u64,
    /// Cycles the shared data bus was occupied (transfer + command
    /// overhead).
    pub bus_busy_cycles: u64,
}

impl DramChannelSnapshot {
    /// Fraction of transactions that hit an open row; 0 with no traffic.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total bytes moved in either direction.
    pub fn bytes(&self) -> u64 {
        (self.read_lines + self.write_lines) * LINE_BYTES
    }

    /// Achieved bandwidth in GB/s over `cycles` of simulated time at
    /// `freq_mhz`; 0 when no time has elapsed.
    pub fn bandwidth_gbs(&self, cycles: Cycle, freq_mhz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / (freq_mhz * 1e6);
        self.bytes() as f64 / seconds / 1e9
    }

    /// Fraction of `cycles` the data bus was busy; 0 when no time elapsed.
    pub fn bus_utilization(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / cycles as f64
        }
    }

    /// Element-wise sum, for aggregating across channels.
    pub fn accumulate(&mut self, other: &DramChannelSnapshot) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.read_lines += other.read_lines;
        self.write_lines += other.write_lines;
        self.read_txns += other.read_txns;
        self.write_txns += other.write_txns;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// Hot-path event counters kept as plain fields so the per-transaction
/// scheduling path never touches the name-keyed [`Stats`] map; they are
/// folded into a `Stats` value on demand by [`DramChannel::stats`].
#[derive(Debug, Clone, Copy, Default)]
struct ChannelCounters {
    row_hits: u64,
    row_misses: u64,
    read_lines: u64,
    write_lines: u64,
    read_txns: u64,
    write_txns: u64,
    bus_busy_cycles: u64,
}

/// One DRAM channel: bounded request queue, per-bank row state, shared data
/// bus, FR-FCFS-lite scheduling, and an in-order completion queue.
///
/// Drive it by calling [`tick`](Self::tick) once per cycle and exchanging
/// requests/responses through [`push_request`](Self::push_request) /
/// [`pop_response`](Self::pop_response).
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    requests: Fifo<DramRequest>,
    banks: Vec<BankState>,
    bus_free_at: Cycle,
    /// (completion cycle, response); completion cycles are monotonically
    /// nondecreasing because transfers serialise on the data bus.
    completions: VecDeque<(Cycle, DramResponse)>,
    counters: ChannelCounters,
    tracer: Tracer,
    /// Transactions ever accepted (conservation ledger).
    ledger_pushed: u64,
    /// Responses ever handed out (conservation ledger).
    ledger_popped: u64,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = vec![
            BankState {
                open_row: None,
                ready_at: 0,
            };
            cfg.num_banks
        ];
        DramChannel {
            requests: Fifo::new(cfg.queue_depth),
            banks,
            bus_free_at: 0,
            completions: VecDeque::new(),
            cfg,
            counters: ChannelCounters::default(),
            tracer: Tracer::disabled(),
            ledger_pushed: 0,
            ledger_popped: 0,
        }
    }

    /// `true` when the request queue can accept another transaction.
    pub fn can_accept(&self) -> bool {
        self.requests.can_push()
    }

    /// Enqueues a transaction.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full; callers retry next
    /// cycle (hardware backpressure).
    pub fn push_request(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        let out = self.requests.push(req).map_err(|e| e.0);
        if out.is_ok() {
            self.ledger_pushed += 1;
        }
        out
    }

    /// Pops a completed transaction if one has matured by `now`.
    pub fn pop_response(&mut self, now: Cycle) -> Option<DramResponse> {
        match self.completions.front() {
            Some((ready, _)) if *ready <= now => {
                self.ledger_popped += 1;
                let resp = self.completions.pop_front().map(|(_, r)| r);
                if let Some(r) = &resp {
                    self.tracer.event(now, EventKind::DramComplete, r.id);
                }
                resp
            }
            _ => None,
        }
    }

    /// Installs an event tracer (disabled by default); it only observes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Drains this channel's recorded trace events, oldest first.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// The last `n` recorded trace events, for stall diagnostics.
    pub fn trace_tail(&self, n: usize) -> Vec<TraceEvent> {
        self.tracer.tail(n)
    }

    /// Events lost to ring wraparound in this channel.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// Transactions currently queued or awaiting completion, for
    /// occupancy sampling.
    pub fn pending(&self) -> usize {
        self.requests.len() + self.completions.len()
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.cfg.row_bytes;
        // Banks interleave on row address bits so that streaming rows
        // rotates banks, as typical controllers map them.
        let bank = (row % self.cfg.num_banks as u64) as usize;
        (bank, row)
    }

    /// Conservation invariants, checked every tick when the `invariants`
    /// feature is on.
    ///
    /// # Panics
    ///
    /// Panics when a transaction was lost or duplicated, or the in-order
    /// completion queue lost its monotonicity.
    #[cfg(feature = "invariants")]
    fn check_invariants(&self) {
        assert_eq!(
            self.ledger_pushed,
            self.ledger_popped + self.requests.len() as u64 + self.completions.len() as u64,
            "DRAM transaction conservation violated: pushed {} != popped {} \
             + queued {} + completing {}",
            self.ledger_pushed,
            self.ledger_popped,
            self.requests.len(),
            self.completions.len(),
        );
        let mut prev = 0;
        for &(ready, _) in &self.completions {
            assert!(
                ready >= prev,
                "completion queue lost in-order delivery ({ready} after {prev})"
            );
            prev = ready;
        }
    }

    /// One-line occupancy summary for watchdog diagnostics.
    pub fn diagnostic(&self) -> String {
        format!(
            "queued={} completing={} bus_free_at={}",
            self.requests.len(),
            self.completions.len(),
            self.bus_free_at,
        )
    }

    /// Advances one cycle: schedules at most one transaction onto the bus.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_inner(now);
        #[cfg(feature = "invariants")]
        self.check_invariants();
    }

    fn tick_inner(&mut self, now: Cycle) {
        self.requests.tick();
        if self.bus_free_at > now {
            return; // data bus busy; cannot start another transfer
        }
        if self.requests.visible_len() == 0 {
            return;
        }
        // FR-FCFS-lite: inspect a small window of the visible queue and
        // prefer the first row hit; otherwise take the oldest entry.
        let mut chosen = 0usize;
        for (i, r) in self.requests.iter().take(self.cfg.sched_window).enumerate() {
            let (bank, row) = self.bank_and_row(r.addr);
            if self.banks[bank].open_row == Some(row) && self.banks[bank].ready_at <= now {
                chosen = i;
                break;
            }
        }
        // Skipped older entries keep their slots (and thus priority for
        // next cycle's window): the ring removes in place.
        let req = self.requests.remove_visible(chosen);

        let (bank, row) = self.bank_and_row(req.addr);
        let row_hit = self.banks[bank].open_row == Some(row);
        let bank_latency = if row_hit {
            self.tracer.event(now, EventKind::DramRowHit, row);
            self.cfg.t_cas
        } else {
            if let Some(old) = self.banks[bank].open_row {
                self.tracer.event(now, EventKind::DramPrecharge, old);
            }
            self.tracer.event(now, EventKind::DramActivate, row);
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
        };
        let bank_ready = self.banks[bank].ready_at.max(now);
        // Failure injection: deterministic per-transaction jitter.
        let jitter = if self.cfg.jitter_cycles == 0 {
            0
        } else {
            let mut z = req.id ^ req.addr.rotate_left(17) ^ 0xA076_1D64_78BD_642F;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            z % (self.cfg.jitter_cycles + 1)
        };
        let data_start = (bank_ready + bank_latency + jitter).max(self.bus_free_at);
        let transfer = self.cfg.cmd_overhead + req.lines as u64 * self.cfg.cycles_per_line;
        let data_end = data_start + transfer;
        self.bus_free_at = data_end;
        self.banks[bank] = BankState {
            open_row: Some(row),
            ready_at: data_end,
        };
        let completion = data_end + self.cfg.base_latency;
        self.completions.push_back((
            completion,
            DramResponse {
                id: req.id,
                addr: req.addr,
                lines: req.lines,
                write: req.write,
            },
        ));

        if row_hit {
            self.counters.row_hits += 1;
        } else {
            self.counters.row_misses += 1;
        }
        if req.write {
            self.counters.write_lines += req.lines as u64;
            self.counters.write_txns += 1;
        } else {
            self.counters.read_lines += req.lines as u64;
            self.counters.read_txns += 1;
        }
        self.counters.bus_busy_cycles += transfer;
    }

    /// `true` when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.requests.is_empty() && self.completions.is_empty()
    }

    /// Earliest future cycle at which this channel can change observable
    /// state: a staged request turning visible, the bus freeing up with
    /// work queued, or the oldest completion maturing. `None` when idle —
    /// idle skipping may then fast-forward the channel arbitrarily far.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        };
        if self.requests.len() > self.requests.visible_len() {
            merge(now + 1); // staged requests become schedulable next tick
        }
        if self.requests.visible_len() > 0 {
            merge(self.bus_free_at.max(now + 1));
        }
        if let Some(&(ready, _)) = self.completions.front() {
            merge(ready);
        }
        next
    }

    /// Counters: `row_hits`, `row_misses`, `read_lines`, `write_lines`,
    /// `read_txns`, `write_txns`, `bus_busy_cycles`.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        let c = &self.counters;
        for (name, v) in [
            ("bus_busy_cycles", c.bus_busy_cycles),
            ("read_lines", c.read_lines),
            ("read_txns", c.read_txns),
            ("row_hits", c.row_hits),
            ("row_misses", c.row_misses),
            ("write_lines", c.write_lines),
            ("write_txns", c.write_txns),
        ] {
            if v > 0 {
                s.add(name, v);
            }
        }
        s
    }

    /// Point-in-time view of this channel's counters as a value type.
    pub fn snapshot(&self) -> DramChannelSnapshot {
        DramChannelSnapshot {
            row_hits: self.counters.row_hits,
            row_misses: self.counters.row_misses,
            read_lines: self.counters.read_lines,
            write_lines: self.counters.write_lines,
            read_txns: self.counters.read_txns,
            write_txns: self.counters.write_txns,
            bus_busy_cycles: self.counters.bus_busy_cycles,
        }
    }

    /// Configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_response(ch: &mut DramChannel, start: Cycle, max: Cycle) -> (Cycle, DramResponse) {
        let mut now = start;
        loop {
            ch.tick(now);
            if let Some(r) = ch.pop_response(now) {
                return (now, r);
            }
            now += 1;
            assert!(now < max, "no response before cycle {max}");
        }
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg.clone());
        ch.push_request(DramRequest::read(42, 0, 1)).unwrap();
        let (done, resp) = run_until_response(&mut ch, 0, 1000);
        assert_eq!(resp.id, 42);
        // First access is a row miss: rp + rcd + cas + transfer + base.
        let expect = cfg.t_rp
            + cfg.t_rcd
            + cfg.t_cas
            + cfg.cmd_overhead
            + cfg.cycles_per_line
            + cfg.base_latency;
        assert!(
            done >= expect && done <= expect + 2,
            "done={done} expect≈{expect}"
        );
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        // Two reads to the same row: second should be a row hit.
        ch.push_request(DramRequest::read(1, 128, 1)).unwrap();
        ch.push_request(DramRequest::read(2, 192, 1)).unwrap();
        let mut now = 0;
        let mut got = vec![];
        while got.len() < 2 {
            ch.tick(now);
            if let Some(r) = ch.pop_response(now) {
                got.push((now, r.id));
            }
            now += 1;
            assert!(now < 10_000);
        }
        assert_eq!(ch.stats().get("row_hits"), 1);
        assert_eq!(ch.stats().get("row_misses"), 1);
    }

    #[test]
    fn burst_throughput_beats_singles() {
        // 32 lines as one burst vs 32 single-line transactions: the burst
        // must finish in roughly half the bus time.
        let cfg = DramConfig::default();
        let mut burst = DramChannel::new(cfg.clone());
        burst.push_request(DramRequest::read(0, 0, 32)).unwrap();
        let (burst_done, _) = run_until_response(&mut burst, 0, 100_000);

        let mut singles = DramChannel::new(cfg);
        for i in 0..32 {
            singles
                .push_request(DramRequest::read(i, i * 64, 1))
                .unwrap();
        }
        let mut now = 0;
        let mut count = 0;
        while count < 32 {
            singles.tick(now);
            if singles.pop_response(now).is_some() {
                count += 1;
            }
            now += 1;
            assert!(now < 100_000);
        }
        let singles_done = now;
        assert!(
            (singles_done as f64) > 1.5 * burst_done as f64,
            "singles {singles_done} vs burst {burst_done}"
        );
    }

    #[test]
    fn backpressure_when_queue_full() {
        let cfg = DramConfig {
            queue_depth: 2,
            ..DramConfig::default()
        };
        let mut ch = DramChannel::new(cfg);
        assert!(ch.push_request(DramRequest::read(0, 0, 1)).is_ok());
        assert!(ch.push_request(DramRequest::read(1, 64, 1)).is_ok());
        assert!(ch.push_request(DramRequest::read(2, 128, 1)).is_err());
    }

    #[test]
    fn responses_in_bus_order() {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        for i in 0..8u64 {
            ch.push_request(DramRequest::read(i, i * 8192 * 16, 1))
                .unwrap();
        }
        let mut now = 0;
        let mut ids = vec![];
        while ids.len() < 8 {
            ch.tick(now);
            if let Some(r) = ch.pop_response(now) {
                ids.push(r.id);
            }
            now += 1;
            assert!(now < 100_000);
        }
        // All different banks but same arrival order and serialized bus:
        // FCFS order expected.
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_changes_timing_but_not_delivery() {
        let base = DramConfig::default();
        let jit = DramConfig::default().with_jitter(37);
        let run = |cfg: DramConfig| -> (Cycle, Vec<u64>) {
            let mut ch = DramChannel::new(cfg);
            for i in 0..16u64 {
                ch.push_request(DramRequest::read(i, i * 8192, 1)).unwrap();
            }
            let mut now = 0;
            let mut ids = vec![];
            while ids.len() < 16 {
                ch.tick(now);
                while let Some(r) = ch.pop_response(now) {
                    ids.push(r.id);
                }
                now += 1;
                assert!(now < 100_000);
            }
            (now, ids)
        };
        let (t0, ids0) = run(base);
        let (t1, mut ids1) = run(jit);
        assert!(t1 > t0, "jitter should slow the channel");
        ids1.sort_unstable();
        let mut sorted0 = ids0;
        sorted0.sort_unstable();
        assert_eq!(sorted0, ids1, "every request still completes");
    }

    #[test]
    fn write_gets_completion() {
        let mut ch = DramChannel::new(DramConfig::default());
        ch.push_request(DramRequest::write(9, 4096, 4)).unwrap();
        let (_, resp) = run_until_response(&mut ch, 0, 10_000);
        assert!(resp.write);
        assert_eq!(resp.lines, 4);
        assert_eq!(ch.stats().get("write_lines"), 4);
    }

    #[test]
    fn idle_reporting() {
        let mut ch = DramChannel::new(DramConfig::default());
        assert!(ch.is_idle());
        ch.push_request(DramRequest::read(0, 0, 1)).unwrap();
        assert!(!ch.is_idle());
        let _ = run_until_response(&mut ch, 0, 10_000);
        assert!(ch.is_idle());
    }
}
