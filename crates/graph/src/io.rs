//! Graph serialization: the plain edge-list text format used by SNAP /
//! KONECT downloads (the paper's benchmark sources), plus a compact
//! binary COO format for fast reload.
//!
//! Text format: one `src dst [weight]` triple per line; `#` or `%`
//! comment lines are skipped (SNAP and KONECT headers respectively).
//! Node ids may be sparse; they are compacted to `0..N` preserving first
//! appearance order, matching how such files are usually ingested.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::coo::{CooGraph, NodeId};

/// Errors produced while reading a graph file (text edge list or binary
/// COO), each carrying enough context to locate the corruption.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as `src dst [weight]`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file contained no edges.
    Empty,
    /// Some edges carried weights and others did not.
    MixedWeights,
    /// The binary file does not start with the `MOMSCOO1` magic.
    BadMagic,
    /// The file ended before the named structure was complete.
    Truncated {
        /// What was being read when the input ran out.
        what: &'static str,
    },
    /// A binary edge references a node outside the declared node count.
    EdgeOutOfRange {
        /// 0-based edge record index.
        index: usize,
        /// The offending endpoint.
        node: u32,
        /// The declared node count.
        nodes: u32,
    },
}

/// Former name of [`GraphIoError`], kept for source compatibility.
pub type ParseGraphError = GraphIoError;

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::BadLine { line, content } => {
                write!(f, "line {line} is not 'src dst [weight]': {content:?}")
            }
            GraphIoError::Empty => write!(f, "edge list contains no edges"),
            GraphIoError::MixedWeights => {
                write!(f, "some edges have weights and others do not")
            }
            GraphIoError::BadMagic => write!(f, "not a MOMSCOO1 file"),
            GraphIoError::Truncated { what } => {
                write!(f, "file truncated while reading {what}")
            }
            GraphIoError::EdgeOutOfRange { index, node, nodes } => {
                write!(
                    f,
                    "edge record {index} references node {node} outside 0..{nodes}"
                )
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Reads a SNAP/KONECT-style edge list.
///
/// Node labels are compacted to dense ids in order of first appearance.
/// Pass the reader by value or as `&mut reader`.
///
/// # Errors
///
/// Returns [`GraphIoError`] on malformed lines, empty input, or mixed
/// weighted/unweighted rows.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), graph::io::GraphIoError> {
/// let text = "# comment\n0 1\n1 2\n2 0\n";
/// let g = graph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<CooGraph, GraphIoError> {
    let reader = BufReader::new(reader);
    let mut label_to_id: std::collections::HashMap<u64, NodeId> = Default::default();
    let mut next_id: NodeId = 0;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut weights: Vec<u32> = Vec::new();
    let mut saw_unweighted = false;

    let mut intern = |label: u64, next: &mut NodeId| -> NodeId {
        *label_to_id.entry(label).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        })
    };

    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = || GraphIoError::BadLine {
            line: i + 1,
            content: t.to_owned(),
        };
        let src: u64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let dst: u64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w: Option<u32> = match it.next() {
            Some(tok) => Some(tok.parse().map_err(|_| bad())?),
            None => None,
        };
        if it.next().is_some() {
            return Err(bad());
        }
        let s = intern(src, &mut next_id);
        let d = intern(dst, &mut next_id);
        edges.push((s, d));
        match w {
            Some(w) => {
                if saw_unweighted {
                    return Err(GraphIoError::MixedWeights);
                }
                weights.push(w);
            }
            None => {
                if !weights.is_empty() {
                    return Err(GraphIoError::MixedWeights);
                }
                saw_unweighted = true;
            }
        }
    }
    if edges.is_empty() {
        return Err(GraphIoError::Empty);
    }
    let n = next_id;
    Ok(if weights.is_empty() {
        CooGraph::from_edges(n, edges)
    } else {
        CooGraph::from_weighted_edges(n, edges, weights)
    })
}

/// Writes `g` as an edge list (`src dst [weight]` per line).
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_edge_list<W: Write>(g: &CooGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for i in 0..g.num_edges() {
        let (s, d, wt) = g.edge(i);
        if g.is_weighted() {
            writeln!(w, "{s} {d} {wt}")?;
        } else {
            writeln!(w, "{s} {d}")?;
        }
    }
    w.flush()
}

/// Magic bytes of the binary COO format.
const BIN_MAGIC: &[u8; 8] = b"MOMSCOO1";

/// Writes `g` in the compact binary COO format (little endian):
/// magic, node count, edge count, weighted flag, then `(src, dst[, w])`
/// records.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_binary<W: Write>(g: &CooGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&g.num_nodes().to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    w.write_all(&[g.is_weighted() as u8])?;
    for i in 0..g.num_edges() {
        let (s, d, wt) = g.edge(i);
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&d.to_le_bytes())?;
        if g.is_weighted() {
            w.write_all(&wt.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads the binary COO format written by [`write_binary`].
///
/// # Errors
///
/// Returns [`GraphIoError::BadMagic`] on a foreign file,
/// [`GraphIoError::Truncated`] when the input ends mid-structure,
/// [`GraphIoError::EdgeOutOfRange`] when an edge references a node
/// outside the declared count, and [`GraphIoError::Io`] on any other
/// read failure.
pub fn read_binary<R: Read>(reader: R) -> Result<CooGraph, GraphIoError> {
    let mut r = BufReader::new(reader);
    let read = |r: &mut BufReader<R>, buf: &mut [u8], what: &'static str| match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(GraphIoError::Truncated { what })
        }
        Err(e) => Err(GraphIoError::Io(e)),
    };
    let mut magic = [0u8; 8];
    read(&mut r, &mut magic, "magic")?;
    if &magic != BIN_MAGIC {
        return Err(GraphIoError::BadMagic);
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    read(&mut r, &mut b4, "node count")?;
    let n = u32::from_le_bytes(b4);
    read(&mut r, &mut b8, "edge count")?;
    let m = u64::from_le_bytes(b8) as usize;
    let mut flag = [0u8; 1];
    read(&mut r, &mut flag, "weighted flag")?;
    let weighted = flag[0] != 0;
    // A corrupt header can declare an absurd edge count; cap the
    // preallocation so a short, damaged file cannot demand gigabytes up
    // front. The vectors still grow to any honest size.
    let cap = m.min(1 << 20);
    let mut edges = Vec::with_capacity(cap);
    let mut weights = weighted.then(|| Vec::with_capacity(cap));
    for index in 0..m {
        read(&mut r, &mut b4, "edge source")?;
        let s = u32::from_le_bytes(b4);
        read(&mut r, &mut b4, "edge destination")?;
        let d = u32::from_le_bytes(b4);
        for node in [s, d] {
            if node >= n {
                return Err(GraphIoError::EdgeOutOfRange {
                    index,
                    node,
                    nodes: n,
                });
            }
        }
        edges.push((s, d));
        if let Some(ws) = &mut weights {
            read(&mut r, &mut b4, "edge weight")?;
            ws.push(u32::from_le_bytes(b4));
        }
    }
    Ok(match weights {
        Some(ws) => CooGraph::from_weighted_edges(n, edges, ws),
        None => CooGraph::from_edges(n, edges),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphSpec;

    #[test]
    fn text_round_trip_unweighted() {
        let g = GraphSpec::rmat(8, 4).build(3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        // Dense ids in, dense ids out: structures match up to relabeling;
        // here labels are already dense and ordered by appearance.
        assert!(back.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn text_round_trip_weighted() {
        let g = GraphSpec::rmat(6, 4).build(5).with_random_weights(1, 9, 7);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert!(back.is_weighted());
        assert_eq!(back.num_edges(), g.num_edges());
        // Weights survive in order.
        assert_eq!(back.weights().unwrap()[0], g.weights().unwrap()[0]);
    }

    #[test]
    fn comments_and_sparse_labels() {
        let text = "% konect header\n# snap header\n10 20\n20 30\n\n30 10\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edges(), &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseGraphError::BadLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn mixed_weights_rejected() {
        let text = "0 1 5\n1 2\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(ParseGraphError::MixedWeights)
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            read_edge_list("# nothing\n".as_bytes()),
            Err(ParseGraphError::Empty)
        ));
    }

    #[test]
    fn binary_round_trip_exact() {
        for weighted in [false, true] {
            let mut g = GraphSpec::rmat(8, 4).build(11);
            if weighted {
                g = g.with_random_weights(0, 255, 1);
            }
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let back = read_binary(&buf[..]).unwrap();
            assert_eq!(back, g, "weighted={weighted}");
        }
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            read_binary(&b"NOTMAGIC"[..]),
            Err(GraphIoError::BadMagic)
        ));
        let mut buf = Vec::new();
        write_binary(&GraphSpec::rmat(4, 2).build(1), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::Truncated { .. })
        ));
    }

    #[test]
    fn binary_truncated_header_names_the_missing_field() {
        // Magic only: dies reading the node count.
        match read_binary(&BIN_MAGIC[..]) {
            Err(GraphIoError::Truncated { what }) => assert_eq!(what, "node count"),
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Header but no edge records.
        let mut buf = Vec::new();
        write_binary(&GraphSpec::rmat(4, 2).build(1), &mut buf).unwrap();
        buf.truncate(8 + 4 + 8 + 1);
        match read_binary(&buf[..]) {
            Err(GraphIoError::Truncated { what }) => assert_eq!(what, "edge source"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn binary_edge_out_of_range_is_reported() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BIN_MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes()); // 2 nodes
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 edge
        buf.push(0); // unweighted
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // dst out of range
        match read_binary(&buf[..]) {
            Err(GraphIoError::EdgeOutOfRange { index, node, nodes }) => {
                assert_eq!((index, node, nodes), (0, 7, 2));
            }
            other => panic!("expected EdgeOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn binary_corrupt_edge_count_does_not_preallocate() {
        // A header claiming u64::MAX edges must fail on truncation, not
        // abort on an oversized allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(BIN_MAGIC);
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.push(0);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::Truncated { .. })
        ));
    }
}
