//! Interval-based graph partitioning (Fig. 3) and the 32-bit compressed
//! edge format (§III-C).
//!
//! Nodes are split into `Qs` source intervals of `Ns` nodes and `Qd`
//! destination intervals of `Nd` nodes; edges land in the `Qs × Qd` shard
//! indexed by their endpoints' intervals. Partitioning is a stable O(M)
//! counting sort — no edge sorting is ever required.

use crate::coo::{CooGraph, NodeId};

/// Maximum source-interval size: the compressed format stores a 16-bit
/// source offset.
pub const MAX_NS: u32 = 1 << 16;

/// Maximum destination-interval size: the compressed format stores a 15-bit
/// destination offset.
pub const MAX_ND: u32 = 1 << 15;

/// One compressed edge word: 15-bit destination offset, 16-bit source
/// offset, and the `isTerminatingEdge` flag, in 32 bits — identical to the
/// paper's encoding ("we always use 32 bits per unweighted edge").
///
/// Bit layout: `[31] terminating | [30:16] dst offset | [15:0] src offset`.
///
/// # Example
///
/// ```
/// use graph::partition::CompressedEdge;
/// let e = CompressedEdge::new(1234, 77);
/// assert_eq!(e.src_offset(), 1234);
/// assert_eq!(e.dst_offset(), 77);
/// assert!(!e.is_terminating());
/// assert!(CompressedEdge::TERMINATOR.is_terminating());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompressedEdge(pub u32);

impl CompressedEdge {
    /// The shard-terminating marker appended after the last real edge.
    pub const TERMINATOR: CompressedEdge = CompressedEdge(1 << 31);

    /// Packs offsets into an edge word.
    ///
    /// # Panics
    ///
    /// Panics if `src_offset >= 2^16` or `dst_offset >= 2^15`.
    pub fn new(src_offset: u32, dst_offset: u32) -> Self {
        assert!(src_offset < MAX_NS, "source offset exceeds 16 bits");
        assert!(dst_offset < MAX_ND, "destination offset exceeds 15 bits");
        CompressedEdge((dst_offset << 16) | src_offset)
    }

    /// Source offset within the source interval (16 bits).
    pub fn src_offset(self) -> u32 {
        self.0 & 0xFFFF
    }

    /// Destination offset within the destination interval (15 bits).
    pub fn dst_offset(self) -> u32 {
        (self.0 >> 16) & 0x7FFF
    }

    /// `true` for the shard terminator.
    pub fn is_terminating(self) -> bool {
        self.0 >> 31 == 1
    }

    /// Raw 32-bit word as stored in DRAM.
    pub fn to_bits(self) -> u32 {
        self.0
    }

    /// Reconstructs an edge word from its DRAM representation.
    pub fn from_bits(bits: u32) -> Self {
        CompressedEdge(bits)
    }
}

/// All edges of one `(source interval, destination interval)` shard, in
/// arrival order, with optional parallel weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shard {
    /// Compressed edges (without the terminator; the layout appends it).
    pub edges: Vec<CompressedEdge>,
    /// Per-edge weights when the graph is weighted.
    pub weights: Option<Vec<u32>>,
}

impl Shard {
    /// Number of real edges in the shard.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the shard holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Configuration of the interval partitioner: `Ns` and `Nd` may differ
/// because source and destination intervals serve different purposes
/// (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    ns: u32,
    nd: u32,
}

impl Partitioner {
    /// Creates a partitioner with source intervals of `ns` nodes and
    /// destination intervals of `nd` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is zero or exceeds 2^16, or `nd` is zero or exceeds
    /// 2^15 (the compressed-format offset widths).
    pub fn new(ns: u32, nd: u32) -> Self {
        assert!(ns > 0 && ns <= MAX_NS, "Ns must be in 1..=65536");
        assert!(nd > 0 && nd <= MAX_ND, "Nd must be in 1..=32768");
        Partitioner { ns, nd }
    }

    /// Source interval size.
    pub fn ns(&self) -> u32 {
        self.ns
    }

    /// Destination interval size.
    pub fn nd(&self) -> u32 {
        self.nd
    }

    /// Partitions `g` into shards with a stable O(M) counting sort.
    pub fn partition(&self, g: &CooGraph) -> PartitionedGraph {
        let n = g.num_nodes();
        let qs = n.div_ceil(self.ns).max(1) as usize;
        let qd = n.div_ceil(self.nd).max(1) as usize;
        let nshards = qs * qd;

        // Counting sort by shard index (d-major to match the job order).
        let shard_of = |s: NodeId, d: NodeId| -> usize {
            let si = (s / self.ns) as usize;
            let di = (d / self.nd) as usize;
            di * qs + si
        };
        let mut counts = vec![0usize; nshards];
        for &(s, d) in g.edges() {
            counts[shard_of(s, d)] += 1;
        }
        let mut shards: Vec<Shard> = counts
            .iter()
            .map(|&c| Shard {
                edges: Vec::with_capacity(c),
                weights: g.is_weighted().then(|| Vec::with_capacity(c)),
            })
            .collect();
        for i in 0..g.num_edges() {
            let (s, d, w) = g.edge(i);
            let idx = shard_of(s, d);
            let e = CompressedEdge::new(s % self.ns, d % self.nd);
            shards[idx].edges.push(e);
            if let Some(ws) = &mut shards[idx].weights {
                ws.push(w);
            }
        }

        PartitionedGraph {
            ns: self.ns,
            nd: self.nd,
            qs,
            qd,
            num_nodes: n,
            weighted: g.is_weighted(),
            shards,
        }
    }
}

/// A graph partitioned into `Qs × Qd` shards, ready for layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedGraph {
    ns: u32,
    nd: u32,
    qs: usize,
    qd: usize,
    num_nodes: u32,
    weighted: bool,
    /// Shards in d-major order: index `d * qs + s`.
    shards: Vec<Shard>,
}

impl PartitionedGraph {
    /// Number of source intervals.
    pub fn qs(&self) -> usize {
        self.qs
    }

    /// Number of destination intervals.
    pub fn qd(&self) -> usize {
        self.qd
    }

    /// Source interval size.
    pub fn ns(&self) -> u32 {
        self.ns
    }

    /// Destination interval size.
    pub fn nd(&self) -> u32 {
        self.nd
    }

    /// Total node count.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// `true` when edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// The shard for source interval `s` and destination interval `d`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= qs` or `d >= qd`.
    pub fn shard(&self, s: usize, d: usize) -> &Shard {
        assert!(s < self.qs && d < self.qd, "shard index out of range");
        &self.shards[d * self.qs + s]
    }

    /// Total number of edges across all shards.
    pub fn total_edges(&self) -> u64 {
        self.shards.iter().map(|sh| sh.len() as u64).sum()
    }

    /// Iterates the shard's edges decompressed to `(src, dst, weight)`
    /// global node ids; weight is 1 when unweighted.
    pub fn iter_shard_edges(
        &self,
        s: usize,
        d: usize,
    ) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        let shard = self.shard(s, d);
        let s_base = s as u32 * self.ns;
        let d_base = d as u32 * self.nd;
        shard.edges.iter().enumerate().map(move |(i, e)| {
            let w = shard.weights.as_ref().map_or(1, |ws| ws[i]);
            (s_base + e.src_offset(), d_base + e.dst_offset(), w)
        })
    }

    /// Number of in-edges per destination interval — the per-job work used
    /// to study balance (§IV-E).
    pub fn in_edges_per_interval(&self) -> Vec<u64> {
        (0..self.qd)
            .map(|d| (0..self.qs).map(|s| self.shard(s, d).len() as u64).sum())
            .collect()
    }

    /// First node id of destination interval `d`.
    pub fn d_interval_base(&self, d: usize) -> u32 {
        d as u32 * self.nd
    }

    /// Number of nodes in destination interval `d` (the last interval may
    /// be short).
    pub fn d_interval_len(&self, d: usize) -> u32 {
        let base = self.d_interval_base(d);
        self.nd.min(self.num_nodes - base)
    }

    /// First node id of source interval `s`.
    pub fn s_interval_base(&self, s: usize) -> u32 {
        s as u32 * self.ns
    }
}

/// Assignment of the node-id space to `N` fabric devices.
///
/// Each device owns a contiguous slice of node ids aligned to
/// `lcm(Ns, Nd)`, so the slice is simultaneously a whole number of source
/// intervals and a whole number of destination intervals. A device holds
/// *all* in-edges of its owned destinations: every vertex's reduction runs
/// on exactly one device, in the same shard order as a single-device run,
/// which is what makes multi-device results bit-identical (PageRank's f32
/// accumulation is not associative, so splitting a vertex's in-edges
/// across devices would reassociate the sum).
///
/// Devices beyond the available alignment blocks own an empty slice; the
/// fabric keeps them at the barrier with no local work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceMap {
    ns: u32,
    nd: u32,
    num_nodes: u32,
    /// `bounds[i]..bounds[i + 1]` is the destination-interval range owned
    /// by device `i`; `bounds.len() == num_devices + 1`.
    bounds: Vec<usize>,
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl DeviceMap {
    /// Splits the node-id space of a graph partitioned by `partitioner`
    /// into `num_devices` contiguous aligned slices, balancing the number
    /// of destination intervals per device.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices` is zero.
    pub fn new(partitioner: Partitioner, num_nodes: u32, num_devices: usize) -> Self {
        assert!(num_devices > 0, "a fabric needs at least one device");
        let ns = partitioner.ns();
        let nd = partitioner.nd();
        let qd = num_nodes.div_ceil(nd).max(1) as usize;
        // Alignment granularity in destination intervals: device borders
        // must fall on multiples of lcm(Ns, Nd) node ids.
        let grain = (ns / gcd(ns, nd)) as usize;
        let blocks = qd.div_ceil(grain);
        let per = blocks / num_devices;
        let extra = blocks % num_devices;
        let mut bounds = Vec::with_capacity(num_devices + 1);
        bounds.push(0usize);
        let mut blk = 0usize;
        for i in 0..num_devices {
            blk += per + usize::from(i < extra);
            bounds.push((blk * grain).min(qd));
        }
        DeviceMap {
            ns,
            nd,
            num_nodes,
            bounds,
        }
    }

    /// Number of devices in the fabric.
    pub fn num_devices(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Destination intervals owned by device `dev`.
    pub fn device_d_intervals(&self, dev: usize) -> std::ops::Range<usize> {
        self.bounds[dev]..self.bounds[dev + 1]
    }

    /// Source intervals covering device `dev`'s owned node range. Exact
    /// because device borders are `lcm(Ns, Nd)`-aligned.
    pub fn device_s_intervals(&self, dev: usize) -> std::ops::Range<usize> {
        let nodes = self.device_nodes(dev);
        (nodes.start / self.ns) as usize..(nodes.end.div_ceil(self.ns)) as usize
    }

    /// Node ids owned by device `dev` (empty for surplus devices).
    pub fn device_nodes(&self, dev: usize) -> std::ops::Range<u32> {
        let d = self.device_d_intervals(dev);
        let start = (d.start as u32 * self.nd).min(self.num_nodes);
        let end = (d.end as u32 * self.nd).min(self.num_nodes);
        start..end
    }

    /// The device owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the node-id space.
    pub fn owner_of_node(&self, v: NodeId) -> usize {
        assert!(v < self.num_nodes, "node id out of range");
        let di = (v / self.nd) as usize;
        self.owner_of_d_interval(di)
    }

    /// The device owning destination interval `di`.
    ///
    /// # Panics
    ///
    /// Panics if `di` is not a valid destination interval.
    pub fn owner_of_d_interval(&self, di: usize) -> usize {
        assert!(di < *self.bounds.last().unwrap(), "interval out of range");
        // bounds is sorted; find the device whose range contains di.
        match self.bounds.binary_search(&di) {
            // di is the first interval of some boundary; boundaries of
            // empty devices repeat, so take the last match.
            Ok(mut i) => {
                while i + 1 < self.bounds.len() && self.bounds[i + 1] == di {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        }
    }

    /// Extracts device `dev`'s local subgraph: the full node-id space, but
    /// only the edges whose destination the device owns, in the original
    /// edge order (so per-shard edge order — and therefore every f32
    /// reduction order — matches the single-device partition exactly).
    pub fn extract_local(&self, g: &CooGraph, dev: usize) -> CooGraph {
        let nodes = self.device_nodes(dev);
        let mut edges = Vec::new();
        let mut weights = g.is_weighted().then(Vec::new);
        for i in 0..g.num_edges() {
            let (s, d, w) = g.edge(i);
            if nodes.contains(&d) {
                edges.push((s, d));
                if let Some(ws) = &mut weights {
                    ws.push(w);
                }
            }
        }
        match weights {
            Some(ws) => CooGraph::from_weighted_edges(g.num_nodes(), edges, ws),
            None => CooGraph::from_edges(g.num_nodes(), edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphSpec;

    #[test]
    fn compressed_edge_round_trip() {
        for (s, d) in [(0u32, 0u32), (65535, 32767), (1, 2), (40000, 20000)] {
            let e = CompressedEdge::new(s, d);
            assert_eq!(e.src_offset(), s);
            assert_eq!(e.dst_offset(), d);
            assert!(!e.is_terminating());
            assert_eq!(CompressedEdge::from_bits(e.to_bits()), e);
        }
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn src_offset_too_large_panics() {
        let _ = CompressedEdge::new(1 << 16, 0);
    }

    #[test]
    #[should_panic(expected = "15 bits")]
    fn dst_offset_too_large_panics() {
        let _ = CompressedEdge::new(0, 1 << 15);
    }

    #[test]
    fn partition_preserves_all_edges() {
        let g = GraphSpec::rmat(10, 8).build(3);
        let p = Partitioner::new(256, 128).partition(&g);
        assert_eq!(p.total_edges(), g.num_edges() as u64);
        assert_eq!(p.qs(), 4);
        assert_eq!(p.qd(), 8);

        // Every original edge appears exactly once when decompressed.
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for d in 0..p.qd() {
            for s in 0..p.qs() {
                for (src, dst, _) in p.iter_shard_edges(s, d) {
                    assert_eq!(src / 256, s as u32);
                    assert_eq!(dst / 128, d as u32);
                    seen.push((src, dst));
                }
            }
        }
        let mut orig: Vec<(u32, u32)> = g.edges().to_vec();
        orig.sort_unstable();
        seen.sort_unstable();
        assert_eq!(orig, seen);
    }

    #[test]
    fn partition_is_stable_within_shard() {
        // Edges that fall in the same shard keep their input order.
        let g = CooGraph::from_edges(8, vec![(0, 1), (1, 0), (0, 2), (1, 3)]);
        let p = Partitioner::new(8, 8).partition(&g);
        let edges: Vec<_> = p.iter_shard_edges(0, 0).collect();
        assert_eq!(edges, vec![(0, 1, 1), (1, 0, 1), (0, 2, 1), (1, 3, 1)]);
    }

    #[test]
    fn weighted_partition_carries_weights() {
        let g = CooGraph::from_weighted_edges(4, vec![(0, 1), (2, 3)], vec![10, 20]);
        let p = Partitioner::new(2, 2).partition(&g);
        assert!(p.is_weighted());
        let e: Vec<_> = p.iter_shard_edges(0, 0).collect();
        assert_eq!(e, vec![(0, 1, 10)]);
        let e: Vec<_> = p.iter_shard_edges(1, 1).collect();
        assert_eq!(e, vec![(2, 3, 20)]);
    }

    #[test]
    fn interval_lens_handle_ragged_tail() {
        let g = CooGraph::from_edges(10, vec![]);
        let p = Partitioner::new(4, 4).partition(&g);
        assert_eq!(p.qd(), 3);
        assert_eq!(p.d_interval_len(0), 4);
        assert_eq!(p.d_interval_len(2), 2);
    }

    #[test]
    fn in_edge_balance_reporting() {
        let g = CooGraph::from_edges(4, vec![(0, 0), (1, 0), (2, 0), (3, 3)]);
        let p = Partitioner::new(4, 2).partition(&g);
        assert_eq!(p.in_edges_per_interval(), vec![3, 1]);
    }

    #[test]
    fn max_interval_sizes_round_trip() {
        // Intervals at the format limits: offsets occupy the full 16/15
        // bits and still decompress to the right global ids.
        let edges = vec![
            (0, 0),
            (MAX_NS - 1, MAX_ND - 1),      // last offsets of shard (0, 0)
            (MAX_NS - 1, MAX_NS - 1),      // dst interval 1, offset MAX_ND-1
            (MAX_NS - 1, MAX_NS - MAX_ND), // dst interval 1, offset 0
        ];
        let g = CooGraph::from_edges(MAX_NS, edges.clone());
        let p = Partitioner::new(MAX_NS, MAX_ND).partition(&g);
        assert_eq!(p.qs(), 1);
        assert_eq!(p.qd(), 2);
        assert_eq!(p.total_edges(), edges.len() as u64);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for d in 0..p.qd() {
            seen.extend(p.iter_shard_edges(0, d).map(|(s, dd, _)| (s, dd)));
        }
        seen.sort_unstable();
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn empty_shards_are_represented() {
        // A single self-loop at node 0 leaves every other shard present
        // but empty.
        let g = CooGraph::from_edges(16, vec![(0, 0)]);
        let p = Partitioner::new(4, 4).partition(&g);
        assert_eq!(p.qs(), 4);
        assert_eq!(p.qd(), 4);
        for d in 0..p.qd() {
            for s in 0..p.qs() {
                let sh = p.shard(s, d);
                if (s, d) == (0, 0) {
                    assert_eq!(sh.len(), 1);
                    assert!(!sh.is_empty());
                } else {
                    assert!(sh.is_empty(), "shard ({s},{d}) should be empty");
                    assert_eq!(p.iter_shard_edges(s, d).count(), 0);
                }
            }
        }
    }

    #[test]
    fn terminator_round_trips_through_bits() {
        let t = CompressedEdge::TERMINATOR;
        assert!(t.is_terminating());
        assert_eq!(t.src_offset(), 0);
        assert_eq!(t.dst_offset(), 0);
        let back = CompressedEdge::from_bits(t.to_bits());
        assert_eq!(back, t);
        assert!(back.is_terminating());
        // No real edge word is ever terminating.
        let e = CompressedEdge::new(MAX_NS - 1, MAX_ND - 1);
        assert!(!e.is_terminating());
        assert!(!CompressedEdge::from_bits(e.to_bits()).is_terminating());
    }

    #[test]
    fn device_map_covers_every_edge_exactly_once() {
        let g = GraphSpec::rmat(11, 8).build(7);
        let partitioner = Partitioner::new(256, 128);
        for num_devices in [1usize, 2, 3, 4, 8] {
            let map = DeviceMap::new(partitioner, g.num_nodes(), num_devices);
            assert_eq!(map.num_devices(), num_devices);
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for dev in 0..num_devices {
                let local = map.extract_local(&g, dev);
                assert_eq!(local.num_nodes(), g.num_nodes());
                let p = partitioner.partition(&local);
                for d in 0..p.qd() {
                    for s in 0..p.qs() {
                        for (src, dst, _) in p.iter_shard_edges(s, d) {
                            assert_eq!(map.owner_of_node(dst), dev);
                            seen.push((src, dst));
                        }
                    }
                }
            }
            let mut orig: Vec<(u32, u32)> = g.edges().to_vec();
            orig.sort_unstable();
            seen.sort_unstable();
            assert_eq!(seen, orig, "devices={num_devices}");
        }
    }

    #[test]
    fn device_map_slices_are_aligned_and_contiguous() {
        // Ns = 8, Nd = 4: borders must fall on lcm = 8 node ids, i.e.
        // every device slice is whole source *and* destination intervals.
        let map = DeviceMap::new(Partitioner::new(8, 4), 50, 3);
        let mut expect_start = 0u32;
        for dev in 0..map.num_devices() {
            let nodes = map.device_nodes(dev);
            assert_eq!(nodes.start, expect_start, "slices must be contiguous");
            assert_eq!(nodes.start % 8, 0, "device border must be Ns-aligned");
            expect_start = nodes.end;
            let s = map.device_s_intervals(dev);
            let d = map.device_d_intervals(dev);
            assert_eq!(s.start as u32 * 8, nodes.start);
            assert_eq!(d.start as u32 * 4, nodes.start.min(48));
            for v in nodes.clone() {
                assert_eq!(map.owner_of_node(v), dev);
            }
        }
        assert_eq!(expect_start, 50, "every node must be owned");
    }

    #[test]
    fn device_map_surplus_devices_own_nothing() {
        // 8 nodes in one lcm(4, 4) = 4-id grain → 2 blocks over 4 devices:
        // devices 2 and 3 are surplus.
        let map = DeviceMap::new(Partitioner::new(4, 4), 8, 4);
        assert!(!map.device_nodes(0).is_empty());
        assert!(!map.device_nodes(1).is_empty());
        assert!(map.device_nodes(2).is_empty());
        assert!(map.device_nodes(3).is_empty());
        let g = CooGraph::from_edges(8, vec![(0, 7), (7, 0)]);
        assert_eq!(map.extract_local(&g, 2).num_edges(), 0);
        assert_eq!(map.owner_of_node(0), 0);
        assert_eq!(map.owner_of_node(7), 1);
    }

    #[test]
    fn device_map_with_more_devices_than_vertices() {
        // 3 nodes across 8 devices: one lcm(2, 2) = 2-id grain gives two
        // blocks, so at most two devices own nodes and the rest are
        // surplus. Ownership must still cover every node exactly once.
        let map = DeviceMap::new(Partitioner::new(2, 2), 3, 8);
        assert_eq!(map.num_devices(), 8);
        let mut owned = 0u32;
        for dev in 0..8 {
            let nodes = map.device_nodes(dev);
            owned += nodes.end - nodes.start;
            for v in nodes {
                assert_eq!(map.owner_of_node(v), dev);
            }
        }
        assert_eq!(owned, 3, "every node owned exactly once");
        // Surplus devices extract empty locals without panicking.
        let g = CooGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let mut edges = 0;
        for dev in 0..8 {
            edges += map.extract_local(&g, dev).num_edges();
        }
        assert_eq!(edges, 3);
    }

    #[test]
    fn device_map_single_vertex_graph() {
        // The degenerate 1-node graph: one destination interval, one
        // block; device 0 owns the node, everyone else is surplus.
        for num_devices in [1usize, 2, 4] {
            let map = DeviceMap::new(Partitioner::new(4, 4), 1, num_devices);
            assert_eq!(map.num_devices(), num_devices);
            assert_eq!(map.device_nodes(0), 0..1);
            assert_eq!(map.owner_of_node(0), 0);
            assert_eq!(map.owner_of_d_interval(0), 0);
            for dev in 1..num_devices {
                assert!(map.device_nodes(dev).is_empty());
                assert!(map.device_d_intervals(dev).is_empty());
            }
            let g = CooGraph::from_edges(1, vec![(0, 0)]);
            assert_eq!(map.extract_local(&g, 0).num_edges(), 1);
        }
    }

    #[test]
    fn device_map_preserves_weights_and_edge_order() {
        let g = CooGraph::from_weighted_edges(
            8,
            vec![(0, 4), (1, 4), (0, 0), (2, 4)],
            vec![10, 20, 30, 40],
        );
        let map = DeviceMap::new(Partitioner::new(4, 4), 8, 2);
        let local = map.extract_local(&g, 1);
        assert!(local.is_weighted());
        assert_eq!(local.num_edges(), 3);
        // Original order among the surviving edges is preserved.
        assert_eq!(local.edge(0), (0, 4, 10));
        assert_eq!(local.edge(1), (1, 4, 20));
        assert_eq!(local.edge(2), (2, 4, 40));
    }
}
