//! The on-DRAM graph layout of Fig. 4: vertex arrays, shards of compressed
//! edges, and 64-bit edge pointers.

use dram::MemImage;

use crate::partition::{CompressedEdge, PartitionedGraph};

/// Bytes per DRAM line; shards are line-aligned so edge bursts start on a
/// line boundary.
const LINE: u64 = 64;

/// Bits of the edge-pointer word holding the shard address (in 4-byte
/// words).
const PTR_ADDR_BITS: u64 = 40;

/// Bits of the edge-pointer word holding the shard's edge count.
const PTR_COUNT_BITS: u64 = 23;

/// A packed 64-bit edge pointer: shard start address, edge count, and the
/// `active_srcs` flag ("all this fits into 64 bits", §III-C).
///
/// Bit layout: `[63] active | [62:40] edge count | [39:0] word address`.
///
/// # Example
///
/// ```
/// use graph::layout::EdgePointer;
/// let p = EdgePointer::new(0x1000, 57, true);
/// assert_eq!(p.byte_addr(), 0x1000);
/// assert_eq!(p.edge_count(), 57);
/// assert!(p.active());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePointer(pub u64);

impl EdgePointer {
    /// Packs a pointer.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not 4-byte aligned, exceeds 2^42 bytes, or
    /// `edges` exceeds 2^23.
    pub fn new(byte_addr: u64, edges: u64, active: bool) -> Self {
        assert_eq!(byte_addr % 4, 0, "shard address must be word aligned");
        let word = byte_addr / 4;
        assert!(word < 1 << PTR_ADDR_BITS, "shard address exceeds 40 bits");
        assert!(edges < 1 << PTR_COUNT_BITS, "edge count exceeds 23 bits");
        EdgePointer((active as u64) << 63 | edges << PTR_ADDR_BITS | word)
    }

    /// Shard start address in bytes.
    pub fn byte_addr(self) -> u64 {
        (self.0 & ((1 << PTR_ADDR_BITS) - 1)) * 4
    }

    /// Number of real edges in the shard (terminator excluded).
    pub fn edge_count(self) -> u64 {
        (self.0 >> PTR_ADDR_BITS) & ((1 << PTR_COUNT_BITS) - 1)
    }

    /// The `active_srcs` flag: when clear, the PE skips the shard entirely
    /// (line 10 of Template 1).
    pub fn active(self) -> bool {
        self.0 >> 63 == 1
    }

    /// Returns this pointer with the active flag replaced.
    pub fn with_active(self, active: bool) -> Self {
        EdgePointer(self.0 & !(1 << 63) | (active as u64) << 63)
    }
}

/// Initial vertex-array contents for the layout.
///
/// Values are raw 32-bit patterns; floating-point algorithms pass
/// `f32::to_bits` values. This keeps the layout independent of any specific
/// algorithm (Table I plugs in here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutInit {
    /// Initial `V_DRAM,in[i]` for every node.
    pub vin: Vec<u32>,
    /// Per-node constant vector `V_const` (e.g. out-degrees for PageRank).
    pub vconst: Option<Vec<u32>>,
    /// `true` allocates a distinct `V_DRAM,out` (synchronous execution);
    /// `false` aliases it onto `V_DRAM,in` (asynchronous execution).
    pub synchronous: bool,
}

/// Addresses and geometry of a graph laid out in a [`MemImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphImage {
    num_nodes: u32,
    qs: usize,
    qd: usize,
    ns: u32,
    nd: u32,
    weighted: bool,
    synchronous: bool,
    vin_addr: u64,
    vconst_addr: Option<u64>,
    vout_addr: u64,
    ptrs_addr: u64,
    total_bytes: u64,
}

impl GraphImage {
    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of source intervals.
    pub fn qs(&self) -> usize {
        self.qs
    }

    /// Number of destination intervals.
    pub fn qd(&self) -> usize {
        self.qd
    }

    /// Source interval size in nodes.
    pub fn ns(&self) -> u32 {
        self.ns
    }

    /// Destination interval size in nodes.
    pub fn nd(&self) -> u32 {
        self.nd
    }

    /// `true` when each edge carries a 32-bit weight word.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// `true` when `V_DRAM,out` is distinct from `V_DRAM,in`.
    pub fn is_synchronous(&self) -> bool {
        self.synchronous
    }

    /// Byte address of `V_DRAM,in[node]`.
    pub fn node_in_addr(&self, node: u32) -> u64 {
        self.vin_addr + node as u64 * 4
    }

    /// Byte address of `V_const[node]`.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no constant vector.
    pub fn node_const_addr(&self, node: u32) -> u64 {
        self.vconst_addr.expect("layout has no V_const") + node as u64 * 4
    }

    /// `true` when the layout carries a `V_const` array.
    pub fn has_const(&self) -> bool {
        self.vconst_addr.is_some()
    }

    /// Byte address of `V_DRAM,out[node]` (same as `node_in_addr` when
    /// asynchronous).
    pub fn node_out_addr(&self, node: u32) -> u64 {
        self.vout_addr + node as u64 * 4
    }

    /// Byte address of the edge pointer for `(d, s)`; pointers for one
    /// destination interval are contiguous so a PE fetches them in one
    /// burst.
    pub fn edge_ptr_addr(&self, d: usize, s: usize) -> u64 {
        self.ptrs_addr + (d * self.qs + s) as u64 * 8
    }

    /// Reads the `(d, s)` edge pointer from the image.
    pub fn edge_ptr(&self, img: &MemImage, d: usize, s: usize) -> EdgePointer {
        EdgePointer(img.read_u64(self.edge_ptr_addr(d, s)))
    }

    /// Rewrites the active flag of the `(d, s)` edge pointer.
    pub fn set_active(&self, img: &mut MemImage, d: usize, s: usize, active: bool) {
        let a = self.edge_ptr_addr(d, s);
        let p = EdgePointer(img.read_u64(a)).with_active(active);
        img.write_u64(a, p.0);
    }

    /// Swaps `V_DRAM,in` and `V_DRAM,out` (synchronous iteration boundary).
    ///
    /// # Panics
    ///
    /// Panics for asynchronous layouts, where the arrays alias.
    pub fn swap_io(&mut self) {
        assert!(self.synchronous, "async layouts alias in/out");
        std::mem::swap(&mut self.vin_addr, &mut self.vout_addr);
    }

    /// Total image footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Reads the final value of every node from `V_DRAM,out` as raw bits.
    pub fn read_out_values(&self, img: &MemImage) -> Vec<u32> {
        (0..self.num_nodes)
            .map(|i| img.read_u32(self.node_out_addr(i)))
            .collect()
    }
}

/// Builds the Fig. 4 memory layout from a partitioned graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutBuilder;

impl LayoutBuilder {
    /// Lays out vertex arrays, shard edges (with terminators), and edge
    /// pointers; returns the geometry plus the populated image.
    ///
    /// All edge pointers start with `active = true` (every source interval
    /// is active in iteration 0).
    ///
    /// # Panics
    ///
    /// Panics if `init.vin` (or `init.vconst`) length differs from the
    /// graph's node count.
    pub fn build(parts: &PartitionedGraph, init: &LayoutInit) -> (GraphImage, MemImage) {
        let n = parts.num_nodes() as u64;
        assert_eq!(init.vin.len() as u64, n, "one initial value per node");
        if let Some(c) = &init.vconst {
            assert_eq!(c.len() as u64, n, "one constant per node");
        }

        let align = |a: u64| a.div_ceil(LINE) * LINE;

        let vin_addr = 0u64;
        let mut cursor = align(n * 4);
        let vconst_addr = init.vconst.as_ref().map(|_| {
            let a = cursor;
            cursor = align(cursor + n * 4);
            a
        });
        let vout_addr = if init.synchronous {
            let a = cursor;
            cursor = align(cursor + n * 4);
            a
        } else {
            vin_addr
        };

        // Shard placement, d-major to match job issue order.
        let words_per_edge: u64 = if parts.is_weighted() { 2 } else { 1 };
        let mut shard_addrs = vec![0u64; parts.qd() * parts.qs()];
        for d in 0..parts.qd() {
            for s in 0..parts.qs() {
                shard_addrs[d * parts.qs() + s] = cursor;
                let edges = parts.shard(s, d).len() as u64 + 1; // + terminator
                cursor = align(cursor + edges * words_per_edge * 4);
            }
        }
        let ptrs_addr = cursor;
        cursor = align(cursor + (parts.qd() * parts.qs()) as u64 * 8);
        let total_bytes = cursor;

        let mut img = MemImage::new(total_bytes as usize);

        // Vertex arrays.
        for (i, &v) in init.vin.iter().enumerate() {
            img.write_u32(vin_addr + i as u64 * 4, v);
        }
        if let (Some(ca), Some(cv)) = (vconst_addr, init.vconst.as_ref()) {
            for (i, &v) in cv.iter().enumerate() {
                img.write_u32(ca + i as u64 * 4, v);
            }
        }
        if init.synchronous {
            // V_DRAM,out starts as a copy so that inactive intervals keep
            // valid values after the swap.
            for (i, &v) in init.vin.iter().enumerate() {
                img.write_u32(vout_addr + i as u64 * 4, v);
            }
        }

        // Shards + terminators.
        for d in 0..parts.qd() {
            for s in 0..parts.qs() {
                let shard = parts.shard(s, d);
                let mut a = shard_addrs[d * parts.qs() + s];
                for (i, e) in shard.edges.iter().enumerate() {
                    img.write_u32(a, e.to_bits());
                    a += 4;
                    if let Some(ws) = &shard.weights {
                        img.write_u32(a, ws[i]);
                        a += 4;
                    }
                }
                img.write_u32(a, CompressedEdge::TERMINATOR.to_bits());
                a += 4;
                if parts.is_weighted() {
                    img.write_u32(a, 0); // dummy weight after terminator
                }
            }
        }

        // Edge pointers, all active.
        for d in 0..parts.qd() {
            for s in 0..parts.qs() {
                let idx = d * parts.qs() + s;
                let p = EdgePointer::new(shard_addrs[idx], parts.shard(s, d).len() as u64, true);
                img.write_u64(ptrs_addr + idx as u64 * 8, p.0);
            }
        }

        let gi = GraphImage {
            num_nodes: parts.num_nodes(),
            qs: parts.qs(),
            qd: parts.qd(),
            ns: parts.ns(),
            nd: parts.nd(),
            weighted: parts.is_weighted(),
            synchronous: init.synchronous,
            vin_addr,
            vconst_addr,
            vout_addr,
            ptrs_addr,
            total_bytes,
        };
        (gi, img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooGraph;
    use crate::gen::GraphSpec;
    use crate::partition::Partitioner;

    fn simple_layout(synchronous: bool) -> (GraphImage, MemImage, PartitionedGraph) {
        let g = CooGraph::from_edges(8, vec![(0, 4), (1, 5), (6, 2), (7, 3), (0, 0)]);
        let parts = Partitioner::new(4, 4).partition(&g);
        let init = LayoutInit {
            vin: (0..8).map(|i| i * 10).collect(),
            vconst: None,
            synchronous,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        (gi, img, parts)
    }

    #[test]
    fn edge_pointer_round_trip() {
        let p = EdgePointer::new(0x12345678 & !3, 7 << 10, false);
        assert_eq!(p.byte_addr(), 0x12345678 & !3);
        assert_eq!(p.edge_count(), 7 << 10);
        assert!(!p.active());
        assert!(p.with_active(true).active());
        assert_eq!(p.with_active(true).byte_addr(), p.byte_addr());
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn pointer_rejects_unaligned_addr() {
        let _ = EdgePointer::new(2, 0, true);
    }

    #[test]
    fn vertex_values_land_at_node_addresses() {
        let (gi, img, _) = simple_layout(false);
        for i in 0..8u32 {
            assert_eq!(img.read_u32(gi.node_in_addr(i)), i * 10);
        }
        // Async: out aliases in.
        assert_eq!(gi.node_out_addr(3), gi.node_in_addr(3));
    }

    #[test]
    fn synchronous_layout_copies_out_array() {
        let (gi, img, _) = simple_layout(true);
        assert_ne!(gi.node_out_addr(0), gi.node_in_addr(0));
        for i in 0..8u32 {
            assert_eq!(img.read_u32(gi.node_out_addr(i)), i * 10);
        }
    }

    #[test]
    fn swap_io_exchanges_arrays() {
        let (mut gi, _, _) = simple_layout(true);
        let in0 = gi.node_in_addr(0);
        let out0 = gi.node_out_addr(0);
        gi.swap_io();
        assert_eq!(gi.node_in_addr(0), out0);
        assert_eq!(gi.node_out_addr(0), in0);
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn swap_io_rejected_for_async() {
        let (mut gi, _, _) = simple_layout(false);
        gi.swap_io();
    }

    #[test]
    fn shards_terminate_and_decode() {
        let (gi, img, parts) = simple_layout(false);
        for d in 0..gi.qd() {
            for s in 0..gi.qs() {
                let p = gi.edge_ptr(&img, d, s);
                assert!(p.active());
                assert_eq!(p.edge_count(), parts.shard(s, d).len() as u64);
                // Walk the words: edge_count real edges then a terminator.
                let mut a = p.byte_addr();
                for _ in 0..p.edge_count() {
                    let e = CompressedEdge::from_bits(img.read_u32(a));
                    assert!(!e.is_terminating());
                    a += 4;
                }
                assert!(CompressedEdge::from_bits(img.read_u32(a)).is_terminating());
            }
        }
    }

    #[test]
    fn weighted_layout_interleaves_weights() {
        let g = CooGraph::from_weighted_edges(4, vec![(0, 1), (1, 2)], vec![111, 222]);
        let parts = Partitioner::new(4, 4).partition(&g);
        let init = LayoutInit {
            vin: vec![0; 4],
            vconst: None,
            synchronous: false,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        let p = gi.edge_ptr(&img, 0, 0);
        let a = p.byte_addr();
        assert!(!CompressedEdge::from_bits(img.read_u32(a)).is_terminating());
        assert_eq!(img.read_u32(a + 4), 111);
        assert_eq!(img.read_u32(a + 12), 222);
        assert!(CompressedEdge::from_bits(img.read_u32(a + 16)).is_terminating());
    }

    #[test]
    fn active_flag_round_trip() {
        let (gi, mut img, _) = simple_layout(false);
        gi.set_active(&mut img, 0, 1, false);
        assert!(!gi.edge_ptr(&img, 0, 1).active());
        // Address and count survive the flag rewrite.
        let p = gi.edge_ptr(&img, 0, 1);
        gi.set_active(&mut img, 0, 1, true);
        let q = gi.edge_ptr(&img, 0, 1);
        assert_eq!(p.byte_addr(), q.byte_addr());
        assert_eq!(p.edge_count(), q.edge_count());
        assert!(q.active());
    }

    #[test]
    fn shards_are_line_aligned() {
        let g = GraphSpec::rmat(8, 4).build(2);
        let parts = Partitioner::new(64, 64).partition(&g);
        let init = LayoutInit {
            vin: vec![0; 256],
            vconst: None,
            synchronous: true,
        };
        let (gi, img) = LayoutBuilder::build(&parts, &init);
        for d in 0..gi.qd() {
            for s in 0..gi.qs() {
                assert_eq!(gi.edge_ptr(&img, d, s).byte_addr() % 64, 0);
            }
        }
    }
}
