//! Graph storage, synthetic generators, interval partitioning, the
//! compressed on-DRAM layout of Fig. 4, and node-reordering preprocessing.
//!
//! The accelerator consumes graphs in **coordinate format** ([`CooGraph`]),
//! partitions edges into `Qs × Qd` shards by source/destination interval
//! ([`partition`]), and lays vertex arrays, compressed edges, and edge
//! pointers out in a flat memory image ([`layout`]). Two optional
//! preprocessing passes improve locality and balance ([`reorder`]):
//! cache-line hashing and DBG degree grouping.
//!
//! Real Table II graphs (twitter, uk-2005, …) are not redistributable, so
//! [`benchmarks`] provides deterministic synthetic stand-ins that match each
//! graph's node/edge ratio, degree skew, and community structure at a
//! laptop-friendly scale (see DESIGN.md for the substitution argument).
//!
//! # Example
//!
//! ```
//! use graph::gen::GraphSpec;
//! use graph::partition::Partitioner;
//!
//! let g = GraphSpec::rmat(10, 8).build(7);
//! let parts = Partitioner::new(1 << 9, 1 << 9).partition(&g);
//! assert_eq!(parts.total_edges(), g.num_edges() as u64);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod benchmarks;
pub mod coo;
pub mod gen;
pub mod io;
pub mod layout;
pub mod partition;
pub mod props;
pub mod reorder;

pub use coo::{CooGraph, NodeId};
pub use gen::GraphSpec;
pub use layout::{GraphImage, LayoutBuilder};
pub use partition::{PartitionedGraph, Partitioner};
