//! Scaled synthetic stand-ins for the paper's Table II benchmark graphs.
//!
//! The real graphs (tens of millions of nodes, up to 2 B edges) are neither
//! redistributable nor tractable for a software cycle simulator, so each
//! benchmark is replaced by a deterministic generator matched on the
//! properties the paper's results depend on:
//!
//! * **N/M ratio** — the paper's node and edge counts, divided by a common
//!   scale factor (64–1024× depending on size);
//! * **degree skew** — RMAT for the RMAT rows, Pareto out-degrees elsewhere;
//! * **label locality** — web crawls (UK, IT, SK, WB, DB) keep community-
//!   clustered labels; social graphs (MP, RV, FR, WT) get scrambled labels,
//!   reflecting Faldu et al.'s observation that their orderings do not
//!   preserve communities (this drives Fig. 13's DBG results).

use crate::coo::CooGraph;
use crate::gen::GraphSpec;

/// Identifier of a Table II benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// wiki-Talk: small, extremely sparse, scrambled labels.
    Wt,
    /// dbpedia-link: medium, moderately clustered.
    Db,
    /// uk-2005 web crawl: highly clustered labels.
    Uk,
    /// it-2004 web crawl: highly clustered labels.
    It,
    /// sk-2005 web crawl: highly clustered labels.
    Sk,
    /// twitter\_mpi: social, scrambled labels.
    Mp,
    /// twitter\_rv: social, scrambled labels.
    Rv,
    /// com-friendster: social, scrambled labels.
    Fr,
    /// webbase-2001: clustered, sparse for its size.
    Wb,
    /// RMAT-24 equivalent.
    R24,
    /// RMAT-25 equivalent.
    R25,
    /// RMAT-26 equivalent.
    R26,
}

impl BenchmarkId {
    /// All benchmarks in Table II order.
    pub const ALL: [BenchmarkId; 12] = [
        BenchmarkId::Wt,
        BenchmarkId::Db,
        BenchmarkId::Uk,
        BenchmarkId::It,
        BenchmarkId::Sk,
        BenchmarkId::Mp,
        BenchmarkId::Rv,
        BenchmarkId::Fr,
        BenchmarkId::Wb,
        BenchmarkId::R24,
        BenchmarkId::R25,
        BenchmarkId::R26,
    ];

    /// A small representative subset for quick experiment runs: one sparse
    /// social graph, one clustered web graph, one dense social graph, one
    /// RMAT.
    pub const QUICK: [BenchmarkId; 4] = [
        BenchmarkId::Wt,
        BenchmarkId::Uk,
        BenchmarkId::Rv,
        BenchmarkId::R24,
    ];

    /// The paper's two-letter tag.
    pub fn tag(self) -> &'static str {
        match self {
            BenchmarkId::Wt => "WT",
            BenchmarkId::Db => "DB",
            BenchmarkId::Uk => "UK",
            BenchmarkId::It => "IT",
            BenchmarkId::Sk => "SK",
            BenchmarkId::Mp => "MP",
            BenchmarkId::Rv => "RV",
            BenchmarkId::Fr => "FR",
            BenchmarkId::Wb => "WB",
            BenchmarkId::R24 => "24",
            BenchmarkId::R25 => "25",
            BenchmarkId::R26 => "26",
        }
    }

    /// Full benchmark name as in Table II.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Wt => "wiki-Talk",
            BenchmarkId::Db => "dbpedia-link",
            BenchmarkId::Uk => "uk-2005",
            BenchmarkId::It => "it-2004",
            BenchmarkId::Sk => "sk-2005",
            BenchmarkId::Mp => "twitter_mpi",
            BenchmarkId::Rv => "twitter_rv",
            BenchmarkId::Fr => "com-friendster",
            BenchmarkId::Wb => "webbase-2001",
            BenchmarkId::R24 => "RMAT-24",
            BenchmarkId::R25 => "RMAT-25",
            BenchmarkId::R26 => "RMAT-26",
        }
    }

    /// `(N, M)` of the original graph, from Table II.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            BenchmarkId::Wt => (2_390_000, 5_020_000),
            BenchmarkId::Db => (18_300_000, 172_000_000),
            BenchmarkId::Uk => (39_500_000, 936_000_000),
            BenchmarkId::It => (41_300_000, 1_150_000_000),
            BenchmarkId::Sk => (50_600_000, 1_950_000_000),
            BenchmarkId::Mp => (52_600_000, 1_960_000_000),
            BenchmarkId::Rv => (61_600_000, 1_470_000_000),
            BenchmarkId::Fr => (65_600_000, 1_810_000_000),
            BenchmarkId::Wb => (118_000_000, 1_020_000_000),
            BenchmarkId::R24 => (16_800_000, 268_000_000),
            BenchmarkId::R25 => (33_600_000, 537_000_000),
            BenchmarkId::R26 => (67_100_000, 1_070_000_000),
        }
    }

    /// `true` for graphs whose original labeling preserves communities
    /// (web crawls); `false` for social graphs and RMAT, where DBG is
    /// expected to help (Fig. 13).
    pub fn is_clustered(self) -> bool {
        matches!(
            self,
            BenchmarkId::Db | BenchmarkId::Uk | BenchmarkId::It | BenchmarkId::Sk | BenchmarkId::Wb
        )
    }

    /// Scale divisor applied to the paper's size for the simulator-sized
    /// stand-in at `scale = 1.0`.
    fn divisor(self) -> u64 {
        match self {
            BenchmarkId::Wt => 16,
            BenchmarkId::Db => 128,
            BenchmarkId::Uk | BenchmarkId::It | BenchmarkId::Wb => 512,
            BenchmarkId::Sk | BenchmarkId::Mp | BenchmarkId::Rv | BenchmarkId::Fr => 1024,
            BenchmarkId::R24 => 256,
            BenchmarkId::R25 => 256,
            BenchmarkId::R26 => 256,
        }
    }

    /// The generator spec for this benchmark, additionally scaled by
    /// `shrink` (1 = the default laptop scale; larger = smaller graphs for
    /// quick runs).
    ///
    /// # Panics
    ///
    /// Panics if `shrink` is zero.
    pub fn spec(self, shrink: u64) -> GraphSpec {
        assert!(shrink > 0, "shrink factor must be nonzero");
        let (pn, pm) = self.paper_size();
        let div = self.divisor() * shrink;
        let n = (pn / div).max(1024) as u32;
        let m = (pm / div).max(4096) as usize;
        match self {
            BenchmarkId::R24 | BenchmarkId::R25 | BenchmarkId::R26 => {
                // Keep the RMAT family: pick the scale closest to the target
                // node count and the paper's M/N=16 average degree.
                let scale = ((n as f64).log2().round() as u32).max(10);
                GraphSpec::rmat(scale, 16)
            }
            BenchmarkId::Wt => GraphSpec::power_law_cluster(n, m, 1.7, 0.2, 64, true),
            BenchmarkId::Db => GraphSpec::power_law_cluster(n, m, 2.0, 0.6, 256, false),
            BenchmarkId::Uk | BenchmarkId::It | BenchmarkId::Sk => {
                GraphSpec::power_law_cluster(n, m, 2.1, 0.85, 512, false)
            }
            BenchmarkId::Wb => GraphSpec::power_law_cluster(n, m, 2.2, 0.8, 512, false),
            BenchmarkId::Mp | BenchmarkId::Rv | BenchmarkId::Fr => {
                GraphSpec::power_law_cluster(n, m, 1.9, 0.35, 256, true)
            }
        }
    }

    /// Builds the scaled stand-in graph deterministically.
    pub fn build(self, shrink: u64) -> CooGraph {
        // Seed derived from the tag so each benchmark differs but is stable.
        let seed = self
            .tag()
            .bytes()
            .fold(0x9E37u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
        self.spec(shrink).build(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_small() {
        for id in BenchmarkId::ALL {
            let g = id.build(16);
            assert!(g.num_nodes() >= 1024, "{}", id.tag());
            assert!(g.num_edges() >= 4096, "{}", id.tag());
        }
    }

    #[test]
    fn ratios_roughly_match_paper() {
        for id in [BenchmarkId::Uk, BenchmarkId::Rv, BenchmarkId::Db] {
            let (pn, pm) = id.paper_size();
            let paper_ratio = pm as f64 / pn as f64;
            let g = id.build(4);
            let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
            assert!(
                (ratio / paper_ratio - 1.0).abs() < 0.35,
                "{}: {ratio:.1} vs paper {paper_ratio:.1}",
                id.tag()
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = BenchmarkId::Rv.build(8);
        let b = BenchmarkId::Rv.build(8);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn clustered_flags_match_graph_families() {
        assert!(BenchmarkId::Uk.is_clustered());
        assert!(!BenchmarkId::Rv.is_clustered());
        assert!(!BenchmarkId::R24.is_clustered());
    }

    #[test]
    fn tags_are_table_ii_tags() {
        assert_eq!(BenchmarkId::Wt.tag(), "WT");
        assert_eq!(BenchmarkId::R26.tag(), "26");
        assert_eq!(BenchmarkId::ALL.len(), 12);
    }

    #[test]
    fn rmat_benchmarks_use_rmat_spec() {
        match BenchmarkId::R24.spec(1) {
            GraphSpec::Rmat { avg_degree, .. } => assert_eq!(avg_degree, 16),
            other => panic!("expected RMAT, got {other:?}"),
        }
    }
}
