//! Coordinate-format graph storage.

/// Node identifier. The paper targets graphs with tens of millions of
/// nodes; `u32` covers them and matches the compressed edge format.
pub type NodeId = u32;

/// A directed graph in coordinate (COO) format: a list of `(src, dst)`
/// tuples with optional per-edge weights — exactly the input format the
/// accelerator accepts (§III-C).
///
/// Undirected graphs are represented by duplicating each edge, as in the
/// paper.
///
/// # Example
///
/// ```
/// use graph::CooGraph;
/// let g = CooGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.out_degrees()[1], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooGraph {
    num_nodes: u32,
    edges: Vec<(NodeId, NodeId)>,
    weights: Option<Vec<u32>>,
}

impl CooGraph {
    /// Builds an unweighted graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: u32, edges: Vec<(NodeId, NodeId)>) -> Self {
        for &(s, d) in &edges {
            assert!(
                s < num_nodes && d < num_nodes,
                "edge ({s},{d}) out of range"
            );
        }
        CooGraph {
            num_nodes,
            edges,
            weights: None,
        }
    }

    /// Builds a weighted graph from parallel edge and weight lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists differ in length or an endpoint is out of range.
    pub fn from_weighted_edges(
        num_nodes: u32,
        edges: Vec<(NodeId, NodeId)>,
        weights: Vec<u32>,
    ) -> Self {
        assert_eq!(edges.len(), weights.len(), "one weight per edge");
        let mut g = CooGraph::from_edges(num_nodes, edges);
        g.weights = Some(weights);
        g
    }

    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of edges `M`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` when per-edge weights are present.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Per-edge weights, if any.
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Edge `i` as `(src, dst, weight)`; weight is 1 when unweighted.
    pub fn edge(&self, i: usize) -> (NodeId, NodeId, u32) {
        let (s, d) = self.edges[i];
        let w = self.weights.as_ref().map_or(1, |ws| ws[i]);
        (s, d, w)
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for &(s, _) in &self.edges {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for &(_, d) in &self.edges {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Attaches uniform random integer weights in `[lo, hi]`, as the paper
    /// does for SSSP ("random integer weights between 0 and 255").
    pub fn with_random_weights(mut self, lo: u32, hi: u32, seed: u64) -> Self {
        assert!(lo <= hi, "weight range must be nondecreasing");
        let mut rng = simkit::SplitMix64::new(seed);
        let span = (hi - lo + 1) as u64;
        self.weights = Some(
            (0..self.edges.len())
                .map(|_| lo + rng.next_below(span) as u32)
                .collect(),
        );
        self
    }

    /// Returns the graph with every edge duplicated in the reverse
    /// direction — how the accelerator handles undirected graphs (§III)
    /// and the required input for [`crate::gen`]-built WCC runs.
    pub fn symmetrized(&self) -> CooGraph {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        let mut weights = self.weights.as_ref().map(|w| {
            let mut v = Vec::with_capacity(w.len() * 2);
            v.extend_from_slice(w);
            v
        });
        edges.extend_from_slice(&self.edges);
        for i in 0..self.edges.len() {
            let (s, d) = self.edges[i];
            edges.push((d, s));
            if let Some(ws) = &mut weights {
                let w = self.weights.as_ref().expect("weighted")[i];
                ws.push(w);
            }
        }
        CooGraph {
            num_nodes: self.num_nodes,
            edges,
            weights,
        }
    }

    /// Applies a node relabeling: node `i` becomes `perm[i]`.
    ///
    /// Used by the reordering passes; edge order is preserved (partitioning
    /// does not require any edge sorting).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_nodes`.
    pub fn relabel(&self, perm: &[NodeId]) -> CooGraph {
        assert_eq!(perm.len(), self.num_nodes as usize, "permutation size");
        debug_assert!(crate::reorder::is_permutation(perm), "not a permutation");
        let edges = self
            .edges
            .iter()
            .map(|&(s, d)| (perm[s as usize], perm[d as usize]))
            .collect();
        CooGraph {
            num_nodes: self.num_nodes,
            edges,
            weights: self.weights.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> CooGraph {
        CooGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
    }

    #[test]
    fn degrees_of_ring() {
        let g = ring(5);
        assert_eq!(g.out_degrees(), vec![1; 5]);
        assert_eq!(g.in_degrees(), vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = CooGraph::from_edges(2, vec![(0, 2)]);
    }

    #[test]
    fn weighted_edges_round_trip() {
        let g = CooGraph::from_weighted_edges(3, vec![(0, 1), (1, 2)], vec![7, 9]);
        assert!(g.is_weighted());
        assert_eq!(g.edge(0), (0, 1, 7));
        assert_eq!(g.edge(1), (1, 2, 9));
    }

    #[test]
    fn unweighted_edge_weight_is_one() {
        let g = ring(3);
        assert_eq!(g.edge(0).2, 1);
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let g1 = ring(100).with_random_weights(0, 255, 11);
        let g2 = ring(100).with_random_weights(0, 255, 11);
        assert_eq!(g1.weights(), g2.weights());
        assert!(g1.weights().unwrap().iter().all(|&w| w <= 255));
    }

    #[test]
    fn symmetrized_doubles_edges() {
        let g = CooGraph::from_weighted_edges(3, vec![(0, 1), (1, 2)], vec![5, 6]);
        let s = g.symmetrized();
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.edges()[2], (1, 0));
        assert_eq!(s.weights().unwrap(), &[5, 6, 5, 6]);
    }

    #[test]
    fn relabel_permutes_endpoints() {
        let g = CooGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        // 0->2, 1->0, 2->1
        let r = g.relabel(&[2, 0, 1]);
        assert_eq!(r.edges(), &[(2, 0), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "permutation size")]
    fn relabel_rejects_wrong_size() {
        let g = ring(3);
        let _ = g.relabel(&[0, 1]);
    }
}
