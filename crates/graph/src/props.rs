//! Graph property metrics used to validate the synthetic Table II
//! stand-ins: degree skew (drives MOMS merge opportunities) and label
//! locality (drives cache-line reuse and the DBG/hashing trade-offs).

use crate::coo::CooGraph;

/// Summary statistics of a graph's structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphProps {
    /// Nodes.
    pub n: u32,
    /// Edges.
    pub m: u64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// 99th-percentile out-degree.
    pub p99_out_degree: u32,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Skew: p99 / mean out-degree (1 ≈ uniform; power-law graphs reach
    /// 5–50). High skew means many reads target few source nodes — the
    /// paper's request-merging opportunity (§I-C).
    pub skew: f64,
    /// Fraction of edges whose endpoints lie within the same 64-node
    /// window of the label space — a proxy for the cache-line/community
    /// locality that DBG and hashing manipulate (§IV-E).
    pub label_locality: f64,
    /// Fraction of nodes with no outgoing edges (dangling).
    pub dangling: f64,
}

impl GraphProps {
    /// Computes all metrics in O(N + M).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn measure(g: &CooGraph) -> GraphProps {
        assert!(g.num_nodes() > 0, "graph must have nodes");
        let n = g.num_nodes();
        let m = g.num_edges() as u64;
        let mut deg = g.out_degrees();
        let mean = m as f64 / n as f64;
        let dangling = deg.iter().filter(|&&d| d == 0).count() as f64 / n as f64;
        let local = g.edges().iter().filter(|&&(s, d)| s / 64 == d / 64).count() as f64
            / (m as f64).max(1.0);
        deg.sort_unstable();
        let p99 = deg[(n as usize - 1) * 99 / 100];
        let max = *deg.last().expect("nonempty");
        GraphProps {
            n,
            m,
            mean_out_degree: mean,
            p99_out_degree: p99,
            max_out_degree: max,
            skew: if mean > 0.0 { p99 as f64 / mean } else { 0.0 },
            label_locality: local,
            dangling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphSpec;

    #[test]
    fn uniform_graph_has_low_skew() {
        let g = GraphSpec::erdos_renyi(4096, 4096 * 16).build(3);
        let p = GraphProps::measure(&g);
        assert!(p.skew < 2.0, "ER skew {}", p.skew);
        assert!((p.mean_out_degree - 16.0).abs() < 1e-9);
    }

    #[test]
    fn rmat_has_high_skew_and_dangling_nodes() {
        let g = GraphSpec::rmat(12, 16).build(5);
        let p = GraphProps::measure(&g);
        assert!(p.skew > 3.0, "RMAT skew {}", p.skew);
        assert!(p.dangling > 0.05, "RMAT dangling {}", p.dangling);
        assert!(p.max_out_degree > p.p99_out_degree);
    }

    #[test]
    fn clustered_labels_show_locality_scrambled_do_not() {
        let clustered = GraphSpec::power_law_cluster(8192, 65536, 2.1, 0.85, 512, false).build(7);
        let scrambled = GraphSpec::power_law_cluster(8192, 65536, 2.1, 0.85, 512, true).build(7);
        let pc = GraphProps::measure(&clustered);
        let ps = GraphProps::measure(&scrambled);
        assert!(
            pc.label_locality > 3.0 * ps.label_locality,
            "clustered {} vs scrambled {}",
            pc.label_locality,
            ps.label_locality
        );
    }

    #[test]
    fn counts_are_consistent() {
        let g = GraphSpec::rmat(8, 4).build(9);
        let p = GraphProps::measure(&g);
        assert_eq!(p.n, g.num_nodes());
        assert_eq!(p.m, g.num_edges() as u64);
    }
}
