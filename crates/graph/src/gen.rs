//! Deterministic synthetic graph generators.
//!
//! Two families cover the evaluation's needs:
//!
//! * [`GraphSpec::rmat`] — the RMAT model used directly by the paper
//!   (RMAT-24/25/26 with the standard Graph500 quadrant probabilities).
//! * [`GraphSpec::power_law_cluster`] — a Zipf-out-degree generator with a
//!   tunable fraction of intra-community edges and an optional label
//!   scramble. Community locality models web crawls (uk-2005, it-2004, …)
//!   whose labeling preserves clusters; scrambling models social graphs
//!   (twitter, friendster) whose labeling does not — the two properties the
//!   paper's preprocessing study (Fig. 13) depends on.

use simkit::SplitMix64;

use crate::coo::{CooGraph, NodeId};

/// Declarative description of a synthetic graph; [`build`](GraphSpec::build)
/// materialises it deterministically from a seed.
///
/// # Example
///
/// ```
/// use graph::GraphSpec;
/// let g = GraphSpec::rmat(8, 4).build(1);
/// assert_eq!(g.num_nodes(), 256);
/// assert_eq!(g.num_edges(), 256 * 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// RMAT with `2^scale` nodes and `2^scale * avg_degree` edges using
    /// quadrant probabilities `(a, b, c, d)`.
    Rmat {
        /// log2 of the node count.
        scale: u32,
        /// Average out-degree (edges = nodes × this).
        avg_degree: u32,
        /// Quadrant probabilities, summing to 1.
        probs: (f64, f64, f64, f64),
    },
    /// Uniform random graph with `n` nodes and `m` edges.
    ErdosRenyi {
        /// Node count.
        n: u32,
        /// Edge count.
        m: usize,
    },
    /// Barabási–Albert preferential attachment: each new node attaches to
    /// `m_attach` existing nodes chosen proportionally to their current
    /// degree. Produces power-law in-degrees with strong early-node hubs.
    BarabasiAlbert {
        /// Node count.
        n: u32,
        /// Edges added per new node.
        m_attach: u32,
    },
    /// Watts–Strogatz small-world: a ring lattice of degree `k` with each
    /// edge rewired to a random target with probability `beta`. Low skew,
    /// high clustering — a useful contrast to the power-law families.
    WattsStrogatz {
        /// Node count.
        n: u32,
        /// Lattice degree (even).
        k: u32,
        /// Rewiring probability.
        beta: f64,
    },
    /// Power-law out-degrees with community structure.
    PowerLawCluster {
        /// Node count.
        n: u32,
        /// Edge count target.
        m: usize,
        /// Pareto shape for out-degrees (smaller = more skewed); the
        /// paper's graphs have shapes around 1.8–2.5.
        alpha: f64,
        /// Fraction of edges that stay within the source's community.
        locality: f64,
        /// Mean community size in nodes.
        community: u32,
        /// When `true`, node labels are randomly permuted after
        /// generation, destroying label locality while preserving graph
        /// structure (social-network-like labelings).
        scrambled: bool,
    },
}

impl GraphSpec {
    /// RMAT with the standard Graph500 probabilities (0.57/0.19/0.19/0.05),
    /// matching the paper's RMAT-24/25/26 inputs \[12\], \[27\].
    pub fn rmat(scale: u32, avg_degree: u32) -> Self {
        GraphSpec::Rmat {
            scale,
            avg_degree,
            probs: (0.57, 0.19, 0.19, 0.05),
        }
    }

    /// Uniform random graph.
    pub fn erdos_renyi(n: u32, m: usize) -> Self {
        GraphSpec::ErdosRenyi { n, m }
    }

    /// Barabási–Albert preferential attachment graph.
    pub fn barabasi_albert(n: u32, m_attach: u32) -> Self {
        GraphSpec::BarabasiAlbert { n, m_attach }
    }

    /// Watts–Strogatz small-world graph.
    pub fn watts_strogatz(n: u32, k: u32, beta: f64) -> Self {
        GraphSpec::WattsStrogatz { n, k, beta }
    }

    /// Power-law community graph; see the variant docs for parameters.
    pub fn power_law_cluster(
        n: u32,
        m: usize,
        alpha: f64,
        locality: f64,
        community: u32,
        scrambled: bool,
    ) -> Self {
        GraphSpec::PowerLawCluster {
            n,
            m,
            alpha,
            locality,
            community,
            scrambled,
        }
    }

    /// Node count this spec will produce.
    pub fn num_nodes(&self) -> u32 {
        match *self {
            GraphSpec::Rmat { scale, .. } => 1u32 << scale,
            GraphSpec::ErdosRenyi { n, .. } => n,
            GraphSpec::BarabasiAlbert { n, .. } => n,
            GraphSpec::WattsStrogatz { n, .. } => n,
            GraphSpec::PowerLawCluster { n, .. } => n,
        }
    }

    /// Edge count this spec will produce.
    pub fn num_edges(&self) -> usize {
        match *self {
            GraphSpec::Rmat {
                scale, avg_degree, ..
            } => (1usize << scale) * avg_degree as usize,
            GraphSpec::ErdosRenyi { m, .. } => m,
            GraphSpec::BarabasiAlbert { n, m_attach } => {
                n.saturating_sub(m_attach) as usize * m_attach as usize
            }
            GraphSpec::WattsStrogatz { n, k, .. } => n as usize * k as usize,
            GraphSpec::PowerLawCluster { m, .. } => m,
        }
    }

    /// Materialises the graph deterministically.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero nodes, probabilities that do
    /// not sum to ~1, locality outside `[0, 1]`).
    pub fn build(&self, seed: u64) -> CooGraph {
        match *self {
            GraphSpec::Rmat {
                scale,
                avg_degree,
                probs,
            } => build_rmat(scale, avg_degree, probs, seed),
            GraphSpec::ErdosRenyi { n, m } => build_er(n, m, seed),
            GraphSpec::BarabasiAlbert { n, m_attach } => build_ba(n, m_attach, seed),
            GraphSpec::WattsStrogatz { n, k, beta } => build_ws(n, k, beta, seed),
            GraphSpec::PowerLawCluster {
                n,
                m,
                alpha,
                locality,
                community,
                scrambled,
            } => build_plc(n, m, alpha, locality, community, scrambled, seed),
        }
    }
}

fn build_rmat(scale: u32, avg_degree: u32, probs: (f64, f64, f64, f64), seed: u64) -> CooGraph {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "RMAT probabilities must sum to 1"
    );
    assert!(scale > 0 && scale <= 30, "scale out of supported range");
    let n = 1u32 << scale;
    let m = n as usize * avg_degree as usize;
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut src, mut dst) = (0u32, 0u32);
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r = rng.next_f64();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.push((src, dst));
    }
    CooGraph::from_edges(n, edges)
}

fn build_er(n: u32, m: usize, seed: u64) -> CooGraph {
    assert!(n > 0, "graph must have nodes");
    let mut rng = SplitMix64::new(seed);
    let edges = (0..m)
        .map(|_| {
            (
                rng.next_below(n as u64) as NodeId,
                rng.next_below(n as u64) as NodeId,
            )
        })
        .collect();
    CooGraph::from_edges(n, edges)
}

fn build_ba(n: u32, m_attach: u32, seed: u64) -> CooGraph {
    assert!(m_attach > 0, "each node must attach somewhere");
    assert!(n > m_attach, "need a seed clique larger than m_attach");
    let mut rng = SplitMix64::new(seed);
    // Repeated-endpoint list: sampling an index uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = (0..=m_attach).collect();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in (m_attach + 1)..n {
        for _ in 0..m_attach {
            let t = endpoints[rng.next_below(endpoints.len() as u64) as usize];
            edges.push((v, t));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    // The seed nodes form a small ring so nothing is isolated.
    for i in 0..=m_attach {
        edges.push((i, (i + 1) % (m_attach + 1)));
    }
    let extra = edges.len() - (n - m_attach) as usize * m_attach as usize;
    // Trim the ring edges beyond the advertised count deterministically.
    edges.truncate(edges.len() - extra.min(edges.len()));
    CooGraph::from_edges(n, edges)
}

fn build_ws(n: u32, k: u32, beta: f64, seed: u64) -> CooGraph {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "lattice degree must be even and >= 2"
    );
    assert!(n > k, "ring must be larger than its degree");
    assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(n as usize * k as usize);
    for v in 0..n {
        for j in 1..=k / 2 {
            for t in [(v + j) % n, (v + n - j) % n] {
                let dst = if rng.chance(beta) {
                    rng.next_below(n as u64) as NodeId
                } else {
                    t
                };
                edges.push((v, dst));
            }
        }
    }
    CooGraph::from_edges(n, edges)
}

/// Samples a Pareto-distributed out-degree with shape `alpha`, capped.
fn pareto_degree(rng: &mut SplitMix64, alpha: f64, cap: u32) -> u32 {
    let u = rng.next_f64().max(1e-12);
    let x = u.powf(-1.0 / alpha);
    (x as u32).clamp(1, cap)
}

#[allow(clippy::too_many_arguments)]
fn build_plc(
    n: u32,
    m: usize,
    alpha: f64,
    locality: f64,
    community: u32,
    scrambled: bool,
    seed: u64,
) -> CooGraph {
    assert!(n > 0, "graph must have nodes");
    assert!((0.0..=1.0).contains(&locality), "locality in [0,1]");
    assert!(community > 0, "community size must be nonzero");
    assert!(alpha > 1.0, "alpha must exceed 1 for finite mean");
    let mut rng = SplitMix64::new(seed);

    // Sample raw degrees, then scale to hit the edge budget exactly.
    let mut deg: Vec<u64> = (0..n)
        .map(|_| pareto_degree(&mut rng, alpha, n / 2 + 1) as u64)
        .collect();
    let total: u64 = deg.iter().sum();
    let mut scaled: Vec<u64> = deg
        .iter()
        .map(|&d| (d as u128 * m as u128 / total as u128) as u64)
        .collect();
    let mut assigned: u64 = scaled.iter().sum();
    // Distribute the rounding remainder round-robin over high-degree nodes.
    let mut i = 0usize;
    while assigned < m as u64 {
        scaled[i % n as usize] += 1;
        assigned += 1;
        i += 1;
    }
    deg = scaled;

    // Destination sampling: within-community uniform, or global Zipf-ish
    // favouring low node ids (hubs) via squaring the uniform variate.
    let n_comms = n.div_ceil(community);
    let mut edges = Vec::with_capacity(m);
    for (src, &d) in deg.iter().enumerate() {
        let src = src as u32;
        let comm = src / community;
        for _ in 0..d {
            let dst = if rng.chance(locality) {
                let base = comm * community;
                let size = community.min(n - base);
                base + rng.next_below(size as u64) as u32
            } else {
                // Hubs (low ids within a random community) attract links.
                let target_comm = rng.next_below(n_comms as u64) as u32;
                let base = target_comm * community;
                let size = community.min(n - base) as f64;
                let frac = rng.next_f64();
                base + ((frac * frac) * size) as u32
            };
            edges.push((src, dst.min(n - 1)));
        }
    }

    let g = CooGraph::from_edges(n, edges);
    if scrambled {
        let mut perm: Vec<NodeId> = (0..n).collect();
        rng.shuffle(&mut perm);
        g.relabel(&perm)
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_sizes_match_spec() {
        let spec = GraphSpec::rmat(10, 16);
        let g = spec.build(3);
        assert_eq!(g.num_nodes(), 1024);
        assert_eq!(g.num_edges(), 1024 * 16);
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = GraphSpec::rmat(8, 8).build(5);
        let b = GraphSpec::rmat(8, 8).build(5);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn rmat_is_skewed() {
        // RMAT should concentrate many edges on few nodes: max out-degree
        // well above average.
        let g = GraphSpec::rmat(12, 8).build(7);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        assert!(max > 8 * 10, "max degree {max} not skewed");
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let g = GraphSpec::erdos_renyi(4096, 4096 * 8).build(9);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        assert!(max < 8 * 6, "ER max degree {max} unexpectedly skewed");
    }

    #[test]
    fn plc_hits_edge_budget_exactly() {
        let spec = GraphSpec::power_law_cluster(5000, 40_000, 2.0, 0.7, 256, false);
        let g = spec.build(11);
        assert_eq!(g.num_edges(), 40_000);
        assert_eq!(g.num_nodes(), 5000);
    }

    #[test]
    fn plc_locality_controls_intra_community_edges() {
        let count_local = |locality: f64| {
            let g = GraphSpec::power_law_cluster(4096, 40_000, 2.0, locality, 256, false).build(13);
            g.edges()
                .iter()
                .filter(|&&(s, d)| s / 256 == d / 256)
                .count()
        };
        let hi = count_local(0.9);
        let lo = count_local(0.1);
        assert!(hi > 2 * lo, "locality knob ineffective: {hi} vs {lo}");
    }

    #[test]
    fn plc_scramble_preserves_structure() {
        let base = GraphSpec::power_law_cluster(2048, 20_000, 2.0, 0.8, 128, false).build(17);
        let scr = GraphSpec::power_law_cluster(2048, 20_000, 2.0, 0.8, 128, true).build(17);
        assert_eq!(base.num_edges(), scr.num_edges());
        // Degree distribution is preserved (as a multiset).
        let mut d1 = base.out_degrees();
        let mut d2 = scr.out_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // But label locality is destroyed.
        let local = |g: &CooGraph| {
            g.edges()
                .iter()
                .filter(|&&(s, d)| s / 128 == d / 128)
                .count()
        };
        assert!(local(&base) > 3 * local(&scr));
    }

    #[test]
    fn barabasi_albert_has_hubs_on_early_nodes() {
        let g = GraphSpec::barabasi_albert(4096, 4).build(31);
        assert_eq!(g.num_edges(), g.num_nodes() as usize * 4 - 4 * 4);
        let indeg = g.in_degrees();
        let early_max = indeg[..64].iter().max().copied().unwrap();
        let late_max = indeg[2048..].iter().max().copied().unwrap();
        assert!(
            early_max > 4 * late_max,
            "early {early_max} vs late {late_max}: no preferential attachment"
        );
    }

    #[test]
    fn watts_strogatz_degree_and_rewiring() {
        let ordered = GraphSpec::watts_strogatz(1024, 6, 0.0).build(3);
        assert_eq!(ordered.num_edges(), 1024 * 6);
        // beta = 0: pure lattice, every out-degree exactly k.
        assert!(ordered.out_degrees().iter().all(|&d| d == 6));
        // beta = 1: targets scattered; long-range edges appear.
        let rewired = GraphSpec::watts_strogatz(1024, 6, 1.0).build(3);
        let long = rewired
            .edges()
            .iter()
            .filter(|&&(s, d)| {
                let dist = (s as i64 - d as i64)
                    .unsigned_abs()
                    .min(1024 - (s as i64 - d as i64).unsigned_abs());
                dist > 10
            })
            .count();
        assert!(
            long > rewired.num_edges() / 2,
            "only {long} long-range edges"
        );
    }

    #[test]
    fn ws_and_ba_are_deterministic() {
        assert_eq!(
            GraphSpec::barabasi_albert(256, 3).build(7).edges(),
            GraphSpec::barabasi_albert(256, 3).build(7).edges()
        );
        assert_eq!(
            GraphSpec::watts_strogatz(256, 4, 0.2).build(7).edges(),
            GraphSpec::watts_strogatz(256, 4, 0.2).build(7).edges()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probs() {
        let _ = GraphSpec::Rmat {
            scale: 4,
            avg_degree: 2,
            probs: (0.5, 0.5, 0.5, 0.5),
        }
        .build(0);
    }
}
