//! Node-reordering preprocessing (§IV-E): cache-line hashing and DBG
//! degree grouping, plus timing helpers for Table III.
//!
//! Both passes produce a *relabeling permutation* `perm` where node `i`
//! gets new label `perm[i]`; passes compose left-to-right with
//! [`compose`].

use std::time::Instant;

use simkit::SplitMix64;

use crate::coo::{CooGraph, NodeId};

/// Number of out-degree groups used by DBG reordering \[19\].
pub const DBG_GROUPS: u32 = 8;

/// Which preprocessing to apply before partitioning — the four variants of
/// Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preprocess {
    /// Keep the original labeling.
    None,
    /// Hash whole cache lines across destination intervals (keeps lines
    /// intact, balances jobs).
    #[default]
    Hash,
    /// DBG degree grouping only.
    Dbg,
    /// DBG first, then cache-line hashing — the paper's default ("If not
    /// specified, we enable both hashing and DBG").
    DbgHash,
}

impl Preprocess {
    /// All four variants in Fig. 13's order.
    pub const ALL: [Preprocess; 4] = [
        Preprocess::None,
        Preprocess::Hash,
        Preprocess::Dbg,
        Preprocess::DbgHash,
    ];

    /// Short display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Preprocess::None => "none",
            Preprocess::Hash => "hash",
            Preprocess::Dbg => "dbg",
            Preprocess::DbgHash => "dbg+hash",
        }
    }
}

/// Wall-clock cost of each preprocessing stage, for Table III.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PreprocessTimes {
    /// Seconds spent in cache-line hashing (0 when skipped).
    pub hashing_s: f64,
    /// Seconds spent in DBG grouping (0 when skipped).
    pub dbg_s: f64,
    /// Seconds spent applying the permutations to the edge list.
    pub relabel_s: f64,
}

/// Checks that `perm` maps `0..n` onto `0..n` bijectively.
pub fn is_permutation(perm: &[NodeId]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// The identity relabeling.
pub fn identity(n: u32) -> Vec<NodeId> {
    (0..n).collect()
}

/// Composes two relabelings: applying the result is equivalent to applying
/// `first` and then `second`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn compose(first: &[NodeId], second: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(first.len(), second.len(), "permutation sizes must match");
    first.iter().map(|&f| second[f as usize]).collect()
}

/// Cache-line hashing: keeps runs of `nodes_per_line` consecutive nodes
/// (one cache line of node values) intact and pseudo-randomly permutes the
/// *lines* across the label space.
///
/// This balances in-edges across destination intervals without destroying
/// intra-line clustering — the paper's alternative to ForeGraph/FabGraph's
/// per-node modulo hashing, which "may destroy any cluster that is
/// preserved in the original labeling".
///
/// # Panics
///
/// Panics if `nodes_per_line` is zero.
pub fn hash_cache_lines(n: u32, nodes_per_line: u32, seed: u64) -> Vec<NodeId> {
    assert!(nodes_per_line > 0, "nodes_per_line must be nonzero");
    let lines = n.div_ceil(nodes_per_line);
    let mut order: Vec<u32> = (0..lines).collect();
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut order);
    // order[k] = which old line lands at position k. Assign new labels by
    // walking lines in their new order; the (single, possibly short) ragged
    // tail line just contributes fewer labels, keeping the result compact.
    let mut perm = vec![0u32; n as usize];
    let mut next = 0u32;
    for &old_line in &order {
        let base = old_line * nodes_per_line;
        let len = nodes_per_line.min(n - base.min(n));
        for off in 0..len {
            perm[(base + off) as usize] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, n);
    perm
}

/// DBG reordering \[19\]: coarsely partitions nodes into [`DBG_GROUPS`]
/// groups by out-degree (hottest first), keeping the original order within
/// each group. O(N) complexity.
pub fn dbg_reorder(g: &CooGraph) -> Vec<NodeId> {
    let deg = g.out_degrees();
    let n = g.num_nodes();
    let avg = (g.num_edges() as f64 / n.max(1) as f64).max(1.0);
    // Group thresholds at avg * 2^k, as in the DBG paper's power-of-two
    // binning around the average degree.
    let group_of = |d: u32| -> u32 {
        let mut t = avg * 8.0;
        for grp in 0..DBG_GROUPS - 1 {
            if d as f64 >= t {
                return grp;
            }
            t /= 2.0;
        }
        DBG_GROUPS - 1
    };
    let mut counts = vec![0u32; DBG_GROUPS as usize];
    for &d in &deg {
        counts[group_of(d) as usize] += 1;
    }
    let mut base = vec![0u32; DBG_GROUPS as usize];
    let mut acc = 0;
    for (g, &c) in counts.iter().enumerate() {
        base[g] = acc;
        acc += c;
    }
    let mut next = base;
    let mut perm = vec![0u32; n as usize];
    for i in 0..n as usize {
        let grp = group_of(deg[i]) as usize;
        perm[i] = next[grp];
        next[grp] += 1;
    }
    perm
}

/// Applies `pre` to `g`, returning the relabeled graph and stage timings.
///
/// `nodes_per_line` is the number of node values per 64 B cache line
/// (16 for 32-bit values).
pub fn apply(
    g: &CooGraph,
    pre: Preprocess,
    nodes_per_line: u32,
    seed: u64,
) -> (CooGraph, PreprocessTimes) {
    let mut times = PreprocessTimes::default();
    let n = g.num_nodes();
    let mut perm = identity(n);

    if matches!(pre, Preprocess::Dbg | Preprocess::DbgHash) {
        let t = Instant::now();
        let dbg = dbg_reorder(g);
        perm = compose(&perm, &dbg);
        times.dbg_s = t.elapsed().as_secs_f64();
    }
    if matches!(pre, Preprocess::Hash | Preprocess::DbgHash) {
        let t = Instant::now();
        let hash = hash_cache_lines(n, nodes_per_line, seed);
        perm = compose(&perm, &hash);
        times.hashing_s = t.elapsed().as_secs_f64();
    }

    let t = Instant::now();
    let out = if matches!(pre, Preprocess::None) {
        g.clone()
    } else {
        g.relabel(&perm)
    };
    times.relabel_s = t.elapsed().as_secs_f64();
    (out, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphSpec;

    #[test]
    fn identity_is_permutation() {
        assert!(is_permutation(&identity(100)));
    }

    #[test]
    fn detects_non_permutations() {
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[2, 0, 1]));
    }

    #[test]
    fn compose_applies_in_order() {
        // first: 0->1->2->0 rotation; second: swap 0 and 1.
        let first = vec![1u32, 2, 0];
        let second = vec![1u32, 0, 2];
        let c = compose(&first, &second);
        // node0: first->1, second(1)=0
        assert_eq!(c, vec![0, 2, 1]);
    }

    #[test]
    fn hash_cache_lines_is_permutation_even_when_ragged() {
        for n in [16u32, 17, 100, 1000, 1023] {
            let p = hash_cache_lines(n, 16, 9);
            assert!(is_permutation(&p), "n={n}");
        }
    }

    #[test]
    fn hash_cache_lines_keeps_lines_contiguous() {
        let n = 160;
        let p = hash_cache_lines(n, 16, 3);
        // Nodes within one old line stay consecutive and ordered.
        for line in 0..(n / 16) {
            let base = p[(line * 16) as usize];
            for off in 1..16 {
                assert_eq!(p[(line * 16 + off) as usize], base + off);
            }
        }
    }

    #[test]
    fn hash_cache_lines_moves_lines() {
        let p = hash_cache_lines(1600, 16, 5);
        assert_ne!(p, identity(1600), "shuffle should not be identity");
    }

    #[test]
    fn dbg_groups_high_degree_first() {
        let g = GraphSpec::rmat(10, 8).build(21);
        let perm = dbg_reorder(&g);
        assert!(is_permutation(&perm));
        let deg = g.out_degrees();
        // The hottest node must land in the first portion of the space.
        let (hot, _) = deg.iter().enumerate().max_by_key(|&(_, d)| *d).unwrap();
        assert!(
            perm[hot] < g.num_nodes() / 4,
            "hot node relabeled to {} of {}",
            perm[hot],
            g.num_nodes()
        );
        // A zero-degree node lands in the last group region.
        if let Some((cold, _)) = deg.iter().enumerate().find(|&(_, d)| *d == 0) {
            assert!(perm[cold] >= g.num_nodes() / 2);
        }
    }

    #[test]
    fn dbg_is_stable_within_group() {
        let g = CooGraph::from_edges(6, vec![(0, 1), (2, 3), (4, 5)]);
        // All sources have degree 1, all others 0: within each group the
        // original order is preserved.
        let perm = dbg_reorder(&g);
        assert!(perm[0] < perm[2] && perm[2] < perm[4]);
        assert!(perm[1] < perm[3] && perm[3] < perm[5]);
    }

    #[test]
    fn apply_none_is_identity_and_fast() {
        let g = GraphSpec::rmat(8, 4).build(1);
        let (out, t) = apply(&g, Preprocess::None, 16, 0);
        assert_eq!(out.edges(), g.edges());
        assert_eq!(t.hashing_s, 0.0);
        assert_eq!(t.dbg_s, 0.0);
    }

    #[test]
    fn apply_dbg_hash_times_both_stages() {
        let g = GraphSpec::rmat(10, 8).build(2);
        let (out, t) = apply(&g, Preprocess::DbgHash, 16, 0);
        assert_eq!(out.num_edges(), g.num_edges());
        assert!(t.hashing_s > 0.0);
        assert!(t.dbg_s > 0.0);
        // Degree multiset preserved.
        let mut d1 = g.out_degrees();
        let mut d2 = out.out_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }
}
