//! Golden reference executors.
//!
//! These run the same Template 1 semantics as the simulated accelerator,
//! but sequentially at whole-graph granularity. For the monotone
//! algorithms (SCC/SSSP/BFS/WCC) the fixpoint is schedule-independent, so
//! the simulator's asynchronous, out-of-order execution must produce
//! *exactly* the same values. Synchronous PageRank matches up to
//! floating-point summation order, so comparisons use a small relative
//! tolerance.

use graph::CooGraph;

use crate::spec::Algorithm;

/// Runs `algo` on `g` to completion and returns the final per-node raw
/// values, after [`Algorithm::finalize`].
///
/// Synchronous algorithms run `max_iterations`; asynchronous ones iterate
/// until no value changes.
pub fn run(algo: &Algorithm, g: &CooGraph) -> Vec<u32> {
    let out = run_raw(algo, g);
    algo.finalize(g, &out)
}

/// Like [`run`] but without the final host-side pass (PageRank stays
/// normalized) — matching what the accelerator leaves in `V_DRAM,out`.
pub fn run_raw(algo: &Algorithm, g: &CooGraph) -> Vec<u32> {
    if algo.synchronous() {
        run_sync(algo, g)
    } else {
        run_async(algo, g)
    }
}

fn run_sync(algo: &Algorithm, g: &CooGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let vconst = algo.vconst(g).unwrap_or_else(|| vec![0; n as usize]);
    let mut vin = algo.initial_vin(g);
    let iters = algo.max_iterations(n);
    for _ in 0..iters {
        // init(): fresh BRAM state per node.
        let mut state: Vec<[u32; 2]> = (0..n as usize)
            .map(|i| algo.init(vconst[i], vin[i]))
            .collect();
        // gather(): stream every edge, reading sources from vin (the
        // synchronous snapshot).
        for i in 0..g.num_edges() {
            let (s, d, w) = g.edge(i);
            let out = algo.gather(vin[s as usize], state[d as usize], w);
            state[d as usize] = out.state;
        }
        // apply(): write back.
        for i in 0..n as usize {
            vin[i] = algo.apply(n, state[i]);
        }
    }
    vin
}

fn run_async(algo: &Algorithm, g: &CooGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut v = algo.initial_vin(g);
    let max = algo.max_iterations(n);
    for _ in 0..max {
        let mut changed = false;
        for i in 0..g.num_edges() {
            let (s, d, w) = g.edge(i);
            let out = algo.gather(v[s as usize], [v[d as usize], 0], w);
            if out.updated {
                v[d as usize] = out.state[0];
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    v
}

/// Runs `algo` in *forced synchronous* (double-buffered) mode until no
/// value changes, returning the values and the iteration count. For the
/// monotone algorithms this reaches the same fixpoint as [`run`] but in
/// more iterations — the Jacobi-style schedule ForeGraph/FabGraph are
/// restricted to (§III-B).
pub fn run_forced_sync(algo: &Algorithm, g: &CooGraph) -> (Vec<u32>, u32) {
    let n = g.num_nodes();
    let vconst = algo.vconst(g).unwrap_or_else(|| vec![0; n as usize]);
    let mut vin = algo.initial_vin(g);
    let max = algo.max_iterations(n);
    let mut iterations = 0;
    for _ in 0..max {
        let mut state: Vec<[u32; 2]> = (0..n as usize)
            .map(|i| algo.init(vconst[i], vin[i]))
            .collect();
        for i in 0..g.num_edges() {
            let (s, d, w) = g.edge(i);
            state[d as usize] = algo.gather(vin[s as usize], state[d as usize], w).state;
        }
        let mut changed = false;
        for i in 0..n as usize {
            let out = algo.apply(n, state[i]);
            if out != vin[i] {
                changed = true;
            }
            vin[i] = out;
        }
        iterations += 1;
        if !changed && !algo.always_active() {
            break;
        }
    }
    (algo.finalize(g, &vin), iterations)
}

/// Compares two PageRank outputs (raw `f32` bit vectors) with relative
/// tolerance `tol`, returning the index of the first mismatch.
pub fn pagerank_mismatch(a: &[u32], b: &[u32], tol: f32) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let x = f32::from_bits(a[i]);
        let y = f32::from_bits(b[i]);
        let denom = x.abs().max(y.abs()).max(1e-12);
        if (x - y).abs() / denom > tol {
            return Some(i);
        }
    }
    None
}

/// Classic textbook Dijkstra used as an *independent* check of the SSSP
/// template (distances are `u64` internally to avoid overflow, saturated
/// to [`crate::spec::UNREACHED`]).
pub fn dijkstra(g: &CooGraph, source: u32) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_nodes() as usize;
    // Adjacency from COO.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for i in 0..g.num_edges() {
        let (s, d, w) = g.edge(i);
        adj[s as usize].push((d, w));
    }
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((dcur, u))) = heap.pop() {
        if dcur > dist[u as usize] {
            continue;
        }
        for &(vtx, w) in &adj[u as usize] {
            let cand = dcur + w as u64;
            if cand < dist[vtx as usize] {
                dist[vtx as usize] = cand;
                heap.push(Reverse((cand, vtx)));
            }
        }
    }
    dist.iter()
        .map(|&d| d.min(crate::spec::UNREACHED as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Algorithm, UNREACHED};
    use graph::GraphSpec;

    fn chain(n: u32) -> CooGraph {
        CooGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)).collect())
    }

    #[test]
    fn sssp_matches_dijkstra_on_random_graph() {
        let g = GraphSpec::rmat(9, 8)
            .build(5)
            .with_random_weights(0, 255, 6);
        let algo = Algorithm::sssp(0);
        let got = run(&algo, &g);
        let want = dijkstra(&g, 0);
        assert_eq!(got, want);
    }

    #[test]
    fn sssp_unreached_stays_infinite() {
        // 0 -> 1, node 2 isolated.
        let g = CooGraph::from_weighted_edges(3, vec![(0, 1)], vec![7]);
        let got = run(&Algorithm::sssp(0), &g);
        assert_eq!(got, vec![0, 7, UNREACHED]);
    }

    #[test]
    fn bfs_counts_hops() {
        let g = chain(6);
        let got = run(&Algorithm::bfs(0), &g);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn scc_labels_follow_reachability() {
        // Cycle 0->1->2->0 plus 3 reachable from the cycle: min label 0
        // floods everything it can reach.
        let g = CooGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let got = run(&Algorithm::Scc, &g);
        assert_eq!(got, vec![0, 0, 0, 0]);
    }

    #[test]
    fn scc_isolated_components_keep_labels() {
        let g = CooGraph::from_edges(4, vec![(0, 1), (2, 3)]);
        let got = run(&Algorithm::Scc, &g);
        assert_eq!(got, vec![0, 0, 2, 2]);
    }

    #[test]
    fn pagerank_mass_is_plausible() {
        // On a ring, symmetry forces equal scores: PR = 1/N each.
        let n = 16u32;
        let g = CooGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect());
        let got = run(&Algorithm::pagerank(), &g);
        // Ten iterations reach (1 - 0.85^11)/N ≈ 0.833/N; all nodes equal.
        let first = f32::from_bits(got[0]);
        let expect = (1.0 - 0.85f32.powi(11)) / n as f32;
        assert!((first - expect).abs() < 1e-6, "{first} vs {expect}");
        for &bits in &got {
            assert_eq!(f32::from_bits(bits), first, "ring symmetry broken");
        }
    }

    #[test]
    fn pagerank_prefers_high_in_degree() {
        // Star: everyone points at node 0.
        let g = CooGraph::from_edges(5, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
        let got = run(&Algorithm::pagerank(), &g);
        let pr0 = f32::from_bits(got[0]);
        let pr1 = f32::from_bits(got[1]);
        assert!(pr0 > 3.0 * pr1, "{pr0} vs {pr1}");
    }

    #[test]
    fn mismatch_detects_divergence() {
        let a = vec![1.0f32.to_bits(), 2.0f32.to_bits()];
        let mut b = a.clone();
        assert_eq!(pagerank_mismatch(&a, &b, 1e-6), None);
        b[1] = 2.5f32.to_bits();
        assert_eq!(pagerank_mismatch(&a, &b, 1e-3), Some(1));
    }

    #[test]
    fn forced_sync_reaches_the_async_fixpoint_slower() {
        let g = GraphSpec::rmat(9, 8)
            .build(77)
            .with_random_weights(0, 255, 4);
        let algo = Algorithm::sssp(0);
        let async_vals = run(&algo, &g);
        let (sync_vals, sync_iters) = run_forced_sync(&algo, &g);
        assert_eq!(sync_vals, async_vals, "same fixpoint");
        // Async in-place sweeps propagate within an iteration; sync cannot.
        assert!(sync_iters >= 2);
    }

    #[test]
    fn forced_sync_bfs_is_level_synchronous() {
        // On a chain, sync BFS advances exactly one hop per iteration.
        let g = chain(10);
        let (vals, iters) = run_forced_sync(&Algorithm::bfs(0), &g);
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
        // 9 hops + 1 quiescent detection iteration.
        assert_eq!(iters, 10);
    }

    #[test]
    fn async_terminates_on_convergence_quickly() {
        // A long chain converges in ~N sweeps at worst; ensure the loop
        // exits (no hang) and result is correct.
        let g = chain(500);
        let got = run(&Algorithm::bfs(0), &g);
        assert_eq!(got[499], 499);
    }
}
