//! Graph algorithms expressed in the accelerator's programming model
//! (Template 1), plus golden reference executors.
//!
//! Each algorithm is a parameterisation of the `init()` / `gather()` /
//! `apply()` template with control flags, exactly as in Table I of the
//! paper. The PE model in the `accel` crate calls these functions on
//! 32-bit raw values (floats travel as `f32::to_bits` patterns), so the
//! same code defines both the simulated hardware datapath and the golden
//! software executor used to validate it.
//!
//! Implemented algorithms: PageRank (synchronous, f32, 4-cycle gather as
//! in the HLS implementation), SCC-style min-label propagation, SSSP
//! (weighted), plus BFS and WCC as extensions.
//!
//! # Example
//!
//! ```
//! use algos::{Algorithm, golden};
//! use graph::GraphSpec;
//!
//! let g = GraphSpec::rmat(8, 4).build(3);
//! let algo = Algorithm::sssp(0);
//! let dist = golden::run(&algo, &g);
//! assert_eq!(dist[0], 0); // source distance
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod golden;
pub mod spec;

pub use spec::{Algorithm, GatherOutcome};
