//! Algorithm parameterisations of Template 1 (Table I).

use graph::CooGraph;

/// Result of one `gather()` application: the new destination state and
/// whether it changed (drives the `active_srcs` tracking of Template 1,
/// line 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherOutcome {
    /// New BRAM state of the destination node (up to two 32-bit words;
    /// word 1 is unused by single-word algorithms).
    pub state: [u32; 2],
    /// `true` when the destination value changed.
    pub updated: bool,
}

/// A graph algorithm as a Template 1 parameterisation.
///
/// The variants carry only the parameters that Table I lists; everything
/// else (flags, widths, pipeline latency) is derived by the methods below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// PageRank with damping 0.85, ForeGraph-style normalized scores:
    /// `V_DRAM` holds `PR/OD` as `f32` bits, `V_const` holds out-degrees,
    /// BRAM state is `[accumulated sum, OD]`. Synchronous, `always_active`.
    PageRank {
        /// Fixed iteration count (the paper runs 10).
        iterations: u32,
    },
    /// SCC-style min-label propagation: value = node label, `gather` is
    /// `min`, asynchronous with `use_local_src` (Table I).
    Scc,
    /// Single-source shortest paths over weighted edges, `gather` is
    /// `min(u + w, v)`, asynchronous with `use_local_src`.
    Sssp {
        /// Source node.
        source: u32,
    },
    /// Breadth-first search: SSSP over implicit unit weights (extension).
    Bfs {
        /// Root node.
        source: u32,
    },
    /// Weakly connected components: min-label propagation over the
    /// symmetrised graph (caller must add reverse edges; extension).
    Wcc,
}

/// `f32` distance "infinity" used by SSSP/BFS before a node is reached.
pub const UNREACHED: u32 = u32::MAX;

impl Algorithm {
    /// PageRank with the paper's 10 iterations.
    pub fn pagerank() -> Self {
        Algorithm::PageRank { iterations: 10 }
    }

    /// SSSP from `source`.
    pub fn sssp(source: u32) -> Self {
        Algorithm::Sssp { source }
    }

    /// BFS from `source`.
    pub fn bfs(source: u32) -> Self {
        Algorithm::Bfs { source }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PageRank { .. } => "pagerank",
            Algorithm::Scc => "scc",
            Algorithm::Sssp { .. } => "sssp",
            Algorithm::Bfs { .. } => "bfs",
            Algorithm::Wcc => "wcc",
        }
    }

    /// BRAM state width in 32-bit words (Table I: 64-bit nodes for
    /// PageRank, 32-bit for SCC/SSSP).
    pub fn bram_words(&self) -> usize {
        match self {
            Algorithm::PageRank { .. } => 2,
            _ => 1,
        }
    }

    /// `gather()` pipeline latency in cycles: 4 for the floating-point HLS
    /// PageRank pipeline, 0 (combinational) for the integer algorithms
    /// (§V-A).
    pub fn gather_latency(&self) -> u64 {
        match self {
            Algorithm::PageRank { .. } => 4,
            _ => 0,
        }
    }

    /// Template 1 `use_local_src`: read sources from local BRAM when they
    /// fall in the current destination interval.
    pub fn use_local_src(&self) -> bool {
        !matches!(self, Algorithm::PageRank { .. })
    }

    /// Template 1 `always_active`: PageRank streams every shard every
    /// iteration; the monotone algorithms deactivate converged intervals.
    pub fn always_active(&self) -> bool {
        matches!(self, Algorithm::PageRank { .. })
    }

    /// `true` for synchronous execution (separate `V_DRAM,out`).
    pub fn synchronous(&self) -> bool {
        matches!(self, Algorithm::PageRank { .. })
    }

    /// `true` when edges carry weights.
    pub fn is_weighted(&self) -> bool {
        matches!(self, Algorithm::Sssp { .. })
    }

    /// Iteration bound: fixed for PageRank, `N` (worst-case propagation
    /// depth) for the convergence-driven algorithms.
    pub fn max_iterations(&self, num_nodes: u32) -> u32 {
        match self {
            Algorithm::PageRank { iterations } => *iterations,
            _ => num_nodes.max(1),
        }
    }

    /// Initial `V_DRAM,in` raw values (Table I row 2).
    pub fn initial_vin(&self, g: &CooGraph) -> Vec<u32> {
        let n = g.num_nodes();
        match self {
            Algorithm::PageRank { .. } => {
                // Normalized score PR/OD with PR0 = 0.15/N; dangling nodes
                // (OD = 0) carry 0 since they are never dereferenced.
                let od = g.out_degrees();
                let base = 0.15f32 / n as f32;
                od.iter()
                    .map(|&d| {
                        if d == 0 {
                            0f32.to_bits()
                        } else {
                            (base / d as f32).to_bits()
                        }
                    })
                    .collect()
            }
            Algorithm::Scc | Algorithm::Wcc => (0..n).collect(),
            Algorithm::Sssp { source } | Algorithm::Bfs { source } => (0..n)
                .map(|i| if i == *source { 0 } else { UNREACHED })
                .collect(),
        }
    }

    /// `V_const` raw values (Table I row 1): out-degrees for PageRank,
    /// unused otherwise.
    pub fn vconst(&self, g: &CooGraph) -> Option<Vec<u32>> {
        match self {
            Algorithm::PageRank { .. } => Some(g.out_degrees()),
            _ => None,
        }
    }

    /// Template 1 `init()`: builds the BRAM state from the constant and
    /// DRAM values (Table I row 4).
    pub fn init(&self, vconst: u32, vdram: u32) -> [u32; 2] {
        match self {
            // Accumulator starts at zero; OD kept for apply().
            Algorithm::PageRank { .. } => [0f32.to_bits(), vconst],
            _ => [vdram, 0],
        }
    }

    /// Template 1 `gather()` (Table I row 5): combines a source value `u`,
    /// the destination BRAM state, and the edge weight.
    pub fn gather(&self, u: u32, dst: [u32; 2], w: u32) -> GatherOutcome {
        match self {
            Algorithm::PageRank { .. } => {
                let acc = f32::from_bits(dst[0]) + f32::from_bits(u);
                GatherOutcome {
                    state: [acc.to_bits(), dst[1]],
                    updated: true, // always_active: the flag is unused
                }
            }
            Algorithm::Scc | Algorithm::Wcc => {
                let new = u.min(dst[0]);
                GatherOutcome {
                    state: [new, 0],
                    updated: new != dst[0],
                }
            }
            Algorithm::Sssp { .. } => {
                let cand = u.saturating_add(w);
                let new = cand.min(dst[0]);
                GatherOutcome {
                    state: [new, 0],
                    updated: new != dst[0],
                }
            }
            Algorithm::Bfs { .. } => {
                let cand = u.saturating_add(1);
                let new = cand.min(dst[0]);
                GatherOutcome {
                    state: [new, 0],
                    updated: new != dst[0],
                }
            }
        }
    }

    /// Template 1 `apply()` (Table I row 6): folds the BRAM state into the
    /// `V_DRAM,out` value.
    pub fn apply(&self, num_nodes: u32, v: [u32; 2]) -> u32 {
        match self {
            Algorithm::PageRank { .. } => {
                let sum = f32::from_bits(v[0]);
                let od = v[1];
                let pr = 0.15f32 / num_nodes as f32 + 0.85 * sum;
                if od == 0 {
                    // Dangling node: never dereferenced as a source, so we
                    // are free to store the un-normalized score.
                    pr.to_bits()
                } else {
                    // New normalized score: (0.15/N + 0.85·Σ) / OD.
                    (pr / od as f32).to_bits()
                }
            }
            _ => v[0],
        }
    }

    /// Value used as the source operand when `use_local_src` reads from
    /// BRAM instead of DRAM.
    pub fn local_src_value(&self, v: [u32; 2]) -> u32 {
        v[0]
    }

    /// Denormalises PageRank output (`PR = x·OD`); identity for the other
    /// algorithms. Run once on the host after the last iteration (§III-B).
    pub fn finalize(&self, g: &CooGraph, out: &[u32]) -> Vec<u32> {
        match self {
            Algorithm::PageRank { .. } => {
                let od = g.out_degrees();
                out.iter()
                    .zip(od.iter())
                    .map(|(&bits, &d)| {
                        if d == 0 {
                            bits // dangling nodes already hold PR
                        } else {
                            (f32::from_bits(bits) * d as f32).to_bits()
                        }
                    })
                    .collect()
            }
            _ => out.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::CooGraph;

    fn diamond() -> CooGraph {
        CooGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn table_i_flags_match_paper() {
        let pr = Algorithm::pagerank();
        assert!(!pr.use_local_src());
        assert!(pr.always_active());
        assert!(pr.synchronous());
        assert_eq!(pr.gather_latency(), 4);
        assert_eq!(pr.bram_words(), 2);

        for a in [Algorithm::Scc, Algorithm::sssp(0)] {
            assert!(a.use_local_src());
            assert!(!a.always_active());
            assert!(!a.synchronous());
            assert_eq!(a.gather_latency(), 0);
            assert_eq!(a.bram_words(), 1);
        }
        assert!(Algorithm::sssp(0).is_weighted());
        assert!(!Algorithm::Scc.is_weighted());
    }

    #[test]
    fn pagerank_initial_values_are_normalized() {
        let g = diamond();
        let vin = Algorithm::pagerank().initial_vin(&g);
        // Node 0 has OD 2: 0.15/4/2.
        assert!((f32::from_bits(vin[0]) - 0.15 / 4.0 / 2.0).abs() < 1e-9);
        // Node 3 has OD 0: stored as 0.
        assert_eq!(f32::from_bits(vin[3]), 0.0);
    }

    #[test]
    fn scc_gather_is_min() {
        let a = Algorithm::Scc;
        let out = a.gather(3, [7, 0], 1);
        assert_eq!(out.state[0], 3);
        assert!(out.updated);
        let out = a.gather(9, [3, 0], 1);
        assert_eq!(out.state[0], 3);
        assert!(!out.updated);
    }

    #[test]
    fn sssp_gather_relaxes_and_saturates() {
        let a = Algorithm::sssp(0);
        let out = a.gather(10, [100, 0], 5);
        assert_eq!(out.state[0], 15);
        assert!(out.updated);
        // Unreached source saturates instead of wrapping.
        let out = a.gather(UNREACHED, [100, 0], 5);
        assert_eq!(out.state[0], 100);
        assert!(!out.updated);
    }

    #[test]
    fn pagerank_apply_folds_damping() {
        let a = Algorithm::pagerank();
        let state = a.init(2, 0); // OD = 2
        let s1 = a.gather(0.1f32.to_bits(), state, 1).state;
        let out = f32::from_bits(a.apply(4, s1));
        let expect = (0.15 / 4.0 + 0.85 * 0.1) / 2.0;
        assert!((out - expect).abs() < 1e-6, "{out} vs {expect}");
    }

    #[test]
    fn sssp_initial_vin_marks_source() {
        let g = diamond();
        let vin = Algorithm::sssp(2).initial_vin(&g);
        assert_eq!(vin[2], 0);
        assert_eq!(vin[0], UNREACHED);
    }

    #[test]
    fn finalize_denormalizes_pagerank() {
        let g = diamond();
        let a = Algorithm::pagerank();
        let normalized = vec![0.5f32.to_bits(); 4];
        let fin = a.finalize(&g, &normalized);
        // Node 0 (OD 2): 0.5 * 2 = 1.0.
        assert_eq!(f32::from_bits(fin[0]), 1.0);
        // Node 3 (OD 0): stored value passes through unchanged.
        assert_eq!(f32::from_bits(fin[3]), 0.5);
    }
}
