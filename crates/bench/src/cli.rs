//! Shared command-line plumbing for the `repro` binary.
//!
//! Every subcommand accepts the same overlay flags — scope
//! (`--full`/`--shrink`), engine (`--jobs`/`--timeout-secs`), hardening
//! (`--fault-*`/`--watchdog-cycles`), export (`--out`/`--format`), and
//! tracing (`--trace*`). [`CommonFlags::accept`] parses them all in one
//! place, so a new subcommand (like `fabric`) plugs into the same parser
//! loop instead of copying the match arms another time.

use std::str::FromStr;
use std::time::Duration;

use simkit::record::Format;
use simkit::trace::TraceLevel;

use crate::engine::EngineConfig;
use crate::experiments::Scope;

/// Forward-only cursor over the raw argument list.
#[derive(Debug)]
pub struct Cursor {
    args: Vec<String>,
    i: usize,
}

impl Cursor {
    /// Wraps an argument list (without the program name).
    pub fn new(args: Vec<String>) -> Self {
        Cursor { args, i: 0 }
    }

    /// Consumes the next token as a flag value parsed into `T`; `err` is
    /// the usage message when the token is missing or unparsable.
    pub fn value<T: FromStr>(&mut self, err: &str) -> Result<T, String> {
        self.next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err.to_owned())
    }
}

impl Iterator for Cursor {
    type Item = String;

    /// Consumes and returns the next raw token.
    fn next(&mut self) -> Option<String> {
        let tok = self.args.get(self.i).cloned();
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }
}

/// The flag set shared by every `repro` subcommand.
#[derive(Debug, Clone)]
pub struct CommonFlags {
    /// Experiment scope (`--full`, `--shrink`).
    pub scope: Scope,
    /// Engine overlay (`--jobs`, `--timeout-secs`, `--fault-*`,
    /// `--watchdog-cycles`, `--link-fault-*`, `--link-retry`,
    /// `--checkpoint-interval`, `--sim-threads`, `--trace-level`,
    /// `--trace-window`).
    pub engine: EngineConfig,
    /// `--out PATH` structured-result export.
    pub out_path: Option<String>,
    /// `--trace PATH` timeline export.
    pub trace_path: Option<String>,
    /// `--format` for `--out`.
    pub format: Format,
}

impl Default for CommonFlags {
    fn default() -> Self {
        CommonFlags::new()
    }
}

impl CommonFlags {
    /// Defaults: quick scope, progress output on, JSON export format.
    pub fn new() -> Self {
        CommonFlags {
            scope: Scope::quick(),
            engine: EngineConfig {
                progress: true,
                ..EngineConfig::default()
            },
            out_path: None,
            trace_path: None,
            format: Format::Json,
        }
    }

    /// Tries to consume `flag` (and its value, from `cur`) as one of the
    /// shared flags. Returns `Ok(true)` when the flag was recognized,
    /// `Ok(false)` when the caller should handle it, and `Err` with a
    /// usage message when a recognized flag has a bad or missing value.
    pub fn accept(&mut self, flag: &str, cur: &mut Cursor) -> Result<bool, String> {
        match flag {
            "--full" => self.scope.full = true,
            "--shrink" => self.scope.shrink = cur.value("--shrink needs a number")?,
            "--jobs" => self.engine.jobs = cur.value("--jobs needs a number")?,
            "--timeout-secs" => {
                let secs: u64 = cur.value("--timeout-secs needs a number")?;
                self.engine.timeout = Some(Duration::from_secs(secs));
            }
            "--out" => {
                self.out_path = Some(cur.next().ok_or("--out needs a path")?);
            }
            "--format" => self.format = cur.value("--format is json or csv")?,
            "--fault-profile" => {
                self.engine.fault.profile = cur.value(
                    "--fault-profile is one of \
                     none|delay|reorder|nack|chaos-lite|chaos|black-hole",
                )?;
            }
            "--fault-seed" => {
                self.engine.fault.seed = cur.value("--fault-seed needs a number")?;
            }
            "--watchdog-cycles" => {
                self.engine.watchdog_cycles = Some(cur.value("--watchdog-cycles needs a number")?);
            }
            "--link-fault-profile" => {
                self.engine.link_fault.profile = cur.value(
                    "--link-fault-profile is one of \
                     none|delay|reorder|nack|chaos-lite|chaos|black-hole|\
                     lossy[:permille]|duplicate",
                )?;
            }
            "--link-fault-seed" => {
                self.engine.link_fault.seed = cur.value("--link-fault-seed needs a number")?;
            }
            "--link-retry" => {
                let rto: u64 = cur.value("--link-retry needs a cycle count")?;
                if rto == 0 {
                    return Err("--link-retry must be nonzero".to_owned());
                }
                self.engine.link_retry = Some(rto);
            }
            "--checkpoint-interval" => {
                self.engine.checkpoint_interval =
                    cur.value("--checkpoint-interval needs a barrier count (0 = off)")?;
            }
            "--sim-threads" => {
                self.engine.sim_threads =
                    cur.value("--sim-threads needs a thread count (0 = auto)")?;
            }
            "--trace" => {
                self.trace_path = Some(cur.next().ok_or("--trace needs a path")?);
            }
            "--trace-level" => {
                self.engine.trace.level = cur.value("--trace-level is events or counters")?;
            }
            "--trace-window" => {
                self.engine.trace.window = Some(
                    cur.next()
                        .as_deref()
                        .and_then(parse_window)
                        .ok_or("--trace-window is START:END in cycles")?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Applies the cross-flag defaults and consistency rules: `--trace`
    /// implies event-level tracing, and trace tuning without a trace path
    /// is an error.
    pub fn finalize(&mut self) -> Result<(), String> {
        if self.trace_path.is_some() && self.engine.trace.level == TraceLevel::Off {
            self.engine.trace.level = TraceLevel::Events;
        }
        if self.trace_path.is_none() && self.engine.trace.level != TraceLevel::Off {
            return Err("--trace-level/--trace-window require --trace PATH".to_owned());
        }
        Ok(())
    }
}

/// The shared-flag block every subcommand's usage text ends with.
const SHARED_USAGE: &str = "\
shared flags:
  [--full] [--shrink N] [--jobs N] [--timeout-secs S]
  [--out PATH] [--format json|csv]
  [--fault-profile none|delay|reorder|nack|chaos-lite|chaos|black-hole]
  [--fault-seed N] [--watchdog-cycles N]
  [--link-fault-profile none|delay|reorder|nack|chaos-lite|chaos|black-hole|lossy[:permille]|duplicate]
  [--link-fault-seed N] [--link-retry CYCLES] [--checkpoint-interval N]
  [--sim-threads N]
  [--trace PATH] [--trace-level events|counters] [--trace-window START:END]
";

/// Renders the usage text for `sub`: subcommand-specific for the
/// subcommands that take extra flags (`serve`, `fuzz`, `perf`), the
/// generic experiment-list text for everything else (including a
/// missing or unknown subcommand). The `repro` binary prints this on
/// exit code 2, so an unknown flag names the flags of the subcommand
/// actually being invoked instead of the whole flag universe.
pub fn usage_for(sub: Option<&str>) -> String {
    match sub {
        Some("serve") => format!(
            "usage: repro serve [serve flags] [shared flags]
serve flags:
  [--seed N]         master workload seed (default 1)
  [--requests N]     requests per rate point (default 100)
  [--slots N]        device slots in the pool (default 2)
  [--slot-devices N] devices per slot; >1 runs each job on a fabric
  [--quantum N]      preemption quantum in iterations (default 2)
  [--max-queue N]    admission-control queue bound (default 16)
sweeps offered load x25%..10x of pool saturation and reports the
saturation curve; same seed + config = byte-identical output at any
--jobs/--sim-threads setting
{SHARED_USAGE}"
        ),
        Some("fuzz") => format!(
            "usage: repro fuzz [fuzz flags] [shared flags]
fuzz flags:
  [--seed N]             master seed (default 1); same seed = same cases
  [--budget-secs N]      deterministic work budget
  [--cases N]            exact case count (default 200 without a budget)
  [--replay SPEC]        re-run one case: @corpus-file or seed:index
  [--corpus DIR]         where failing cases are saved
  [--inject-corruption]  test hook: corrupt results so oracles fire
{SHARED_USAGE}"
        ),
        Some("perf") => format!(
            "usage: repro perf [--smoke] [shared flags]
  [--smoke]  run just the pinned CI smoke point
{SHARED_USAGE}"
        ),
        _ => format!(
            "usage: repro <experiment> [flags]
experiments: table1 table2 table3 fig11 fig12 fig13 fig14 fig15 fig16
             fig17 ablate sweep syncasync paperscale related explain
             fabric chaos-fabric serve perf fuzz all
`repro <experiment> --help-like output`: rerun with the experiment name
for its specific flags (serve, fuzz, and perf take extra flags)
{SHARED_USAGE}"
        ),
    }
}

/// Parses `START:END` cycle bounds for `--trace-window`.
fn parse_window(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once(':')?;
    let start: u64 = a.parse().ok()?;
    let end: u64 = b.parse().ok()?;
    (start < end).then_some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::FaultProfile;

    fn parse(tokens: &[&str]) -> Result<(CommonFlags, Vec<String>), String> {
        let mut cur = Cursor::new(tokens.iter().map(|s| s.to_string()).collect());
        let mut flags = CommonFlags::new();
        let mut rest = Vec::new();
        while let Some(tok) = cur.next() {
            if !flags.accept(&tok, &mut cur)? {
                rest.push(tok);
            }
        }
        flags.finalize()?;
        Ok((flags, rest))
    }

    #[test]
    fn shared_flags_parse_and_leftovers_pass_through() {
        let (flags, rest) = parse(&[
            "fabric",
            "--shrink",
            "8",
            "--jobs",
            "3",
            "--fault-profile",
            "chaos",
            "--fault-seed",
            "7",
            "--out",
            "x.csv",
            "--format",
            "csv",
            "--devices",
            "4",
        ])
        .unwrap();
        assert_eq!(flags.scope.shrink, 8);
        assert_eq!(flags.engine.jobs, 3);
        assert_eq!(flags.engine.fault.profile, FaultProfile::Chaos);
        assert_eq!(flags.engine.fault.seed, 7);
        assert_eq!(flags.out_path.as_deref(), Some("x.csv"));
        assert_eq!(rest, vec!["fabric", "--devices", "4"]);
    }

    #[test]
    fn bad_values_surface_usage_messages() {
        assert!(parse(&["--shrink"]).is_err());
        assert!(parse(&["--shrink", "abc"]).is_err());
        assert!(parse(&["--trace-window", "9:3"]).is_err());
        assert!(parse(&["--link-retry", "0"]).is_err());
        assert!(parse(&["--link-fault-profile", "lossy:2000"]).is_err());
    }

    #[test]
    fn link_reliability_flags_parse() {
        let (flags, _) = parse(&[
            "--link-fault-profile",
            "lossy:250",
            "--link-fault-seed",
            "11",
            "--link-retry",
            "600",
            "--checkpoint-interval",
            "2",
        ])
        .unwrap();
        assert_eq!(
            flags.engine.link_fault.profile,
            FaultProfile::Lossy { permille: 250 }
        );
        assert_eq!(flags.engine.link_fault.seed, 11);
        assert_eq!(flags.engine.link_retry, Some(600));
        assert_eq!(flags.engine.checkpoint_interval, 2);
    }

    #[test]
    fn sim_threads_flag_parses() {
        let (flags, _) = parse(&["--sim-threads", "4"]).unwrap();
        assert_eq!(flags.engine.sim_threads, 4);
        let (flags, _) = parse(&[]).unwrap();
        assert_eq!(flags.engine.sim_threads, 0, "default is auto");
        assert!(parse(&["--sim-threads"]).is_err());
        assert!(parse(&["--sim-threads", "many"]).is_err());
    }

    #[test]
    fn usage_is_subcommand_specific() {
        let generic = usage_for(None);
        assert!(generic.contains("serve"), "{generic}");
        assert!(generic.contains("chaos-fabric"), "{generic}");
        let serve = usage_for(Some("serve"));
        assert!(serve.contains("--requests"), "{serve}");
        assert!(serve.contains("--slot-devices"), "{serve}");
        assert!(!serve.contains("--budget-secs"), "{serve}");
        let fuzz = usage_for(Some("fuzz"));
        assert!(fuzz.contains("--replay"), "{fuzz}");
        assert!(!fuzz.contains("--max-queue"), "{fuzz}");
        // Every variant carries the shared block.
        for text in [&generic, &serve, &fuzz, &usage_for(Some("table1"))] {
            assert!(text.contains("--trace-window"), "{text}");
            assert!(text.contains("--shrink"), "{text}");
        }
    }

    #[test]
    fn trace_path_defaults_level_to_events() {
        let (flags, _) = parse(&["--trace", "t.json"]).unwrap();
        assert_eq!(flags.engine.trace.level, TraceLevel::Events);
        assert!(parse(&["--trace-level", "events"]).is_err());
    }
}
